//! # sal — Serialized Asynchronous Links for NoC
//!
//! Umbrella crate for the reproduction of *Serialized Asynchronous
//! Links for NoC* (Ogg, Valli, Al-Hashimi, Yakovlev, D'Alessandro,
//! Benini — DATE 2008). It re-exports the workspace crates:
//!
//! * [`des`] — discrete-event gate-level simulation kernel,
//! * [`cells`] — primitive cell library (gates, latches, C-elements,
//!   David cells),
//! * [`tech`] — 0.12 µm-flavoured technology models (delay, area,
//!   energy, wires),
//! * [`link`] — the paper's contribution: the synchronous link I1 and
//!   the serialized asynchronous links I2 (per-transfer ack) and I3
//!   (per-word ack),
//! * [`analytic`] — the paper's §V closed-form delay/cost models,
//! * [`noc`] — a mesh NoC substrate with pluggable link models,
//! * [`switch`] — a gate-level five-port NoC switch and small fabrics
//!   wired with the serialized links.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-versus-measured
//! results. The runnable entry points live in `examples/` and in the
//! `sal-bench` crate's binaries (one per figure/table of the paper).
//!
//! ## Quickstart
//!
//! ```
//! use sal::link::measure::{run_spec, MeasureOptions};
//! use sal::link::testbench::worst_case_pattern;
//! use sal::link::{LinkConfig, LinkFamily, LinkSpec};
//!
//! // Declare the paper's I3 design point (32-bit words serialized
//! // 4:1, four wire buffers), then push the worst-case 4-flit
//! // pattern through the generated gate-level link and measure it.
//! let spec = LinkSpec::builder()
//!     .family(LinkFamily::PerWord)
//!     .word_width(32)
//!     .serial_ratio(4)
//!     .buffer_depth(4)
//!     .build()
//!     .expect("a valid spec");
//! let run = run_spec(
//!     &spec,
//!     &LinkConfig::default(),
//!     &worst_case_pattern(4, 32),
//!     &MeasureOptions::default(),
//! ).expect("clean run");
//! assert_eq!(run.received_words(), worst_case_pattern(4, 32));
//! println!("power: {:.0} µW over {}", run.total_power_uw(), run.window);
//! ```

#![forbid(unsafe_code)]

pub use sal_analytic as analytic;
pub use sal_cells as cells;
pub use sal_des as des;
pub use sal_link as link;
pub use sal_lint as lint;
pub use sal_noc as noc;
pub use sal_switch as switch;
pub use sal_tech as tech;
