//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the slice of proptest the test suite uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config]`
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`
//! * strategies for primitive `any`, integer ranges, tuples,
//!   [`collection::vec`], [`prop_oneof!`] unions and [`strategy::Just`]
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Differences from the real crate: case generation is deterministic
//! per test name (seeded splitmix64, no entropy), there is no
//! shrinking, and failure persistence files are ignored. Failing
//! cases panic with the generated inputs printed so they can be
//! turned into concrete regression tests by hand.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generate-and-check macro mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a
/// zero-argument test running `cases` deterministic samples. The body
/// runs inside a closure returning `Result<(), String>` so the
/// `prop_assert*` macros can early-return structured failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)*
                    let snapshot = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}\n  "),*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "proptest '{}' failed at case {}/{}:\n  {}\ninputs:\n  {}",
                            stringify!($name), case, config.cases, msg, snapshot
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: like `assert!` but returns a structured failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!`: like `assert_eq!` but returns a structured failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($lhs), stringify!($rhs), l, r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_assert_ne!`: like `assert_ne!` but returns a structured failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l
            ));
        }
    }};
}

/// Uniform choice between heterogeneous strategies of one value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union::new(::std::vec![$(($strat).boxed()),+])
    }};
}
