//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: `generate` directly
/// yields a value, and failing cases are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug + Clone;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for one level
    /// deeper. Each level falls back to the leaf strategy with
    /// probability 1/4 so generated sizes vary; `depth` bounds the
    /// recursion. `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type; what
/// [`crate::prop_oneof!`] builds.
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { choices: self.choices.clone(), total_weight: self.total_weight }
    }
}

impl<T: Debug + Clone> Union<T> {
    /// Uniform choice.
    ///
    /// # Panics
    ///
    /// Panics on an empty choice list.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self::weighted(choices.into_iter().map(|c| (1, c)).collect())
    }

    /// Weighted choice.
    pub fn weighted(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = choices.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "total choice weight must be positive");
        Union { choices, total_weight }
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

/// Full-domain strategy of [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Uniform values over a type's whole domain (`any::<u32>()` etc.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Types usable with [`any`].
pub trait Arbitrary: Debug + Clone + Sized {
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_with(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}", self
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = (1u8..63, 0usize..3, 10i32..20);
        for _ in 0..1000 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..63).contains(&a));
            assert!(b < 3);
            assert!((10..20).contains(&c));
        }
    }

    #[test]
    fn union_hits_every_choice() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(usize),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let s = (0usize..4).prop_map(Tree::Leaf).prop_recursive(5, 32, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("recursive");
        let mut max = 0;
        for _ in 0..100 {
            max = max.max(size(&s.generate(&mut rng)));
        }
        // Depth 5, binary nodes: strictly under 2^7 nodes, and the
        // leaf mixing should produce at least one non-trivial tree.
        assert!(max > 1 && max < 128, "max tree size {max}");
    }
}
