//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` whose length is uniform in `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "cannot sample empty length range {len:?}");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn length_respects_range() {
        let s = vec(any::<u32>(), 1..10);
        let mut rng = TestRng::for_test("vec_len");
        let mut seen_min = usize::MAX;
        let mut seen_max = 0;
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            seen_min = seen_min.min(v.len());
            seen_max = seen_max.max(v.len());
        }
        assert_eq!((seen_min, seen_max), (1, 9));
    }
}
