//! Configuration and the deterministic case RNG.

/// Runner configuration (the subset of `ProptestConfig` used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 stream, seeded from the test name so every
/// test explores a distinct but reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` 0 is treated as the full
    /// 64-bit domain.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        // Debiased multiply-shift (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_name_streams_are_reproducible_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..16).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
