//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the benchmarking surface the workspace uses with honest
//! wall-clock measurement: per benchmark it runs a warm-up pass, then
//! times `sample_size` single-invocation samples and reports
//! min/median/mean. It is deliberately simpler than real criterion (no
//! outlier analysis, no HTML), but numbers come from `Instant::now`
//! around the actual workload, so before/after comparisons are sound.
//!
//! CLI flags (cargo passes benches extra args when `harness = false`):
//!
//! * `--test`  — smoke mode: run every benchmark body once, no timing
//! * `--bench` — accepted and ignored (cargo always passes it)
//! * any bare argument — substring filter on benchmark ids
//!
//! Set `SAL_BENCH_JSON=<path>` to also write the measured samples as a
//! JSON baseline artifact (used by CI to track the perf trajectory).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
struct Record {
    id: String,
    samples_ns: Vec<u128>,
}

impl Record {
    fn median_ns(&self) -> u128 {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    fn mean_ns(&self) -> u128 {
        self.samples_ns.iter().sum::<u128>() / self.samples_ns.len() as u128
    }

    fn min_ns(&self) -> u128 {
        *self.samples_ns.iter().min().expect("at least one sample")
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo's bench harness protocol flags; no-ops here.
                "--bench" | "--nocapture" | "--quiet" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { sample_size: 10, test_mode, filter, records: Vec::new() }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn skipped(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => !id.contains(f.as_str()),
            None => false,
        }
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.skipped(&id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once, samples_ns: Vec::new() };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up: one untimed pass populates caches and page tables.
        let mut warm = Bencher { mode: Mode::Once, samples_ns: Vec::new() };
        f(&mut warm);
        let mut b = Bencher { mode: Mode::Timed(sample_size), samples_ns: Vec::new() };
        f(&mut b);
        let rec = Record { id, samples_ns: b.samples_ns };
        println!(
            "{:<40} time: [{} {} {}]  ({} samples)",
            rec.id,
            fmt_ns(rec.min_ns()),
            fmt_ns(rec.median_ns()),
            fmt_ns(rec.mean_ns()),
            rec.samples_ns.len(),
        );
        self.records.push(rec);
    }

    /// Writes collected samples as a JSON baseline if
    /// `SAL_BENCH_JSON` names a path. Called by [`criterion_main!`].
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("SAL_BENCH_JSON") else { return };
        if self.records.is_empty() {
            return;
        }
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples_ns\": {:?}}}{}\n",
                r.id,
                r.min_ns(),
                r.median_ns(),
                r.mean_ns(),
                r.samples_ns,
                if i + 1 == self.records.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("bench baseline written to {path}"),
            Err(e) => eprintln!("failed to write bench baseline {path}: {e}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, n, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, n, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from the parameter's `Display` form.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

enum Mode {
    /// Run the body once, untimed (warm-up / `--test`).
    Once,
    /// Time this many single-invocation samples.
    Timed(usize),
}

/// The per-benchmark timing handle passed to the closure.
pub struct Bencher {
    mode: Mode,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each invocation.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::Once => {
                black_box(f());
            }
            Mode::Timed(samples) => {
                self.samples_ns.reserve(samples);
                for _ in 0..samples {
                    let t0 = Instant::now();
                    black_box(f());
                    let dt: Duration = t0.elapsed();
                    self.samples_ns.push(dt.as_nanos());
                }
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro (both the plain and the `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::Criterion {
            let mut c = $config;
            $($target(&mut c);)+
            c
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                let c = $group();
                c.finalize();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_real_work() {
        let mut c = Criterion { sample_size: 5, test_mode: false, filter: None, records: Vec::new() };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..10_000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].samples_ns.len(), 5);
        assert!(c.records[0].min_ns() > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
            filter: Some("keep".into()),
            records: Vec::new(),
        };
        c.bench_function("keep_this", |b| b.iter(|| 1));
        c.bench_function("drop_this", |b| b.iter(|| 1));
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].id, "keep_this");
    }
}
