//! Offline stand-in for `crossbeam`.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the crossbeam 0.8 scoped-thread API (`thread::scope`,
//! `Scope::spawn`, `ScopedJoinHandle::join`) implemented over
//! `std::thread::scope`, which has offered equivalent borrowing
//! guarantees since Rust 1.63. Semantic differences from real
//! crossbeam are preserved where they matter: `scope` returns `Err`
//! (instead of unwinding) when a spawned thread panicked without being
//! joined, and `join` returns the payload of a panicking child.

pub mod thread {
    //! Scoped threads (crossbeam 0.8 `thread` module surface).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// The scope handle passed to [`scope`]'s closure and to every
    /// spawned-thread closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so
        /// it can spawn further siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; a panicking thread yields `Err` with
        /// its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Err` if a spawned thread
    /// panicked and its panic was not consumed via `join`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes unwinding if an unjoined child
        // panicked; catch that to reproduce crossbeam's Err contract.
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_captured_not_propagated() {
        let out = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker exploded") });
            h.join()
        })
        .unwrap();
        let payload = out.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("worker exploded"));
    }

    #[test]
    fn unjoined_panic_surfaces_as_scope_error() {
        let res = thread::scope(|s| {
            s.spawn(|_| panic!("unjoined"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let n = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
