//! Offline stand-in for `serde_derive`.
//!
//! This repository pins experiment row types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so a future
//! exporter can dump them, but nothing in-tree serializes yet and the
//! build environment has no registry access. These derives therefore
//! expand to nothing: the attribute compiles, no impl is generated.
//! Swapping the real serde back in is a one-line Cargo.toml change.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
