//! Offline stand-in for `serde`.
//!
//! The container this repository builds in has no crates.io access, so
//! the workspace vendors the minimal serde surface it actually uses:
//! the `Serialize`/`Deserialize` trait names and the derive macros
//! (which expand to nothing — see `serde_derive`). Nothing in-tree
//! performs serialization yet; the derives only annotate result-row
//! types for future exporters.

/// Marker trait matching `serde::Serialize`'s name. The no-op derive
/// does not implement it; code requiring real serialization should
/// swap the real serde back in.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
