//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the exact surface the workspace uses — `Rng::gen_range`,
//! `Rng::gen_bool`, `Rng::gen`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — over a deterministic xoshiro256** generator seeded
//! with splitmix64, the same construction the real `rand` documents
//! for reproducible streams. Streams differ numerically from the real
//! `StdRng` (ChaCha12), which only shifts which random traffic
//! patterns the NoC experiments sample; all seeds remain reproducible.

use std::ops::Range;

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high bits give an exact dyadic uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable uniformly over their whole domain (mirrors the
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
///
/// The single blanket impl over [`SampleUniform`] (rather than one
/// impl per integer type) matters for type inference: it lets an
/// untyped literal like `gen_range(0..1000)` unify with the
/// surrounding expression exactly as with the real rand crate.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// Integer types uniform-sampleable over a half-open range.
pub trait SampleUniform: Sized + Copy {
    fn sample_range<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// Uniform value in `[0, span)` for `span >= 1`, via debiased
/// multiply-shift (Lemire).
fn uniform_below<R: RngCore>(span: u64, rng: &mut R) -> u64 {
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed via splitmix64
    /// expansion (the construction rand documents for this method).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..8).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(30u64..400);
            assert!((30..400).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "p=0.25 sampled at {frac}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
