//! The circuit builder: ergonomic netlist construction with area and
//! energy bookkeeping.

use std::collections::BTreeMap;

use sal_des::{
    CellClass, CombFunc, CombSpec, ComponentId, ScopeId, SignalId, SimResult, Simulator, SpecOp,
    Time, Value,
};

use crate::async_cells::{CElement, DavidCell};
use crate::error::BuildError;
use crate::comb::{Gate, GateOp, Mux2};
use crate::kind::{CellKind, Library};
use crate::seq::{DLatch, Dff};
use crate::sources::{ClockGen, ConstDriver};

/// Layout area accumulated per scope path, in µm².
///
/// Populated by [`CircuitBuilder`] as cells are instantiated; queried
/// afterwards to regenerate the paper's Table 1 and Table 2.
#[derive(Debug, Clone, Default)]
pub struct AreaLedger {
    entries: BTreeMap<String, f64>,
}

impl AreaLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `area_um2` to the given scope path.
    pub fn add(&mut self, path: &str, area_um2: f64) {
        // Cells land in the current scope many times in a row, so the
        // existing-key path must not allocate a lookup String.
        if let Some(a) = self.entries.get_mut(path) {
            *a += area_um2;
        } else {
            self.entries.insert(path.to_string(), area_um2);
        }
    }

    /// Total area across all scopes, µm².
    pub fn total_um2(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Area of the subtree rooted at `prefix` (inclusive), µm².
    pub fn subtree_um2(&self, prefix: &str) -> f64 {
        self.entries
            .iter()
            .filter(|(p, _)| {
                prefix.is_empty()
                    || p.as_str() == prefix
                    || (p.starts_with(prefix) && p[prefix.len()..].starts_with('.'))
            })
            .map(|(_, a)| a)
            .sum()
    }

    /// Iterates over `(scope path, exclusive area)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(p, a)| (p.as_str(), *a))
    }

    /// Merges another ledger into this one.
    pub fn extend_from(&mut self, other: &AreaLedger) {
        for (p, a) in other.iter() {
            self.add(p, a);
        }
    }
}

/// Builds gate-level circuits into a [`Simulator`], pulling cell
/// parameters from a [`Library`], annotating per-signal switching
/// energy and accumulating an [`AreaLedger`].
///
/// Most methods create one cell: they allocate the output signal
/// (named after the cell), instantiate the component, register it as
/// the signal's driver, and account area/energy. See the
/// [crate-level example](crate).
///
/// # Error handling
///
/// Construction errors (double-driven outputs, width mismatches, bad
/// stage counts…) do not panic at the offending call. Instead the
/// *first* error poisons the builder: it is recorded, the offending
/// cell is skipped (methods return undriven placeholder signals so
/// call chains stay well-formed), and the error surfaces at the end —
/// as a `Result` from [`CircuitBuilder::try_finish`], or as a panic
/// from [`CircuitBuilder::finish`] for top-level code that prefers
/// failing loudly.
pub struct CircuitBuilder<'a> {
    sim: &'a mut Simulator,
    lib: &'a dyn Library,
    area: AreaLedger,
    /// First construction error; later calls on a poisoned builder
    /// still execute (they cannot make things worse) but their errors
    /// are dropped so diagnosis points at the root cause.
    error: Option<BuildError>,
}

impl<'a> CircuitBuilder<'a> {
    /// Wraps a simulator and a technology library.
    pub fn new(sim: &'a mut Simulator, lib: &'a dyn Library) -> Self {
        CircuitBuilder { sim, lib, area: AreaLedger::new(), error: None }
    }

    /// The underlying simulator (escape hatch for monitors, stimuli…).
    pub fn sim(&mut self) -> &mut Simulator {
        self.sim
    }

    /// The library this builder instantiates from.
    pub fn library(&self) -> &dyn Library {
        self.lib
    }

    /// The first construction error recorded, if any.
    pub fn error(&self) -> Option<&BuildError> {
        self.error.as_ref()
    }

    /// Records a construction error if none is recorded yet. Exposed
    /// so netlist assemblers layered on the builder can report their
    /// own configuration failures through the same channel.
    pub fn record_error(&mut self, err: BuildError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// An undriven stand-in signal returned after a recorded error, so
    /// the caller's wiring code keeps flowing to `try_finish`.
    fn placeholder(&mut self, name: &str, width: u8) -> SignalId {
        self.sim.add_signal(name, width.clamp(1, Value::MAX_WIDTH))
    }

    /// Folds a driver-connection result into the poison state.
    fn check_driver(&mut self, cell: &str, result: SimResult<()>) {
        if let Err(e) = result {
            self.record_error(BuildError::AlreadyDriven { cell: cell.to_string(), source: e });
        }
    }

    /// Checks an exact width requirement; on mismatch records the
    /// error and returns `false` (the caller skips building the cell).
    fn width_ok(&mut self, cell: &str, expected: u8, actual: u8) -> bool {
        if expected == actual {
            true
        } else {
            self.record_error(BuildError::WidthMismatch {
                cell: cell.to_string(),
                expected,
                actual,
            });
            false
        }
    }

    /// Checks a structural parameter; on failure records the error and
    /// returns `false` (the caller skips building the cell).
    fn param_ok(&mut self, cond: bool, cell: &str, message: &str) -> bool {
        if !cond {
            self.record_error(BuildError::BadParameter {
                cell: cell.to_string(),
                message: message.to_string(),
            });
        }
        cond
    }

    /// Finishes building and returns the accumulated area ledger.
    ///
    /// # Panics
    ///
    /// Panics if a construction error was recorded. Library code that
    /// wants the graceful path uses [`CircuitBuilder::try_finish`].
    pub fn finish(self) -> AreaLedger {
        match self.try_finish() {
            Ok(area) => area,
            Err(e) => panic!("netlist construction failed: {e}"),
        }
    }

    /// Finishes building: the accumulated area ledger, or the first
    /// construction error recorded.
    pub fn try_finish(self) -> Result<AreaLedger, BuildError> {
        match self.error {
            None => Ok(self.area),
            Some(e) => Err(e),
        }
    }

    /// Extracts the poison state without consuming the builder, for
    /// assemblers that return `Result` mid-construction.
    pub fn take_error(&mut self) -> Option<BuildError> {
        self.error.take()
    }

    /// Enters a child scope (hierarchy for names, energy and area).
    pub fn push_scope(&mut self, name: &str) -> ScopeId {
        self.sim.push_scope(name)
    }

    /// Leaves the current scope.
    pub fn pop_scope(&mut self) {
        self.sim.pop_scope();
    }

    /// Declares an undriven input signal (driven later by a stimulus
    /// or another block).
    pub fn input(&mut self, name: &str, width: u8) -> SignalId {
        if !self.param_ok(
            (1..=Value::MAX_WIDTH).contains(&width),
            name,
            "signal width must be 1..=64",
        ) {
            return self.placeholder(name, width);
        }
        let sig = self.sim.add_signal(name, width);
        self.sim.mark_port(sig);
        sig
    }

    /// Tags a freshly added component with its static-analysis class
    /// and nominal delay (metadata only; see `sal_des::NetGraph`).
    fn tag(&mut self, id: ComponentId, class: CellClass, delay: Time) {
        self.sim.set_component_class(id, class);
        self.sim.set_component_delay(id, delay);
    }

    fn account(&mut self, kind: CellKind, width: u8) -> crate::kind::CellParams {
        let p = self.lib.params(kind);
        let path = self.sim.scope_path_str(self.sim.current_scope());
        self.area.add(path, p.area_um2 * width as f64);
        p
    }

    /// Maps the cell library's gate op onto the kernel's compiled
    /// spec op (the kernel cannot depend on this crate, so the enum is
    /// mirrored there).
    fn spec_op(op: GateOp) -> SpecOp {
        match op {
            GateOp::Buf => SpecOp::Buf,
            GateOp::Inv => SpecOp::Inv,
            GateOp::And => SpecOp::And,
            GateOp::Or => SpecOp::Or,
            GateOp::Nand => SpecOp::Nand,
            GateOp::Nor => SpecOp::Nor,
            GateOp::Xor => SpecOp::Xor,
            GateOp::Xnor => SpecOp::Xnor,
        }
    }

    /// Registers the compiled-execution description of a plain gate.
    fn gate_spec(
        &mut self,
        id: ComponentId,
        out: SignalId,
        op: GateOp,
        inputs: &[SignalId],
        width: u8,
        delay: Time,
    ) {
        self.sim.set_comb_spec(
            id,
            CombSpec::new(
                out,
                CombFunc::Gate {
                    op: Self::spec_op(op),
                    inputs: inputs.to_vec(),
                    width,
                    delay,
                },
            ),
        );
    }

    fn gate(&mut self, name: &str, op: GateOp, kind: CellKind, inputs: &[SignalId]) -> SignalId {
        let Some(width) = inputs.iter().map(|&s| self.sim.signal_width(s)).max() else {
            self.record_error(BuildError::EmptyInputs { cell: name.to_string() });
            return self.placeholder(name, 1);
        };
        let p = self.account(kind, width);
        let out = self.sim.add_signal(name, width);
        let comp = Gate::new(op, inputs.to_vec(), out, width, p.delay);
        let id = self.sim.add_component(name, comp, inputs);
        self.tag(id, CellClass::Comb, p.delay);
        self.gate_spec(id, out, op, inputs, width, p.delay);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
        out
    }

    /// Inverter; returns the output signal.
    pub fn inv(&mut self, name: &str, a: SignalId) -> SignalId {
        self.gate(name, GateOp::Inv, CellKind::Inv, &[a])
    }

    /// Buffer; returns the output signal.
    pub fn buf(&mut self, name: &str, a: SignalId) -> SignalId {
        self.gate(name, GateOp::Buf, CellKind::Buf, &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::And, CellKind::And(2), &[a, b])
    }

    /// 3-input AND.
    pub fn and3(&mut self, name: &str, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        self.gate(name, GateOp::And, CellKind::And(3), &[a, b, c])
    }

    /// 2-input OR.
    pub fn or2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::Or, CellKind::Or(2), &[a, b])
    }

    /// 3-input OR.
    pub fn or3(&mut self, name: &str, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        self.gate(name, GateOp::Or, CellKind::Or(3), &[a, b, c])
    }

    /// 4-input OR.
    pub fn or4(
        &mut self,
        name: &str,
        a: SignalId,
        b: SignalId,
        c: SignalId,
        d: SignalId,
    ) -> SignalId {
        self.gate(name, GateOp::Or, CellKind::Or(4), &[a, b, c, d])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::Nand, CellKind::Nand(2), &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::Nor, CellKind::Nor(2), &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::Xor, CellKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.gate(name, GateOp::Xnor, CellKind::Xnor2, &[a, b])
    }

    /// Word-wide 2-way multiplexer (`sel` 1 bit; `a`, `b` same width).
    pub fn mux2(&mut self, name: &str, sel: SignalId, a: SignalId, b: SignalId) -> SignalId {
        let width = self.sim.signal_width(a);
        if !self.width_ok(name, width, self.sim.signal_width(b)) {
            return self.placeholder(name, width);
        }
        let p = self.account(CellKind::Mux2, width);
        let out = self.sim.add_signal(name, width);
        let comp = Mux2::new(sel, a, b, out, p.delay);
        let id = self.sim.add_component(name, comp, &[sel, a, b]);
        self.tag(id, CellClass::Comb, p.delay);
        self.sim.set_comb_spec(
            id,
            CombSpec::new(out, CombFunc::Mux2 { sel, a, b, delay: p.delay }),
        );
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
        out
    }

    /// Word-wide transparent-high D latch.
    pub fn dlatch(
        &mut self,
        name: &str,
        d: SignalId,
        en: SignalId,
        rstn: Option<SignalId>,
    ) -> SignalId {
        let width = self.sim.signal_width(d);
        let p = self.account(CellKind::DLatch, width);
        let q = self.sim.add_signal(name, width);
        let comp = DLatch::new(d, en, rstn, q, width, p.delay);
        let mut ins = vec![d, en];
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::Latch, p.delay);
        self.sim.set_component_pins(id, &[d], &[en]);
        self.sim.set_capture_rule(q, d);
        let res = self.sim.connect_driver(id, q);
        self.check_driver(name, res);
        self.sim.set_signal_energy(q, p.energy_fj);
        q
    }

    /// Word-wide positive-edge D flip-flop with async active-low reset.
    pub fn dff(
        &mut self,
        name: &str,
        d: SignalId,
        clk: SignalId,
        rstn: Option<SignalId>,
    ) -> SignalId {
        let width = self.sim.signal_width(d);
        let p = self.account(CellKind::Dff, width);
        let q = self.sim.add_signal(name, width);
        let comp = Dff::new(d, clk, rstn, q, width, p.delay);
        // Edge-triggered sensitivity: a `d`-only change cannot move
        // `q` (the clock level is unchanged, so no rising edge is
        // detected), so waking the flop on data activity would only
        // burn no-op evaluations. `d` is still read at the edge.
        let mut ins = vec![clk];
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::Dff, p.delay);
        self.sim.set_component_pins(id, &[d], &[clk]);
        self.sim.declare_read(id, d);
        self.sim.set_capture_rule(q, d);
        let res = self.sim.connect_driver(id, q);
        self.check_driver(name, res);
        self.sim.set_signal_energy(q, p.energy_fj);
        q
    }

    /// Word-wide D flip-flop driving a *pre-declared* output signal
    /// (for registers whose own output feeds their input logic, e.g.
    /// write-enable muxed registers).
    ///
    /// If `q` already has a driver or widths mismatch, the error is
    /// recorded (see the struct-level error-handling notes) and the
    /// cell is skipped.
    pub fn dff_into(
        &mut self,
        name: &str,
        q: SignalId,
        d: SignalId,
        clk: SignalId,
        rstn: Option<SignalId>,
    ) {
        let width = self.sim.signal_width(d);
        if !self.width_ok(name, width, self.sim.signal_width(q)) {
            return;
        }
        let p = self.account(CellKind::Dff, width);
        let comp = Dff::new(d, clk, rstn, q, width, p.delay);
        let mut ins = vec![d, clk];
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::Dff, p.delay);
        self.sim.set_component_pins(id, &[d], &[clk]);
        self.sim.set_capture_rule(q, d);
        let res = self.sim.connect_driver(id, q);
        self.check_driver(name, res);
        self.sim.set_signal_energy(q, p.energy_fj);
    }

    /// 2-input Muller C-element (resettable to `init`).
    pub fn celement2(
        &mut self,
        name: &str,
        a: SignalId,
        b: SignalId,
        rstn: Option<SignalId>,
        init: bool,
    ) -> SignalId {
        self.celement(name, &[a, b], rstn, init)
    }

    /// N-input Muller C-element (N = 2..=3).
    pub fn celement(
        &mut self,
        name: &str,
        inputs: &[SignalId],
        rstn: Option<SignalId>,
        init: bool,
    ) -> SignalId {
        let p = self.account(CellKind::CElement(inputs.len() as u8), 1);
        let z = self.sim.add_signal(name, 1);
        let comp = CElement::new(inputs.to_vec(), rstn, z, p.delay, init);
        let mut ins = inputs.to_vec();
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::CElement, p.delay);
        self.sim.set_component_pins(id, &[], inputs);
        let res = self.sim.connect_driver(id, z);
        self.check_driver(name, res);
        self.sim.set_signal_energy(z, p.energy_fj);
        z
    }

    /// Buffer driving a *pre-declared* output signal (closes feedback
    /// loops such as acknowledge wires running against the build
    /// direction).
    ///
    /// If `out` already has a driver or widths mismatch, the error is
    /// recorded and the cell is skipped.
    pub fn buf_into(&mut self, name: &str, out: SignalId, src: SignalId) {
        let width = self.sim.signal_width(src);
        if !self.width_ok(name, width, self.sim.signal_width(out)) {
            return;
        }
        let p = self.account(CellKind::Buf, width);
        let comp = Gate::new(GateOp::Buf, vec![src], out, width, p.delay);
        let id = self.sim.add_component(name, comp, &[src]);
        self.tag(id, CellClass::Comb, p.delay);
        self.gate_spec(id, out, GateOp::Buf, &[src], width, p.delay);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
    }

    /// N-input Muller C-element driving a *pre-declared* output signal
    /// (for feedback cycles such as acknowledge wires that must exist
    /// before the stage producing them is built).
    ///
    /// If `out` already has a driver or is not 1 bit wide, the error
    /// is recorded and the cell is skipped.
    pub fn celement_into(
        &mut self,
        name: &str,
        out: SignalId,
        inputs: &[SignalId],
        rstn: Option<SignalId>,
        init: bool,
    ) {
        if !self.width_ok(name, 1, self.sim.signal_width(out)) {
            return;
        }
        let p = self.account(CellKind::CElement(inputs.len() as u8), 1);
        let comp = CElement::new(inputs.to_vec(), rstn, out, p.delay, init);
        let mut ins = inputs.to_vec();
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::CElement, p.delay);
        self.sim.set_component_pins(id, &[], inputs);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
    }

    /// David cell: token set by `set`, cleared by `clr`, reset to
    /// `init` while `rstn` is low.
    pub fn david_cell(
        &mut self,
        name: &str,
        set: SignalId,
        clr: SignalId,
        rstn: Option<SignalId>,
        init: bool,
    ) -> SignalId {
        let p = self.account(CellKind::DavidCell, 1);
        let o2 = self.sim.add_signal(name, 1);
        let comp = DavidCell::new(set, clr, rstn, o2, p.delay, init);
        let mut ins = vec![set, clr];
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::DavidCell, p.delay);
        self.sim.set_component_pins(id, &[], &[set, clr]);
        let res = self.sim.connect_driver(id, o2);
        self.check_driver(name, res);
        self.sim.set_signal_energy(o2, p.energy_fj);
        o2
    }

    /// David cell driving a *pre-declared* output signal (for flags
    /// read by the logic that computes their own set/clear inputs).
    ///
    /// If `out` already has a driver or is not 1 bit wide, the error
    /// is recorded and the cell is skipped.
    pub fn david_cell_into(
        &mut self,
        name: &str,
        out: SignalId,
        set: SignalId,
        clr: SignalId,
        rstn: Option<SignalId>,
        init: bool,
    ) {
        if !self.width_ok(name, 1, self.sim.signal_width(out)) {
            return;
        }
        let p = self.account(CellKind::DavidCell, 1);
        let comp = DavidCell::new(set, clr, rstn, out, p.delay, init);
        let mut ins = vec![set, clr];
        ins.extend(rstn);
        let id = self.sim.add_component(name, comp, &ins);
        self.tag(id, CellClass::DavidCell, p.delay);
        self.sim.set_component_pins(id, &[], &[set, clr]);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
    }

    /// Constant driver (tie cell).
    pub fn tie(&mut self, name: &str, value: Value) -> SignalId {
        let p = self.account(CellKind::Tie, value.width());
        let out = self.sim.add_signal(name, value.width());
        let id = self.sim.add_component(name, ConstDriver::new(out, value), &[]);
        self.tag(id, CellClass::Source, Time::ZERO);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, p.energy_fj);
        self.sim.schedule_wake(id, Time::ZERO);
        out
    }

    /// Ideal clock source with the given period (no area — the clock
    /// tree cost is modelled analytically by the technology layer).
    pub fn clock(&mut self, name: &str, period: Time) -> SignalId {
        let out = self.sim.add_signal(name, 1);
        let id = self.sim.add_component(name, ClockGen::new(out, period), &[]);
        self.tag(id, CellClass::Source, Time::ZERO);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.schedule_wake(id, Time::ZERO);
        out
    }

    /// Adds the switching load of `length_um` micrometres of routed
    /// wire to an existing signal (0.5·C·V² per bit toggle).
    pub fn add_wire_load(&mut self, sig: SignalId, length_um: f64) {
        let c_ff = self.lib.wire_cap_ff_per_um() * length_um;
        let vdd = self.lib.vdd();
        // fF × V² = fJ (per full swing); half attributed per toggle.
        self.sim.add_signal_energy(sig, 0.5 * c_ff * vdd * vdd);
    }

    // ------------------------------------------------------------------
    // Structural compounds
    // ------------------------------------------------------------------

    /// A chain of `n` word-wide D flip-flops clocked together; returns
    /// the `n` stage outputs (`out[0]` is the first stage).
    pub fn shift_register(
        &mut self,
        name: &str,
        d: SignalId,
        clk: SignalId,
        rstn: Option<SignalId>,
        n: usize,
    ) -> Vec<SignalId> {
        if !self.param_ok(n >= 1, name, "shift register needs at least one stage") {
            return Vec::new();
        }
        let mut outs = Vec::with_capacity(n);
        let mut prev = d;
        for i in 0..n {
            let q = self.dff(&format!("{name}_{i}"), prev, clk, rstn);
            outs.push(q);
            prev = q;
        }
        outs
    }

    /// Pure-wiring view of `bus[lo .. lo+width]` (no area, no energy).
    pub fn slice(&mut self, name: &str, bus: SignalId, lo: u8, width: u8) -> SignalId {
        let bus_width = self.sim.signal_width(bus);
        if !self.param_ok(
            width >= 1 && lo.checked_add(width).is_some_and(|hi| hi <= bus_width),
            name,
            "slice range exceeds bus width",
        ) {
            return self.placeholder(name, width);
        }
        let out = self.sim.add_signal(name, width);
        let comp = crate::comb::SliceWire::new(bus, lo, width, out);
        let id = self.sim.add_component(name, comp, &[bus]);
        self.tag(id, CellClass::Route, Time::ZERO);
        self.sim
            .set_comb_spec(id, CombSpec::new(out, CombFunc::Slice { src: bus, lo, width }));
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        out
    }

    /// Pure-wiring concatenation of buses, first part in the low bits
    /// (no area, no energy).
    pub fn concat(&mut self, name: &str, parts: &[SignalId]) -> SignalId {
        if parts.is_empty() {
            self.record_error(BuildError::EmptyInputs { cell: name.to_string() });
            return self.placeholder(name, 1);
        }
        let width: u32 = parts.iter().map(|&p| self.sim.signal_width(p) as u32).sum();
        if !self.param_ok(
            width <= Value::MAX_WIDTH as u32,
            name,
            "concatenated width exceeds 64 bits",
        ) {
            return self.placeholder(name, 1);
        }
        let width = width as u8;
        let out = self.sim.add_signal(name, width);
        let comp = crate::comb::ConcatWire::new(parts.to_vec(), out);
        let id = self.sim.add_component(name, comp, parts);
        self.tag(id, CellClass::Route, Time::ZERO);
        self.sim
            .set_comb_spec(id, CombSpec::new(out, CombFunc::Concat { parts: parts.to_vec() }));
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        out
    }

    /// A transport element modelling a routed wire segment: repeats
    /// `src` after `delay`, charging `energy_fj` per bit toggle. No
    /// cell area (wiring area is accounted separately by the wire
    /// geometry model).
    pub fn transport(
        &mut self,
        name: &str,
        src: SignalId,
        delay: Time,
        energy_fj: f64,
    ) -> SignalId {
        let width = self.sim.signal_width(src);
        let out = self.sim.add_signal(name, width);
        let comp = Gate::new(GateOp::Buf, vec![src], out, width, delay);
        let id = self.sim.add_component(name, comp, &[src]);
        self.tag(id, CellClass::Wire, delay);
        self.gate_spec(id, out, GateOp::Buf, &[src], width, delay);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, energy_fj);
        out
    }

    /// Like [`CircuitBuilder::transport`], but driving a
    /// *pre-declared* output signal (for backward wires such as
    /// acknowledges that must exist before their driver is built).
    ///
    /// If `out` already has a driver or widths mismatch, the error is
    /// recorded and the cell is skipped.
    pub fn transport_into(
        &mut self,
        name: &str,
        out: SignalId,
        src: SignalId,
        delay: Time,
        energy_fj: f64,
    ) {
        let width = self.sim.signal_width(src);
        if !self.width_ok(name, width, self.sim.signal_width(out)) {
            return;
        }
        let comp = Gate::new(GateOp::Buf, vec![src], out, width, delay);
        let id = self.sim.add_component(name, comp, &[src]);
        self.tag(id, CellClass::Wire, delay);
        self.gate_spec(id, out, GateOp::Buf, &[src], width, delay);
        let res = self.sim.connect_driver(id, out);
        self.check_driver(name, res);
        self.sim.set_signal_energy(out, energy_fj);
    }

    /// A chain of `n` buffers (a matched delay line, as inserted on
    /// request wires to cover the bundled-data constraint). Returns
    /// the delayed signal.
    pub fn buf_chain(&mut self, name: &str, src: SignalId, n: usize) -> SignalId {
        let mut s = src;
        for i in 0..n {
            s = self.buf(&format!("{name}_{i}"), s);
        }
        s
    }

    /// A balanced tree of 2-input XOR cells reducing `bits` to their
    /// parity (high iff an odd number of inputs are high). This is the
    /// parity/CRC generator-and-checker primitive of the link
    /// protection layer: built from real `Xor2` cells so the reduction
    /// carries area, delay and switching energy. A single input is
    /// returned unchanged; an empty list is a [`BuildError`].
    pub fn xor_tree(&mut self, name: &str, bits: &[SignalId]) -> SignalId {
        self.reduce_tree(name, bits, |b, n, x, y| b.xor2(n, x, y))
    }

    /// A balanced tree of 2-input OR cells reducing `bits` to their
    /// disjunction (the error-flag aggregator of the protection
    /// checker). A single input is returned unchanged; an empty list
    /// is a [`BuildError`].
    pub fn or_tree(&mut self, name: &str, bits: &[SignalId]) -> SignalId {
        self.reduce_tree(name, bits, |b, n, x, y| b.or2(n, x, y))
    }

    fn reduce_tree(
        &mut self,
        name: &str,
        bits: &[SignalId],
        mut op: impl FnMut(&mut Self, &str, SignalId, SignalId) -> SignalId,
    ) -> SignalId {
        if bits.is_empty() {
            self.record_error(BuildError::EmptyInputs { cell: name.to_string() });
            return self.placeholder(name, 1);
        }
        let mut level: Vec<SignalId> = bits.to_vec();
        let mut depth = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for (i, pair) in level.chunks(2).enumerate() {
                next.push(if pair.len() == 2 {
                    op(self, &format!("{name}_l{depth}_{i}"), pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
            depth += 1;
        }
        level[0]
    }

    /// An `n`-stage asynchronous ripple counter built from toggle
    /// flip-flops: stage 0 toggles on each rising `clk` edge and each
    /// later stage is clocked by the previous stage's inverted output,
    /// so tap `i` first rises after `2^i` rising `clk` edges and the
    /// interval doubles per tap. Clocked by a gated ring oscillator
    /// this is a *counter-gated delay chain* — the exponential-backoff
    /// timeout element of the link recovery layer. All stages clear
    /// asynchronously while `rstn` is low. Returns the `n` tap
    /// outputs (`taps[0]` is the fastest).
    pub fn ripple_counter(
        &mut self,
        name: &str,
        clk: SignalId,
        rstn: Option<SignalId>,
        n: usize,
    ) -> Vec<SignalId> {
        if !self.param_ok(n >= 1, name, "ripple counter needs at least one stage") {
            return Vec::new();
        }
        let mut taps = Vec::with_capacity(n);
        let mut stage_clk = clk;
        for i in 0..n {
            let q = self.sim.add_signal(&format!("{name}_q{i}"), 1);
            let nq = self.inv(&format!("{name}_n{i}"), q);
            self.dff_into(&format!("{name}_q{i}"), q, nq, stage_clk, rstn);
            taps.push(q);
            stage_clk = nq;
        }
        taps
    }

    /// A self-starting one-hot ring counter: `n` flip-flops clocked by
    /// `clk`, exactly one token output high after reset (token 0),
    /// advancing one position per rising clock edge.
    ///
    /// Stage 0 stores its token inverted (so the all-zero register
    /// state after the async reset reads as "token at stage 0") — the
    /// standard preset-free trick. Functionally this is the David-cell
    /// one-hot sequencer of the paper's Figs 4–6 with the handshake
    /// completion signal acting as the advance clock.
    ///
    /// Requires `n >= 2` (recorded as a [`BuildError`] otherwise).
    pub fn ring_counter(
        &mut self,
        name: &str,
        clk: SignalId,
        rstn: Option<SignalId>,
        n: usize,
    ) -> Vec<SignalId> {
        if !self.param_ok(n >= 2, name, "ring counter needs at least two stages") {
            return Vec::new();
        }
        // q0 holds the complement of token 0: d0 = inv(token[n-1]),
        // token0 = inv(q0); later stages store tokens directly.
        let tok_last = self.sim.add_signal(&format!("{name}_t{}", n - 1), 1);
        let d0 = {
            let p = self.account(CellKind::Inv, 1);
            let out = self.sim.add_signal(&format!("{name}_d0"), 1);
            let comp = Gate::new(GateOp::Inv, vec![tok_last], out, 1, p.delay);
            let id = self.sim.add_component(&format!("{name}_d0"), comp, &[tok_last]);
            self.tag(id, CellClass::Comb, p.delay);
            self.gate_spec(id, out, GateOp::Inv, &[tok_last], 1, p.delay);
            let res = self.sim.connect_driver(id, out);
            self.check_driver(name, res);
            self.sim.set_signal_energy(out, p.energy_fj);
            out
        };
        let q0 = self.dff(&format!("{name}_q0"), d0, clk, rstn);
        let t0 = self.inv(&format!("{name}_t0"), q0);
        let mut tokens = vec![t0];
        let mut prev = t0;
        for k in 1..n {
            if k == n - 1 {
                // Last stage drives the pre-declared feedback signal.
                let p = self.account(CellKind::Dff, 1);
                let comp = crate::seq::Dff::new(prev, clk, rstn, tok_last, 1, p.delay);
                let mut ins = vec![prev, clk];
                ins.extend(rstn);
                let id = self.sim.add_component(&format!("{name}_q{k}"), comp, &ins);
                self.tag(id, CellClass::Dff, p.delay);
                self.sim.set_component_pins(id, &[prev], &[clk]);
                self.sim.set_capture_rule(tok_last, prev);
                let res = self.sim.connect_driver(id, tok_last);
                self.check_driver(name, res);
                self.sim.set_signal_energy(tok_last, p.energy_fj);
                tokens.push(tok_last);
            } else {
                let q = self.dff(&format!("{name}_q{k}"), prev, clk, rstn);
                tokens.push(q);
                prev = q;
            }
        }
        tokens
    }

    /// A one-hot ring counter with a synchronous advance enable: the
    /// token moves one position on rising clock edges where `en` is
    /// high and holds otherwise. Same token encoding as
    /// [`CircuitBuilder::ring_counter`]. Each stage costs a mux plus a
    /// flip-flop (the standard enabled-register idiom).
    ///
    /// Requires `n >= 2` (recorded as a [`BuildError`] otherwise).
    pub fn ring_counter_en(
        &mut self,
        name: &str,
        clk: SignalId,
        en: SignalId,
        rstn: Option<SignalId>,
        n: usize,
    ) -> Vec<SignalId> {
        if !self.param_ok(n >= 2, name, "ring counter needs at least two stages") {
            return Vec::new();
        }
        let tok_last = self.sim.add_signal(&format!("{name}_t{}", n - 1), 1);
        let next0 = {
            let p = self.account(CellKind::Inv, 1);
            let out = self.sim.add_signal(&format!("{name}_n0"), 1);
            let comp = Gate::new(GateOp::Inv, vec![tok_last], out, 1, p.delay);
            let id = self.sim.add_component(&format!("{name}_n0"), comp, &[tok_last]);
            self.tag(id, CellClass::Comb, p.delay);
            self.gate_spec(id, out, GateOp::Inv, &[tok_last], 1, p.delay);
            let res = self.sim.connect_driver(id, out);
            self.check_driver(name, res);
            self.sim.set_signal_energy(out, p.energy_fj);
            out
        };
        // Stage 0 (stores the complement of its token).
        let q0_sig = self.sim.add_signal(&format!("{name}_q0"), 1);
        let d0 = self.mux2(&format!("{name}_m0"), en, q0_sig, next0);
        {
            let p = self.account(CellKind::Dff, 1);
            let comp = crate::seq::Dff::new(d0, clk, rstn, q0_sig, 1, p.delay);
            let mut ins = vec![d0, clk];
            ins.extend(rstn);
            let id = self.sim.add_component(&format!("{name}_q0"), comp, &ins);
            self.tag(id, CellClass::Dff, p.delay);
            self.sim.set_component_pins(id, &[d0], &[clk]);
            self.sim.set_capture_rule(q0_sig, d0);
            let res = self.sim.connect_driver(id, q0_sig);
            self.check_driver(name, res);
            self.sim.set_signal_energy(q0_sig, p.energy_fj);
        }
        let t0 = self.inv(&format!("{name}_t0"), q0_sig);
        let mut tokens = vec![t0];
        let mut prev = t0;
        for k in 1..n {
            let q_sig = if k == n - 1 {
                tok_last
            } else {
                self.sim.add_signal(&format!("{name}_q{k}"), 1)
            };
            let d = self.mux2(&format!("{name}_m{k}"), en, q_sig, prev);
            let p = self.account(CellKind::Dff, 1);
            let comp = crate::seq::Dff::new(d, clk, rstn, q_sig, 1, p.delay);
            let mut ins = vec![d, clk];
            ins.extend(rstn);
            let id = self.sim.add_component(&format!("{name}_q{k}"), comp, &ins);
            self.tag(id, CellClass::Dff, p.delay);
            self.sim.set_component_pins(id, &[d], &[clk]);
            self.sim.set_capture_rule(q_sig, d);
            let res = self.sim.connect_driver(id, q_sig);
            self.check_driver(name, res);
            self.sim.set_signal_energy(q_sig, p.energy_fj);
            tokens.push(q_sig);
            prev = q_sig;
        }
        tokens
    }

    /// A one-hot multiplexer (AND-OR structure): selects `data[k]`
    /// where `tokens[k]` is high. All data signals share one width;
    /// tokens are 1-bit and assumed one-hot.
    ///
    /// Empty slices or mismatched lengths are recorded as a
    /// [`BuildError`].
    pub fn onehot_mux(
        &mut self,
        name: &str,
        tokens: &[SignalId],
        data: &[SignalId],
    ) -> SignalId {
        if tokens.is_empty() {
            let width = data.first().map_or(1, |&d| self.sim.signal_info(d).width);
            self.record_error(BuildError::EmptyInputs { cell: name.to_string() });
            return self.placeholder(name, width);
        }
        if !self.param_ok(tokens.len() == data.len(), name, "token/data count mismatch") {
            let width = data.first().map_or(1, |&d| self.sim.signal_info(d).width);
            return self.placeholder(name, width);
        }
        let mut terms: Vec<SignalId> = tokens
            .iter()
            .zip(data)
            .enumerate()
            .map(|(k, (&t, &d))| self.and2(&format!("{name}_and{k}"), d, t))
            .collect();
        // Reduce with a tree of OR gates (up to 4-input).
        let mut level = 0;
        while terms.len() > 1 {
            let mut next = Vec::with_capacity(terms.len().div_ceil(4));
            for (j, chunk) in terms.chunks(4).enumerate() {
                let nm = format!("{name}_or{level}_{j}");
                let out = match chunk {
                    [a] => *a,
                    [a, b] => self.or2(&nm, *a, *b),
                    [a, b, c] => self.or3(&nm, *a, *b, *c),
                    [a, b, c, d] => self.or4(&nm, *a, *b, *c, *d),
                    _ => unreachable!("chunks(4) yields 1..=4 items"),
                };
                next.push(out);
            }
            terms = next;
            level += 1;
        }
        terms[0]
    }

    /// A gated ring oscillator: one NAND (gating with `enable`) plus
    /// `stages - 1` inverters in a loop. `stages` must be odd so the
    /// loop inverts. Returns the oscillator output node. The paper's
    /// word-level serializer derives its burst timing from exactly
    /// this structure ("5 back to back invertors", §IV).
    ///
    /// An even or too-small stage count is recorded as a
    /// [`BuildError`].
    pub fn ring_oscillator(&mut self, name: &str, enable: SignalId) -> SignalId {
        self.ring_oscillator_stages(name, enable, 5)
    }

    /// Ring oscillator with an explicit stage count (see
    /// [`CircuitBuilder::ring_oscillator`]).
    pub fn ring_oscillator_stages(
        &mut self,
        name: &str,
        enable: SignalId,
        stages: usize,
    ) -> SignalId {
        if !self.param_ok(
            stages % 2 == 1 && stages >= 3,
            name,
            "ring oscillator needs an odd stage count >= 3",
        ) {
            return self.placeholder(name, 1);
        }
        // Feedback node must exist before the NAND that closes the loop.
        let fb = self.sim.add_signal(&format!("{name}_fb"), 1);
        let g0 = self.gate(&format!("{name}_nand"), GateOp::Nand, CellKind::Nand(2), &[enable, fb]);
        let mut node = g0;
        for i in 0..stages - 2 {
            node = self.inv(&format!("{name}_inv{i}"), node);
        }
        // Close the loop with the final inverter driving fb.
        let p = self.account(CellKind::Inv, 1);
        let comp = Gate::new(GateOp::Inv, vec![node], fb, 1, p.delay);
        let id = self.sim.add_component(&format!("{name}_inv_fb"), comp, &[node]);
        self.tag(id, CellClass::Comb, p.delay);
        self.gate_spec(id, fb, GateOp::Inv, &[node], 1, p.delay);
        // A ring oscillator is the one intentional combinational loop
        // in the paper's designs (the I3 burst clock); exempting its
        // loop-closing inverter lets the loop lint downgrade every
        // cycle through it to an informational finding.
        self.sim.set_loop_exempt(id);
        let res = self.sim.connect_driver(id, fb);
        self.check_driver(name, res);
        self.sim.set_signal_energy(fb, p.energy_fj);
        fb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::UnitLibrary;

    #[test]
    fn area_ledger_accumulates_per_scope() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        b.push_scope("blk");
        let _ = b.inv("i0", a);
        let bus = b.input("bus", 8);
        let _ = b.buf("b0", bus); // 8 bits => 8 µm² in UnitLibrary
        b.pop_scope();
        let _ = b.inv("i1", a);
        let ledger = b.finish();
        assert!((ledger.subtree_um2("blk") - 9.0).abs() < 1e-9);
        assert!((ledger.total_um2() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_prefix_is_component_wise() {
        let mut l = AreaLedger::new();
        l.add("link", 1.0);
        l.add("link.ser", 2.0);
        l.add("linker", 4.0);
        assert!((l.subtree_um2("link") - 3.0).abs() < 1e-9);
        assert!((l.subtree_um2("") - 7.0).abs() < 1e-9);
    }

    #[test]
    fn shift_register_shifts() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let d = b.input("d", 1);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", Time::from_ns(1));
        let taps = b.shift_register("sr", d, clk, Some(rstn), 3);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        // One-cycle pulse on d.
        sim.stimulus(
            d,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(200), Value::one(1)),
                (Time::from_ps(1200), Value::zero(1)),
            ],
        );
        // Rising edges at 0.5, 1.5, 2.5, 3.5 ns.
        sim.run_until(Time::from_ns(1)).unwrap();
        assert!(sim.value(taps[0]).is_high());
        sim.run_until(Time::from_ns(2)).unwrap();
        assert!(sim.value(taps[0]).is_low());
        assert!(sim.value(taps[1]).is_high());
        sim.run_until(Time::from_ns(3)).unwrap();
        assert!(sim.value(taps[2]).is_high());
        sim.run_until(Time::from_ns(4)).unwrap();
        assert!(sim.value(taps[2]).is_low());
    }

    #[test]
    fn xor_tree_computes_parity() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let bus = b.input("bus", 8);
        let bits: Vec<SignalId> =
            (0..8u8).map(|i| b.slice(&format!("b{i}"), bus, i, 1)).collect();
        let parity = b.xor_tree("par", &bits);
        let any = b.or_tree("any", &bits);
        b.finish();
        let patterns = [0x00u64, 0x01, 0xA5, 0xFF, 0x80, 0x7E];
        let sched: Vec<(Time, Value)> = patterns
            .iter()
            .enumerate()
            .map(|(i, &p)| (Time::from_ns(i as u64), Value::from_u64(8, p)))
            .collect();
        sim.stimulus(bus, &sched);
        for (i, &pattern) in patterns.iter().enumerate() {
            sim.run_until(Time::from_ns(i as u64) + Time::from_ps(900)).unwrap();
            let expect = u64::from(pattern.count_ones() % 2 == 1);
            assert_eq!(sim.value(parity).to_u64(), Some(expect), "pattern {pattern:#x}");
            assert_eq!(sim.value(any).to_u64(), Some(u64::from(pattern != 0)));
        }
    }

    #[test]
    fn ripple_counter_taps_double_per_stage() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", Time::from_ns(1));
        let taps = b.ripple_counter("cnt", clk, Some(rstn), 4);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        // Rising clock edges at 0.5, 1.5, 2.5 … ns; tap i first rises
        // after 2^i edges. Running to `n` ns covers exactly `n` edges
        // plus settle time.
        let first_high = |sim: &mut Simulator, tap: SignalId| -> u64 {
            let mut edges = 0u64;
            while sim.value(tap).is_low() {
                edges += 1;
                assert!(edges <= 16, "tap never rose");
                sim.run_until(Time::from_ns(edges)).unwrap();
            }
            edges
        };
        // Settle the async reset so taps read 0 (not X) before edge 1.
        sim.run_until(Time::from_ps(200)).unwrap();
        for (i, &tap) in taps.iter().enumerate() {
            assert_eq!(first_high(&mut sim, tap), 1 << i, "tap {i}");
        }
    }

    #[test]
    fn ring_oscillator_runs_when_enabled() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let en = b.input("en", 1);
        let osc = b.ring_oscillator("ro", en);
        b.finish();
        sim.stimulus(en, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))]);
        sim.run_until(Time::from_ns(1)).unwrap();
        let toggles_disabled = sim.toggles(osc);
        sim.run_until(Time::from_ns(3)).unwrap();
        let toggles_enabled = sim.toggles(osc) - toggles_disabled;
        // Period = 2 × 5 stages × 10 ps = 100 ps -> 20 half-periods per ns.
        assert!(toggles_enabled >= 30, "oscillator barely ran: {toggles_enabled}");
    }

    #[test]
    fn ring_oscillator_stops_when_disabled() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let en = b.input("en", 1);
        let osc = b.ring_oscillator("ro", en);
        b.finish();
        // Enable must start low: from an all-X loop state the oscillator
        // cannot self-start (X is a fixed point of the inverter chain),
        // exactly like an unreset physical ring needs a known seed.
        sim.stimulus(
            en,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(500), Value::one(1)),
                (Time::from_ns(2), Value::zero(1)),
            ],
        );
        sim.run_until(Time::from_ns(2)).unwrap();
        assert!(sim.toggles(osc) > 10);
        let at_disable = sim.toggles(osc);
        sim.run_until(Time::from_ns(4)).unwrap();
        assert!(
            sim.toggles(osc) <= at_disable + 2,
            "oscillator kept running after disable"
        );
    }

    #[test]
    fn ring_counter_walks_one_hot() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", Time::from_ns(1));
        let toks = b.ring_counter("ring", clk, Some(rstn), 4);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        let read = |sim: &Simulator, toks: &[SignalId]| -> Vec<u64> {
            toks.iter().map(|&t| sim.value(t).to_u64().unwrap_or(9)).collect()
        };
        // After reset, before any clock edge: token at stage 0.
        sim.run_until(Time::from_ps(400)).unwrap();
        assert_eq!(read(&sim, &toks), vec![1, 0, 0, 0]);
        // Rising edges at 0.5, 1.5, 2.5, 3.5, 4.5 ns.
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(read(&sim, &toks), vec![0, 1, 0, 0]);
        sim.run_until(Time::from_ns(2)).unwrap();
        assert_eq!(read(&sim, &toks), vec![0, 0, 1, 0]);
        sim.run_until(Time::from_ns(3)).unwrap();
        assert_eq!(read(&sim, &toks), vec![0, 0, 0, 1]);
        sim.run_until(Time::from_ns(4)).unwrap();
        assert_eq!(read(&sim, &toks), vec![1, 0, 0, 0]); // wrapped
        // Exactly one token at all times after settling.
        let total: u64 = read(&sim, &toks).iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn ring_counter_en_holds_and_advances() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let en = b.input("en", 1);
        let clk = b.clock("clk", Time::from_ns(1));
        let toks = b.ring_counter_en("ring", clk, en, Some(rstn), 4);
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        // Enabled for exactly one edge (the 1.5 ns edge), then hold.
        sim.stimulus(
            en,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(1200), Value::one(1)),
                (Time::from_ps(1800), Value::zero(1)),
            ],
        );
        let read = |sim: &Simulator, toks: &[SignalId]| -> Vec<u64> {
            toks.iter().map(|&t| sim.value(t).to_u64().unwrap_or(9)).collect()
        };
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(read(&sim, &toks), vec![1, 0, 0, 0]); // held (en=0 at 0.5 ns edge)
        sim.run_until(Time::from_ns(2)).unwrap();
        assert_eq!(read(&sim, &toks), vec![0, 1, 0, 0]); // advanced at 1.5 ns
        sim.run_until(Time::from_ns(5)).unwrap();
        assert_eq!(read(&sim, &toks), vec![0, 1, 0, 0]); // held since
    }

    #[test]
    fn slice_concat_and_transport() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let bus = b.input("bus", 32);
        let lo = b.slice("lo", bus, 0, 16);
        let hi = b.slice("hi", bus, 16, 16);
        let back = b.concat("back", &[lo, hi]);
        let wired = b.transport("seg", back, Time::from_ps(7), 2.5);
        let ledger = b.finish();
        assert_eq!(ledger.total_um2(), 0.0, "wiring must not add cell area");
        sim.stimulus(bus, &[(Time::ZERO, Value::from_u64(32, 0xCAFE_F00D))]);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(lo).to_u64(), Some(0xF00D));
        assert_eq!(sim.value(hi).to_u64(), Some(0xCAFE));
        assert_eq!(sim.value(back).to_u64(), Some(0xCAFE_F00D));
        assert_eq!(sim.value(wired).to_u64(), Some(0xCAFE_F00D));
        assert!((sim.signal_info(wired).energy_per_toggle_fj - 2.5).abs() < 1e-12);
    }

    #[test]
    fn onehot_mux_selects_by_token() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let t: Vec<SignalId> = (0..4).map(|i| b.input(&format!("t{i}"), 1)).collect();
        let d: Vec<SignalId> = (0..4).map(|i| b.input(&format!("d{i}"), 8)).collect();
        let out = b.onehot_mux("m", &t, &d);
        b.finish();
        for (i, &di) in d.iter().enumerate() {
            sim.stimulus(di, &[(Time::ZERO, Value::from_u64(8, 0x10 + i as u64))]);
        }
        for (i, &ti) in t.iter().enumerate() {
            sim.stimulus(
                ti,
                &[
                    (Time::ZERO, Value::from_bool(i == 0)),
                    (Time::from_ns(1), Value::from_bool(i == 2)),
                ],
            );
        }
        sim.run_until(Time::from_ps(500)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x10));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x12));
    }

    #[test]
    fn buf_chain_delays() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        let y = b.buf_chain("d", a, 5);
        let ledger = b.finish();
        assert!((ledger.total_um2() - 5.0).abs() < 1e-9);
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))]);
        sim.run_until(Time::from_ns(1) + Time::from_ps(49)).unwrap();
        assert!(sim.value(y).is_low());
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_high());
        assert_eq!(sim.signal_info(y).last_change, Time::from_ns(1) + Time::from_ps(50));
    }

    #[test]
    fn tie_and_wire_load() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let t = b.tie("hi", Value::one(1));
        // 100 µm of wire at 0.2 fF/µm, 1.2 V: 0.5×20×1.44 = 14.4 fJ/toggle
        // on top of the cell's 1.0.
        b.add_wire_load(t, 100.0);
        b.finish();
        sim.run_to_quiescence().unwrap();
        let info = sim.signal_info(t);
        assert!((info.energy_per_toggle_fj - 15.4).abs() < 1e-9);
        assert!(sim.value(t).is_high());
    }

    #[test]
    fn double_drive_is_recorded_not_panicked() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        let y = sim_target(&mut b, a);
        // Drive `y` a second time through buf_into: the conflict must
        // be recorded, not panic, and later calls become no-ops.
        b.buf_into("dup", y, a);
        assert!(matches!(b.error(), Some(BuildError::AlreadyDriven { .. })));
        // Poisoned builder: further construction is inert.
        let z = b.inv("after", a);
        assert_eq!(sim_width(&b, z), 1);
        let err = b.try_finish().unwrap_err();
        assert!(err.to_string().contains("dup"));
    }

    fn sim_target(b: &mut CircuitBuilder<'_>, a: SignalId) -> SignalId {
        b.inv("first", a)
    }

    fn sim_width(b: &CircuitBuilder<'_>, s: SignalId) -> u8 {
        b.sim.signal_info(s).width
    }

    #[test]
    fn bad_parameter_poisons_builder() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let clk = b.input("clk", 1);
        let toks = b.ring_counter("ring", clk, None, 1); // n < 2
        assert!(toks.is_empty());
        match b.try_finish() {
            Err(BuildError::BadParameter { cell, message }) => {
                assert_eq!(cell, "ring");
                assert!(message.contains("two stages"));
            }
            other => panic!("expected BadParameter, got {other:?}"),
        }
    }

    #[test]
    fn width_mismatch_is_recorded() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 4);
        let s = b.input("s", 1);
        let bwide = b.input("b", 8);
        let _ = b.mux2("m0", s, a, bwide);
        assert!(matches!(
            b.take_error(),
            Some(BuildError::WidthMismatch { expected: 4, actual: 8, .. })
        ));
        // take_error clears the poison; the builder is usable again.
        let _ = b.inv("i0", s);
        assert!(b.try_finish().is_ok());
    }

    #[test]
    #[should_panic(expected = "netlist construction failed")]
    fn finish_panics_on_recorded_error() {
        let mut sim = Simulator::new();
        let lib = UnitLibrary;
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let _ = b.onehot_mux("oh", &[], &[]);
        b.finish();
    }
}
