//! Signal sources: clocks and constant ties.

use sal_des::{Component, Ctx, SignalId, Time, Value};

/// An ideal free-running clock generator.
///
/// Starts low at `start` and toggles forever with the given period and
/// high time. Modelling the clock as an ideal source (rather than a
/// netlist of a clock tree) matches the paper's methodology; the clock
/// *tree load* power of the synchronous link is added analytically by
/// the technology power model.
#[derive(Debug)]
pub struct ClockGen {
    out: SignalId,
    period: Time,
    high: Time,
    started: bool,
    level: bool,
}

impl ClockGen {
    /// Creates a 50 %-duty clock.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(out: SignalId, period: Time) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        ClockGen { out, period, high: period / 2, started: false, level: false }
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        self.period
    }
}

impl Component for ClockGen {
    fn on_input(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            self.level = false;
            ctx.drive(self.out, Value::zero(1), Time::ZERO);
            ctx.wake_after(self.period - self.high);
            return;
        }
        self.level = !self.level;
        ctx.drive(self.out, Value::from_bool(self.level), Time::ZERO);
        ctx.wake_after(if self.level { self.high } else { self.period - self.high });
    }
}

/// Drives a constant value at time zero (tie-high / tie-low cell).
#[derive(Debug)]
pub struct ConstDriver {
    out: SignalId,
    value: Value,
}

impl ConstDriver {
    /// Creates a constant driver.
    pub fn new(out: SignalId, value: Value) -> Self {
        ConstDriver { out, value }
    }
}

impl Component for ConstDriver {
    fn on_input(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        ctx.drive(self.out, self.value, Time::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::Simulator;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_toggles_at_period() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", 1);
        let id = sim.add_component("ck", ClockGen::new(clk, Time::from_ns(10)), &[]);
        sim.connect_driver(id, clk).unwrap();
        sim.schedule_wake(id, Time::ZERO);
        let edges = Rc::new(RefCell::new(Vec::new()));
        let e2 = edges.clone();
        sim.monitor("mon", clk, move |t, v| {
            if v.is_high() {
                e2.borrow_mut().push(t);
            }
        });
        sim.run_until(Time::from_ns(35)).unwrap();
        // Rising edges at 5, 15, 25, 35 ns (first half-period is low).
        assert_eq!(
            &*edges.borrow(),
            &[Time::from_ns(5), Time::from_ns(15), Time::from_ns(25), Time::from_ns(35)]
        );
    }

    #[test]
    fn const_driver_sets_value_once() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("tie", 4);
        let id = sim.add_component("tie", ConstDriver::new(s, Value::from_u64(4, 0b1001)), &[]);
        sim.connect_driver(id, s).unwrap();
        sim.schedule_wake(id, Time::ZERO);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(s).to_u64(), Some(0b1001));
        assert_eq!(sim.toggles(s), 4); // X -> 1001 counts 4 bit resolutions
    }
}
