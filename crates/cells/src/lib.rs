//! # sal-cells — primitive cell library
//!
//! Gate-level building blocks for the circuits of *Serialized
//! Asynchronous Links for NoC* (Ogg et al., DATE 2008), implemented as
//! [`sal_des`] components:
//!
//! * **Combinational**: inverters, buffers, N-input AND/OR/NAND/NOR,
//!   XOR/XNOR, 2-way multiplexers — all word-wide (a 32-bit bus is one
//!   signal; area and energy scale with the width).
//! * **Sequential**: transparent D-latches and positive-edge D
//!   flip-flops with asynchronous active-low reset.
//! * **Asynchronous** (Fig 3 of the paper): the Muller **C-element**
//!   and the **David cell**, the two control cells from which the
//!   paper's serializer, deserializer and interface sequencers are
//!   built.
//! * **Sources**: ideal clock generators, constant ties, plus
//!   structural compounds (ring oscillator, shift register) used by the
//!   word-level link.
//!
//! Cells take their delay/area/energy parameters from a [`Library`]
//! implementation (the real 0.12 µm-flavoured numbers live in
//! `sal-tech`). The [`CircuitBuilder`] wraps a
//! [`Simulator`](sal_des::Simulator) to instantiate cells, wire them
//! up, annotate per-signal switching energy and keep a per-scope area
//! ledger — which is how the paper's Table 1/Table 2 area numbers are
//! regenerated.
//!
//! ```
//! use sal_cells::{CircuitBuilder, UnitLibrary};
//! use sal_des::{Simulator, Time, Value};
//!
//! let mut sim = Simulator::new();
//! let lib = UnitLibrary::default();
//! let mut b = CircuitBuilder::new(&mut sim, &lib);
//! let a = b.input("a", 1);
//! let y = b.inv("i0", a);
//! let z = b.and2("a0", a, y); // a AND NOT a == 0 once settled
//! b.finish();
//! sim.stimulus(a, &[(Time::ZERO, Value::one(1))]);
//! sim.run_to_quiescence()?;
//! assert!(sim.value(z).is_low());
//! # Ok::<(), sal_des::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_cells;
mod builder;
mod comb;
mod error;
mod kind;
mod seq;
mod sources;

pub use async_cells::{CElement, DavidCell};
pub use builder::{AreaLedger, CircuitBuilder};
pub use error::BuildError;
pub use comb::{Gate, GateOp, Mux2};
pub use kind::{CellKind, CellParams, Library, UnitLibrary};
pub use seq::{DLatch, Dff};
pub use sources::{ClockGen, ConstDriver};
