//! Combinational cells.

use sal_des::{Component, Ctx, SignalId, Time, Value};

/// The boolean function computed by a [`Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// Buffer (single input).
    Buf,
    /// Inverter (single input).
    Inv,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

/// A word-wide combinational gate.
///
/// All inputs must either match the output width or be 1 bit wide, in
/// which case they are broadcast across the word — the common "control
/// signal gates a bus" idiom (e.g. a latch-enable ANDed with 8 data
/// bits costs 8 AND cells, which is how the builder accounts area).
#[derive(Debug)]
pub struct Gate {
    op: GateOp,
    /// Input signals, stored inline: the constructor caps gates at 4
    /// inputs, and keeping them out of a separate heap allocation
    /// saves a dependent load on every evaluation of the hot loop.
    inputs: [SignalId; 4],
    n_inputs: u8,
    out: SignalId,
    width: u8,
    delay: Time,
}

impl Gate {
    /// Creates a gate. Prefer the [`CircuitBuilder`](crate::CircuitBuilder)
    /// methods, which also handle driver registration and accounting.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not suit the operation (1 for
    /// Buf/Inv, exactly 2 for Xor/Xnor, 2..=4 otherwise).
    pub fn new(op: GateOp, inputs: Vec<SignalId>, out: SignalId, width: u8, delay: Time) -> Self {
        let n = inputs.len();
        let ok = match op {
            GateOp::Buf | GateOp::Inv => n == 1,
            GateOp::Xor | GateOp::Xnor => n == 2,
            _ => (2..=4).contains(&n),
        };
        assert!(ok, "gate {op:?} cannot have {n} inputs");
        let mut arr = [out; 4]; // placeholder; only ..n is ever read
        arr[..n].copy_from_slice(&inputs);
        Gate { op, inputs: arr, n_inputs: n as u8, out, width, delay }
    }

    fn broadcast(v: Value, width: u8) -> Value {
        if v.width() == width {
            v
        } else {
            assert_eq!(v.width(), 1, "gate input width must be 1 or the gate width");
            match v.as_logic() {
                sal_des::Logic::Zero => Value::zero(width),
                sal_des::Logic::One => Value::ones(width),
                sal_des::Logic::X => Value::all_x(width),
            }
        }
    }
}

impl Component for Gate {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let w = self.width;
        let n = self.n_inputs as usize;
        let first = Self::broadcast(ctx.read(self.inputs[0]), w);
        // One- and two-input gates are the bulk of every netlist in
        // this repository; give them straight-line paths instead of
        // the generic fold.
        let v = if n == 1 {
            match self.op {
                GateOp::Buf => first,
                GateOp::Inv => first.not(),
                _ => unreachable!("multi-input op with one input"),
            }
        } else if n == 2 {
            let b = Self::broadcast(ctx.read(self.inputs[1]), w);
            match self.op {
                GateOp::And => first.and(&b),
                GateOp::Or => first.or(&b),
                GateOp::Nand => first.and(&b).not(),
                GateOp::Nor => first.or(&b).not(),
                GateOp::Xor => first.xor(&b),
                GateOp::Xnor => first.xor(&b).not(),
                GateOp::Buf | GateOp::Inv => unreachable!("1-input op with two inputs"),
            }
        } else {
            let it = self.inputs[1..n].iter().map(|&s| Self::broadcast(ctx.read(s), w));
            match self.op {
                GateOp::And => it.fold(first, |a, b| a.and(&b)),
                GateOp::Or => it.fold(first, |a, b| a.or(&b)),
                GateOp::Nand => it.fold(first, |a, b| a.and(&b)).not(),
                GateOp::Nor => it.fold(first, |a, b| a.or(&b)).not(),
                _ => unreachable!("op {:?} cannot have {n} inputs", self.op),
            }
        };
        ctx.drive(self.out, v, self.delay);
    }
}

/// A word-wide 2-way multiplexer: `out = if sel { b } else { a }`.
#[derive(Debug)]
pub struct Mux2 {
    sel: SignalId,
    a: SignalId,
    b: SignalId,
    out: SignalId,
    delay: Time,
}

impl Mux2 {
    /// Creates a multiplexer; `sel` must be 1 bit wide, `a`/`b`/`out`
    /// share the word width.
    pub fn new(sel: SignalId, a: SignalId, b: SignalId, out: SignalId, delay: Time) -> Self {
        Mux2 { sel, a, b, out, delay }
    }
}

impl Component for Mux2 {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let sel = ctx.read(self.sel);
        let a = ctx.read(self.a);
        let b = ctx.read(self.b);
        ctx.drive(self.out, Value::mux(&sel, &a, &b), self.delay);
    }
}

/// Zero-cost wiring: extracts a bit range of a bus onto its own signal
/// (pure routing, no cell — no area, no energy, negligible delay).
#[derive(Debug)]
pub struct SliceWire {
    src: SignalId,
    lo: u8,
    width: u8,
    out: SignalId,
}

impl SliceWire {
    /// Creates a slice view of `src[lo .. lo+width]`.
    pub fn new(src: SignalId, lo: u8, width: u8, out: SignalId) -> Self {
        SliceWire { src, lo, width, out }
    }
}

impl Component for SliceWire {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let v = ctx.read(self.src).slice(self.lo, self.width);
        ctx.drive(self.out, v, Time::from_fs(1));
    }
}

/// Zero-cost wiring: concatenates several buses (first input occupies
/// the low bits) onto one signal.
#[derive(Debug)]
pub struct ConcatWire {
    parts: Vec<SignalId>,
    out: SignalId,
}

impl ConcatWire {
    /// Creates a concatenation of `parts` (low bits first).
    pub fn new(parts: Vec<SignalId>, out: SignalId) -> Self {
        ConcatWire { parts, out }
    }
}

impl Component for ConcatWire {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let mut it = self.parts.iter();
        let first = ctx.read(*it.next().expect("concat of nothing"));
        let v = it.fold(first, |acc, &s| acc.concat(&ctx.read(s)));
        ctx.drive(self.out, v, Time::from_fs(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::Simulator;

    fn run_gate(op: GateOp, ins: &[u64], width: u8) -> Value {
        let mut sim = Simulator::new();
        let sigs: Vec<SignalId> =
            (0..ins.len()).map(|i| sim.add_signal(&format!("i{i}"), width)).collect();
        let out = sim.add_signal("out", width);
        let g = Gate::new(op, sigs.clone(), out, width, Time::from_ps(5));
        let id = sim.add_component("g", g, &sigs);
        sim.connect_driver(id, out).unwrap();
        for (s, &v) in sigs.iter().zip(ins) {
            sim.stimulus(*s, &[(Time::ZERO, Value::from_u64(width, v))]);
        }
        sim.run_to_quiescence().unwrap();
        sim.value(out)
    }

    #[test]
    fn basic_truth_tables() {
        assert_eq!(run_gate(GateOp::And, &[0b1100, 0b1010], 4).to_u64(), Some(0b1000));
        assert_eq!(run_gate(GateOp::Or, &[0b1100, 0b1010], 4).to_u64(), Some(0b1110));
        assert_eq!(run_gate(GateOp::Nand, &[0b11, 0b01], 2).to_u64(), Some(0b10));
        assert_eq!(run_gate(GateOp::Nor, &[0b00, 0b01], 2).to_u64(), Some(0b10));
        assert_eq!(run_gate(GateOp::Xor, &[0b1100, 0b1010], 4).to_u64(), Some(0b0110));
        assert_eq!(run_gate(GateOp::Xnor, &[0b1100, 0b1010], 4).to_u64(), Some(0b1001));
        assert_eq!(run_gate(GateOp::Inv, &[0b1010], 4).to_u64(), Some(0b0101));
        assert_eq!(run_gate(GateOp::Buf, &[0b1010], 4).to_u64(), Some(0b1010));
    }

    #[test]
    fn three_input_and() {
        assert_eq!(run_gate(GateOp::And, &[0b1111, 0b1101, 0b1001], 4).to_u64(), Some(0b1001));
    }

    #[test]
    #[should_panic(expected = "cannot have")]
    fn xor_rejects_three_inputs() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let out = sim.add_signal("o", 1);
        let _ = Gate::new(GateOp::Xor, vec![a, a, a], out, 1, Time::from_ps(1));
    }

    #[test]
    fn one_bit_control_broadcasts_over_bus() {
        let mut sim = Simulator::new();
        let bus = sim.add_signal("bus", 8);
        let en = sim.add_signal("en", 1);
        let out = sim.add_signal("out", 8);
        let g = Gate::new(GateOp::And, vec![bus, en], out, 8, Time::from_ps(5));
        let id = sim.add_component("g", g, &[bus, en]);
        sim.connect_driver(id, out).unwrap();
        sim.stimulus(bus, &[(Time::ZERO, Value::from_u64(8, 0xA5))]);
        sim.stimulus(
            en,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(50), Value::one(1))],
        );
        sim.run_until(Time::from_ps(30)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0xA5));
    }

    #[test]
    fn mux_switches_buses() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        let b = sim.add_signal("b", 8);
        let sel = sim.add_signal("sel", 1);
        let out = sim.add_signal("out", 8);
        let id = sim.add_component("m", Mux2::new(sel, a, b, out, Time::from_ps(5)), &[sel, a, b]);
        sim.connect_driver(id, out).unwrap();
        sim.stimulus(a, &[(Time::ZERO, Value::from_u64(8, 0x11))]);
        sim.stimulus(b, &[(Time::ZERO, Value::from_u64(8, 0x22))]);
        sim.stimulus(
            sel,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        sim.run_until(Time::from_ps(50)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x11));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x22));
    }
}
