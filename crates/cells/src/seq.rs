//! Sequential cells: transparent latches and edge-triggered flip-flops.

use sal_des::{Component, Ctx, Logic, SignalId, Time, Value};

/// A word-wide transparent-high D latch with optional asynchronous
/// active-low reset.
///
/// While `en` is high the latch is transparent (`q` follows `d` after
/// the cell delay); on the falling edge of `en` the last value is
/// held. When `rstn` is low, `q` is forced to zero regardless of `en`.
#[derive(Debug)]
pub struct DLatch {
    d: SignalId,
    en: SignalId,
    rstn: Option<SignalId>,
    q: SignalId,
    width: u8,
    delay: Time,
    state: Value,
}

impl DLatch {
    /// Creates a latch; see the type docs for port semantics.
    pub fn new(
        d: SignalId,
        en: SignalId,
        rstn: Option<SignalId>,
        q: SignalId,
        width: u8,
        delay: Time,
    ) -> Self {
        DLatch { d, en, rstn, q, width, delay, state: Value::all_x(width) }
    }
}

impl Component for DLatch {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(rstn) = self.rstn {
            if ctx.read(rstn).is_low() {
                self.state = Value::zero(self.width);
                ctx.drive(self.q, self.state, self.delay);
                return;
            }
        }
        match ctx.read(self.en).as_logic() {
            Logic::One => {
                self.state = ctx.read(self.d);
                ctx.drive(self.q, self.state, self.delay);
            }
            Logic::Zero => { /* opaque: hold */ }
            Logic::X => {
                // Unknown enable: pessimistically X unless d equals the
                // held state (then the output is that value either way).
                if ctx.read(self.d) != self.state {
                    self.state = Value::all_x(self.width);
                    ctx.drive(self.q, self.state, self.delay);
                }
            }
        }
    }
}

/// A word-wide positive-edge D flip-flop with asynchronous active-low
/// reset (clears to zero).
///
/// When the simulator's fault plan enables setup checking for this
/// component ([`Ctx::setup_scale`]), a data change inside the setup
/// window before the capturing edge makes the flop capture all-`X` —
/// the discrete-event stand-in for metastability. The nominal window
/// is the cell's own clk→q delay (a setup time is, to first order, a
/// gate delay) and stretches with the component's delay derating, so
/// uniformly derated self-timed logic keeps its margins while a path
/// racing a fixed clock loses slack from both sides.
#[derive(Debug)]
pub struct Dff {
    d: SignalId,
    clk: SignalId,
    rstn: Option<SignalId>,
    q: SignalId,
    width: u8,
    delay: Time,
    prev_clk: Logic,
}

impl Dff {
    /// Creates a flip-flop; `q` updates `delay` after each rising edge
    /// of `clk`, and clears to zero asynchronously while `rstn` is low.
    pub fn new(
        d: SignalId,
        clk: SignalId,
        rstn: Option<SignalId>,
        q: SignalId,
        width: u8,
        delay: Time,
    ) -> Self {
        Dff { d, clk, rstn, q, width, delay, prev_clk: Logic::X }
    }
}

impl Component for Dff {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(rstn) = self.rstn {
            if ctx.read(rstn).is_low() {
                self.prev_clk = ctx.read(self.clk).as_logic();
                ctx.drive(self.q, Value::zero(self.width), self.delay);
                return;
            }
        }
        let clk = ctx.read(self.clk).as_logic();
        let rising = self.prev_clk == Logic::Zero && clk == Logic::One;
        self.prev_clk = clk;
        if rising {
            let d = ctx.read(self.d);
            let q = match ctx.setup_scale() {
                Some(scale)
                    if ctx.now() - ctx.last_change(self.d)
                        < Time::from_fs((self.delay.as_fs() as f64 * scale).round() as u64) =>
                {
                    Value::all_x(self.width)
                }
                _ => d,
            };
            ctx.drive(self.q, q, self.delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::Simulator;

    #[test]
    fn latch_transparent_then_holds() {
        let mut sim = Simulator::new();
        let d = sim.add_signal("d", 8);
        let en = sim.add_signal("en", 1);
        let q = sim.add_signal("q", 8);
        let id = sim.add_component(
            "lt",
            DLatch::new(d, en, None, q, 8, Time::from_ps(5)),
            &[d, en],
        );
        sim.connect_driver(id, q).unwrap();
        sim.stimulus(
            d,
            &[
                (Time::ZERO, Value::from_u64(8, 0xAA)),
                (Time::from_ps(100), Value::from_u64(8, 0x55)),
            ],
        );
        sim.stimulus(
            en,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(50), Value::zero(1))],
        );
        sim.run_until(Time::from_ps(40)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0xAA)); // transparent
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0xAA)); // held across d change
    }

    #[test]
    fn latch_async_reset_dominates() {
        let mut sim = Simulator::new();
        let d = sim.add_signal("d", 4);
        let en = sim.add_signal("en", 1);
        let rstn = sim.add_signal("rstn", 1);
        let q = sim.add_signal("q", 4);
        let id = sim.add_component(
            "lt",
            DLatch::new(d, en, Some(rstn), q, 4, Time::from_ps(5)),
            &[d, en, rstn],
        );
        sim.connect_driver(id, q).unwrap();
        sim.stimulus(d, &[(Time::ZERO, Value::from_u64(4, 0xF))]);
        sim.stimulus(en, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(50), Value::zero(1))],
        );
        sim.run_until(Time::from_ps(30)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0xF));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0));
    }

    fn dff_fixture(sim: &mut Simulator) -> (SignalId, SignalId, SignalId, SignalId) {
        let d = sim.add_signal("d", 8);
        let clk = sim.add_signal("clk", 1);
        let rstn = sim.add_signal("rstn", 1);
        let q = sim.add_signal("q", 8);
        let id = sim.add_component(
            "ff",
            Dff::new(d, clk, Some(rstn), q, 8, Time::from_ps(5)),
            &[d, clk, rstn],
        );
        sim.connect_driver(id, q).unwrap();
        (d, clk, rstn, q)
    }

    #[test]
    fn dff_samples_only_on_rising_edge() {
        let mut sim = Simulator::new();
        let (d, clk, rstn, q) = dff_fixture(&mut sim);
        sim.stimulus(rstn, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(
            d,
            &[
                (Time::ZERO, Value::from_u64(8, 0x12)),
                (Time::from_ps(150), Value::from_u64(8, 0x34)),
            ],
        );
        sim.stimulus(
            clk,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(100), Value::one(1)),
                (Time::from_ps(200), Value::zero(1)),
                (Time::from_ps(300), Value::one(1)),
            ],
        );
        sim.run_until(Time::from_ps(50)).unwrap();
        assert!(!sim.value(q).is_fully_known()); // nothing sampled yet
        sim.run_until(Time::from_ps(150)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0x12));
        // d changed mid-cycle: q must not follow until next rising edge.
        sim.run_until(Time::from_ps(250)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0x12));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0x34));
    }

    #[test]
    fn dff_setup_check_flags_late_data() {
        // With setup checking enabled, a d change 3 ps before the
        // capturing edge (inside the 5 ps window) must capture X; a
        // d stable since long before the edge captures normally.
        let mut sim = Simulator::new();
        let (d, clk, rstn, q) = dff_fixture(&mut sim);
        sim.apply_fault_plan(&sal_des::FaultPlan::new(1).with_setup_check()).unwrap();
        sim.stimulus(rstn, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(
            d,
            &[
                (Time::ZERO, Value::from_u64(8, 0x12)),
                (Time::from_ps(97), Value::from_u64(8, 0x34)),
            ],
        );
        sim.stimulus(
            clk,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(100), Value::one(1)),
                (Time::from_ps(200), Value::zero(1)),
                (Time::from_ps(300), Value::one(1)),
            ],
        );
        sim.run_until(Time::from_ps(150)).unwrap();
        assert_eq!(sim.value(q).to_u64(), None, "violating capture must be X");
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0x34), "clean capture must recover");
    }

    #[test]
    fn dff_async_reset_clears() {
        let mut sim = Simulator::new();
        let (d, clk, rstn, q) = dff_fixture(&mut sim);
        sim.stimulus(d, &[(Time::ZERO, Value::from_u64(8, 0xFF))]);
        sim.stimulus(
            clk,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(150), Value::zero(1))],
        );
        sim.run_until(Time::from_ps(120)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0xFF));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0));
    }
}
