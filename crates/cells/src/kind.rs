//! Cell kinds and the technology-library abstraction.

use sal_des::Time;

/// Every primitive cell type the builder can instantiate.
///
/// The set mirrors a small standard-cell library plus the two
/// asynchronous control cells of the paper's Fig 3. A technology
/// library maps each kind to [`CellParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (also used as a wire repeater).
    Buf,
    /// N-input AND (N = 2..=4).
    And(u8),
    /// N-input OR (N = 2..=4).
    Or(u8),
    /// N-input NAND (N = 2..=4).
    Nand(u8),
    /// N-input NOR (N = 2..=4).
    Nor(u8),
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-way multiplexer.
    Mux2,
    /// Transparent-high D latch.
    DLatch,
    /// Positive-edge D flip-flop with asynchronous active-low reset.
    Dff,
    /// Muller C-element with N inputs (N = 2..=3), resettable.
    CElement(u8),
    /// David cell (set/clear token-holding cell, Fig 3 of the paper).
    DavidCell,
    /// Constant tie-high/tie-low cell.
    Tie,
}

impl CellKind {
    /// A short lowercase mnemonic (used in component names/reports).
    pub fn mnemonic(self) -> String {
        match self {
            CellKind::Inv => "inv".into(),
            CellKind::Buf => "buf".into(),
            CellKind::And(n) => format!("and{n}"),
            CellKind::Or(n) => format!("or{n}"),
            CellKind::Nand(n) => format!("nand{n}"),
            CellKind::Nor(n) => format!("nor{n}"),
            CellKind::Xor2 => "xor2".into(),
            CellKind::Xnor2 => "xnor2".into(),
            CellKind::Mux2 => "mux2".into(),
            CellKind::DLatch => "dlatch".into(),
            CellKind::Dff => "dff".into(),
            CellKind::CElement(n) => format!("c{n}"),
            CellKind::DavidCell => "dc".into(),
            CellKind::Tie => "tie".into(),
        }
    }
}

/// Per-cell technology parameters.
///
/// `area_um2` and `energy_fj` are per *bit* of cell width: a 32-bit
/// register bank built as one word-wide `Dff` component accounts
/// exactly like 32 single-bit flip-flops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Propagation delay from any input to the output.
    pub delay: Time,
    /// Layout area per bit, µm².
    pub area_um2: f64,
    /// Switching energy per output bit-toggle, femtojoules. Includes
    /// the cell's internal energy and its typical local-interconnect
    /// load.
    pub energy_fj: f64,
}

/// A technology library: maps cell kinds to parameters and exposes the
/// global electrical constants the wire model needs.
///
/// Implemented by `sal-tech`'s 0.12 µm model; [`UnitLibrary`] is a
/// trivial instance for unit tests.
pub trait Library {
    /// Parameters for a cell kind.
    ///
    /// # Panics
    ///
    /// Implementations may panic on kinds they do not provide (e.g. a
    /// 9-input AND); the builder only requests kinds listed in
    /// [`CellKind`] with valid arities.
    fn params(&self, kind: CellKind) -> CellParams;

    /// Supply voltage, volts.
    fn vdd(&self) -> f64;

    /// Wire capacitance per micrometre of routed length, femtofarads.
    fn wire_cap_ff_per_um(&self) -> f64;
}

/// A featureless library for tests: every cell has a 10 ps delay,
/// 1 µm² area and 1 fJ switching energy; VDD = 1.2 V.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitLibrary;

impl Library for UnitLibrary {
    fn params(&self, _kind: CellKind) -> CellParams {
        CellParams { delay: Time::from_ps(10), area_um2: 1.0, energy_fj: 1.0 }
    }

    fn vdd(&self) -> f64 {
        1.2
    }

    fn wire_cap_ff_per_um(&self) -> f64 {
        0.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(CellKind::And(3).mnemonic(), "and3");
        assert_eq!(CellKind::CElement(2).mnemonic(), "c2");
        assert_eq!(CellKind::DavidCell.mnemonic(), "dc");
    }

    #[test]
    fn unit_library_is_uniform() {
        let lib = UnitLibrary;
        let p = lib.params(CellKind::Inv);
        assert_eq!(p.delay, Time::from_ps(10));
        assert_eq!(lib.params(CellKind::Dff).area_um2, 1.0);
    }
}
