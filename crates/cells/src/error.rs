//! Netlist construction errors.
//!
//! [`CircuitBuilder`](crate::CircuitBuilder) is *poisoning*: the first
//! construction error is recorded and every later call is a no-op
//! returning placeholder signals, so builder call chains keep their
//! ergonomic value-returning signatures. The recorded error surfaces
//! through [`CircuitBuilder::try_finish`](crate::CircuitBuilder::try_finish)
//! (graceful, for library callers such as the link assembler) or
//! [`CircuitBuilder::finish`](crate::CircuitBuilder::finish) (panics,
//! preserving fail-loudly behaviour for top-level experiment code).

use std::fmt;

/// An error recorded while building a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A cell tried to drive a signal that already has a driver.
    AlreadyDriven {
        /// Name of the cell whose connection failed.
        cell: String,
        /// The kernel error describing the conflict (exposed through
        /// [`std::error::Error::source`] so callers can walk the
        /// chain instead of parsing Display strings).
        source: sal_des::SimError,
    },
    /// Two ports that must share a width do not.
    WidthMismatch {
        /// Name of the cell being built.
        cell: String,
        /// The width required.
        expected: u8,
        /// The width supplied.
        actual: u8,
    },
    /// A cell or compound was given no inputs.
    EmptyInputs {
        /// Name of the cell being built.
        cell: String,
    },
    /// A structural parameter is out of range (stage counts, slice
    /// bounds, bus widths…).
    BadParameter {
        /// Name of the cell being built.
        cell: String,
        /// What was wrong.
        message: String,
    },
    /// A higher-level configuration was invalid before any cell was
    /// built (used by netlist assemblers layered on the builder).
    Config {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::AlreadyDriven { cell, source } => {
                write!(f, "cell '{cell}': output already driven ({source})")
            }
            BuildError::WidthMismatch { cell, expected, actual } => {
                write!(f, "cell '{cell}': width mismatch (expected {expected}, got {actual})")
            }
            BuildError::EmptyInputs { cell } => {
                write!(f, "cell '{cell}': needs at least one input")
            }
            BuildError::BadParameter { cell, message } => {
                write!(f, "cell '{cell}': {message}")
            }
            BuildError::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::AlreadyDriven { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A genuine driver conflict, produced through the builder (the
    /// kernel's id constructors are private).
    fn driven_conflict() -> BuildError {
        let mut sim = sal_des::Simulator::new();
        let lib = crate::kind::UnitLibrary;
        let mut b = crate::CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        let out = b.input("out", 1);
        b.buf_into("buf0", out, a);
        b.buf_into("buf0", out, a);
        b.take_error().expect("double drive must be recorded")
    }

    #[test]
    fn messages_name_the_cell() {
        let e = driven_conflict();
        assert!(e.to_string().contains("buf0"));
        let e = BuildError::WidthMismatch { cell: "mux".into(), expected: 8, actual: 4 };
        assert!(e.to_string().contains("expected 8"));
        let e = BuildError::EmptyInputs { cell: "or_tree".into() };
        assert!(e.to_string().contains("or_tree"));
        let e = BuildError::BadParameter { cell: "ring".into(), message: "n must be >= 2".into() };
        assert!(e.to_string().contains("n must be >= 2"));
        let e = BuildError::Config { message: "flit width 0".into() };
        assert!(e.to_string().contains("flit width 0"));
    }

    #[test]
    fn already_driven_exposes_the_kernel_error_as_source() {
        use std::error::Error as _;
        let e = driven_conflict();
        assert!(matches!(e, BuildError::AlreadyDriven { .. }));
        let src = e.source().expect("AlreadyDriven chains to the kernel error");
        assert!(src.downcast_ref::<sal_des::SimError>().is_some());
        assert!(src.source().is_none(), "SimError is the end of the chain");
        let e = BuildError::EmptyInputs { cell: "or_tree".into() };
        assert!(e.source().is_none());
    }
}
