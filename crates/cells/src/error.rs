//! Netlist construction errors.
//!
//! [`CircuitBuilder`](crate::CircuitBuilder) is *poisoning*: the first
//! construction error is recorded and every later call is a no-op
//! returning placeholder signals, so builder call chains keep their
//! ergonomic value-returning signatures. The recorded error surfaces
//! through [`CircuitBuilder::try_finish`](crate::CircuitBuilder::try_finish)
//! (graceful, for library callers such as the link assembler) or
//! [`CircuitBuilder::finish`](crate::CircuitBuilder::finish) (panics,
//! preserving fail-loudly behaviour for top-level experiment code).

use std::fmt;

/// An error recorded while building a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A cell tried to drive a signal that already has a driver.
    AlreadyDriven {
        /// Name of the cell whose connection failed.
        cell: String,
        /// The kernel's description of the conflict.
        detail: String,
    },
    /// Two ports that must share a width do not.
    WidthMismatch {
        /// Name of the cell being built.
        cell: String,
        /// The width required.
        expected: u8,
        /// The width supplied.
        actual: u8,
    },
    /// A cell or compound was given no inputs.
    EmptyInputs {
        /// Name of the cell being built.
        cell: String,
    },
    /// A structural parameter is out of range (stage counts, slice
    /// bounds, bus widths…).
    BadParameter {
        /// Name of the cell being built.
        cell: String,
        /// What was wrong.
        message: String,
    },
    /// A higher-level configuration was invalid before any cell was
    /// built (used by netlist assemblers layered on the builder).
    Config {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::AlreadyDriven { cell, detail } => {
                write!(f, "cell '{cell}': output already driven ({detail})")
            }
            BuildError::WidthMismatch { cell, expected, actual } => {
                write!(f, "cell '{cell}': width mismatch (expected {expected}, got {actual})")
            }
            BuildError::EmptyInputs { cell } => {
                write!(f, "cell '{cell}': needs at least one input")
            }
            BuildError::BadParameter { cell, message } => {
                write!(f, "cell '{cell}': {message}")
            }
            BuildError::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_cell() {
        let e = BuildError::AlreadyDriven { cell: "buf0".into(), detail: "x".into() };
        assert!(e.to_string().contains("buf0"));
        let e = BuildError::WidthMismatch { cell: "mux".into(), expected: 8, actual: 4 };
        assert!(e.to_string().contains("expected 8"));
        let e = BuildError::EmptyInputs { cell: "or_tree".into() };
        assert!(e.to_string().contains("or_tree"));
        let e = BuildError::BadParameter { cell: "ring".into(), message: "n must be >= 2".into() };
        assert!(e.to_string().contains("n must be >= 2"));
        let e = BuildError::Config { message: "flit width 0".into() };
        assert!(e.to_string().contains("flit width 0"));
    }
}
