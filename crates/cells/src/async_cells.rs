//! Asynchronous control cells: the Muller C-element and the David
//! cell (Fig 3 of the paper).

use sal_des::{Component, Ctx, Logic, SignalId, Time, Value};

/// A Muller C-element with 2 or 3 inputs and asynchronous active-low
/// reset.
///
/// The output rises when *all* inputs are high, falls when *all*
/// inputs are low, and holds otherwise — the fundamental
/// synchronisation cell of speed-independent design [Muller & Bartky
/// 1959]. The paper uses C-elements throughout the handshake control
/// of its serializer, deserializer, wire buffers and interfaces.
///
/// When `rstn` is low the output is forced to `init` (normally 0).
#[derive(Debug)]
pub struct CElement {
    /// Input signals, stored inline (2 or 3): C-elements are the most
    /// numerous async cell, and keeping the inputs out of a heap
    /// allocation saves a dependent load per evaluation.
    inputs: [SignalId; 3],
    n_inputs: u8,
    rstn: Option<SignalId>,
    z: SignalId,
    delay: Time,
    init: bool,
    /// Master copy of the hold state (the committed output lags by the
    /// cell delay, so holding must use this, not the signal value).
    state: Logic,
}

impl CElement {
    /// Creates a C-element.
    ///
    /// # Panics
    ///
    /// Panics unless 2 or 3 inputs are given.
    pub fn new(
        inputs: Vec<SignalId>,
        rstn: Option<SignalId>,
        z: SignalId,
        delay: Time,
        init: bool,
    ) -> Self {
        assert!(
            (2..=3).contains(&inputs.len()),
            "C-element supports 2 or 3 inputs, got {}",
            inputs.len()
        );
        let n = inputs.len();
        let mut arr = [z; 3]; // placeholder; only ..n is ever read
        arr[..n].copy_from_slice(&inputs);
        CElement { inputs: arr, n_inputs: n as u8, rstn, z, delay, init, state: Logic::X }
    }
}

impl Component for CElement {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(rstn) = self.rstn {
            if ctx.read(rstn).is_low() {
                self.state = Logic::from_bool(self.init);
                ctx.drive(self.z, Value::from_logic(self.state), self.delay);
                return;
            }
        }
        let mut all_one = true;
        let mut all_zero = true;
        for &i in &self.inputs[..self.n_inputs as usize] {
            match ctx.read(i).as_logic() {
                Logic::One => all_zero = false,
                Logic::Zero => all_one = false,
                Logic::X => {
                    all_zero = false;
                    all_one = false;
                }
            }
        }
        if all_one {
            self.state = Logic::One;
        } else if all_zero {
            self.state = Logic::Zero;
        } // else: hold
        ctx.drive(self.z, Value::from_logic(self.state), self.delay);
    }
}

/// A David cell [David 1977]: the token-holding element of the paper's
/// one-hot sequencer chains (Fig 3).
///
/// Functionally a set/clear latch with handshake discipline: `set`
/// high makes the cell active (`o2` = 1, "this stage holds the
/// token"), `clr` high deactivates it. In the paper's chains the two
/// are never asserted together; if they are, `set` wins (documented,
/// deterministic). `rstn` low forces the cell to `init` — exactly one
/// cell of a chain is initialised active, matching "at reset the
/// output O2 of DC(0) is logic 1" in §III.
#[derive(Debug)]
pub struct DavidCell {
    set: SignalId,
    clr: SignalId,
    rstn: Option<SignalId>,
    o2: SignalId,
    delay: Time,
    init: bool,
    state: Logic,
}

impl DavidCell {
    /// Creates a David cell; see the type docs for port semantics.
    pub fn new(
        set: SignalId,
        clr: SignalId,
        rstn: Option<SignalId>,
        o2: SignalId,
        delay: Time,
        init: bool,
    ) -> Self {
        DavidCell { set, clr, rstn, o2, delay, init, state: Logic::X }
    }
}

impl Component for DavidCell {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(rstn) = self.rstn {
            if ctx.read(rstn).is_low() {
                self.state = Logic::from_bool(self.init);
                ctx.drive(self.o2, Value::from_logic(self.state), self.delay);
                return;
            }
        }
        let set = ctx.read(self.set).as_logic();
        let clr = ctx.read(self.clr).as_logic();
        match (set, clr) {
            (Logic::One, _) => self.state = Logic::One, // set dominant
            (Logic::Zero, Logic::One) => self.state = Logic::Zero,
            (Logic::Zero, Logic::Zero) => { /* hold */ }
            _ => {
                // An X on a control input only corrupts the state if it
                // could change it.
                if self.state != Logic::X {
                    let could_set = set == Logic::X && self.state == Logic::Zero;
                    let could_clr = clr == Logic::X && self.state == Logic::One;
                    if could_set || could_clr {
                        self.state = Logic::X;
                    }
                }
            }
        }
        ctx.drive(self.o2, Value::from_logic(self.state), self.delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::Simulator;

    fn celement_fixture(n: usize) -> (Simulator, Vec<SignalId>, SignalId, SignalId) {
        let mut sim = Simulator::new();
        let ins: Vec<SignalId> = (0..n).map(|i| sim.add_signal(&format!("a{i}"), 1)).collect();
        let rstn = sim.add_signal("rstn", 1);
        let z = sim.add_signal("z", 1);
        let mut watched = ins.clone();
        watched.push(rstn);
        let id = sim.add_component(
            "c",
            CElement::new(ins.clone(), Some(rstn), z, Time::from_ps(20), false),
            &watched,
        );
        sim.connect_driver(id, z).unwrap();
        (sim, ins, rstn, z)
    }

    #[test]
    fn c_element_waits_for_both() {
        let (mut sim, ins, rstn, z) = celement_fixture(2);
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        sim.stimulus(
            ins[0],
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        sim.stimulus(
            ins[1],
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(400), Value::one(1))],
        );
        sim.run_until(Time::from_ps(300)).unwrap();
        assert!(sim.value(z).is_low(), "must hold 0 until both inputs rise");
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(z).is_high());
    }

    #[test]
    fn c_element_holds_on_disagreement() {
        let (mut sim, ins, rstn, z) = celement_fixture(2);
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(50), Value::one(1))]);
        sim.stimulus(
            ins[0],
            &[
                (Time::ZERO, Value::one(1)),
            ],
        );
        sim.stimulus(
            ins[1],
            &[
                (Time::ZERO, Value::one(1)),
                (Time::from_ps(300), Value::zero(1)),
                (Time::from_ps(500), Value::one(1)),
            ],
        );
        sim.run_until(Time::from_ps(200)).unwrap();
        assert!(sim.value(z).is_high());
        // One input dropped: output must hold high.
        sim.run_until(Time::from_ps(400)).unwrap();
        assert!(sim.value(z).is_high());
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(z).is_high());
    }

    #[test]
    fn three_input_c_element() {
        let (mut sim, ins, rstn, z) = celement_fixture(3);
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(10), Value::one(1))]);
        for (k, i) in ins.iter().enumerate() {
            sim.stimulus(
                *i,
                &[
                    (Time::ZERO, Value::zero(1)),
                    (Time::from_ps(100 * (k as u64 + 1)), Value::one(1)),
                ],
            );
        }
        sim.run_until(Time::from_ps(250)).unwrap();
        assert!(sim.value(z).is_low());
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(z).is_high());
    }

    #[test]
    fn david_cell_token_set_and_clear() {
        let mut sim = Simulator::new();
        let set = sim.add_signal("set", 1);
        let clr = sim.add_signal("clr", 1);
        let rstn = sim.add_signal("rstn", 1);
        let o2 = sim.add_signal("o2", 1);
        let id = sim.add_component(
            "dc",
            DavidCell::new(set, clr, Some(rstn), o2, Time::from_ps(15), true),
            &[set, clr, rstn],
        );
        sim.connect_driver(id, o2).unwrap();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(50), Value::one(1))]);
        sim.stimulus(set, &[(Time::ZERO, Value::zero(1))]);
        sim.stimulus(
            clr,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
        // init=true: active after reset.
        sim.run_until(Time::from_ps(100)).unwrap();
        assert!(sim.value(o2).is_high());
        // cleared by clr pulse.
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(o2).is_low());
    }

    #[test]
    fn david_cell_set_dominates() {
        let mut sim = Simulator::new();
        let set = sim.add_signal("set", 1);
        let clr = sim.add_signal("clr", 1);
        let o2 = sim.add_signal("o2", 1);
        let id = sim.add_component(
            "dc",
            DavidCell::new(set, clr, None, o2, Time::from_ps(15), false),
            &[set, clr],
        );
        sim.connect_driver(id, o2).unwrap();
        sim.stimulus(set, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(clr, &[(Time::ZERO, Value::one(1))]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(o2).is_high());
    }
}
