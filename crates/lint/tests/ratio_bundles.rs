//! Ratio-generic timing fixtures: the static bundled-data pass must
//! work unchanged at every serialization ratio the `LinkSpec` lattice
//! admits, and must carry the generator's [`BundleParams`] annotation
//! through to the computed margins so reports can name the design
//! point. The fixture scales a matched-delay stage with the ratio the
//! way the serializers do — a wider mux tree in the data cone, a
//! longer matched chain in the strobe cone — and checks sign and
//! annotation at every point of the lattice.

use sal_cells::CircuitBuilder;
use sal_des::{BundleParams, Simulator, Time};
use sal_lint::{run_all, timing_margins};
use sal_tech::St012Library;

/// One bundled-data stage built "the generator way": the data path
/// grows logarithmically with the ratio (mux-tree depth), the strobe
/// matched-delay chain grows a little faster, so the margin stays
/// positive but shrinks as the ratio climbs — exactly the shape the
/// serialized links exhibit.
fn stage(ratio: u16, word_width: u16) -> (sal_lint::LintReport, Vec<sal_lint::TimingMargin>) {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let go = b.input("go", 1);
    let mux_depth = (ratio as usize).next_power_of_two().trailing_zeros() as usize;
    let data = b.buf_chain("data_cone", go, 1 + mux_depth);
    let strobe = b.buf_chain("strobe_dly", go, 4 + mux_depth);
    b.sim().register_bundle_with(
        &format!("stage_r{ratio}"),
        go,
        Time::ZERO,
        BundleParams { word_width, serial_ratio: ratio },
    );
    b.sim().register_capture(data, strobe);
    let _q = b.dlatch("cap", data, strobe, None);
    b.finish();
    let graph = sim.netgraph();
    (run_all(&graph), timing_margins(&graph))
}

#[test]
fn margins_are_positive_and_annotated_across_the_ratio_lattice() {
    for ratio in [2u16, 4, 8, 16] {
        for word_width in [16u16, 32, 64] {
            let (report, margins) = stage(ratio, word_width);
            assert!(
                !report.has_errors(),
                "ratio {ratio}: matched stage must lint clean:\n{}",
                report.to_text()
            );
            assert_eq!(margins.len(), 1, "ratio {ratio}: exactly one constrained capture");
            let m = &margins[0];
            assert!(
                m.margin_ps > 0.0,
                "ratio {ratio}: matched stage must have positive margin, got {:+.1} ps",
                m.margin_ps
            );
            assert_eq!(
                m.params,
                Some(BundleParams { word_width, serial_ratio: ratio }),
                "ratio {ratio}: generator params must ride through the timing pass"
            );
        }
    }
}

#[test]
fn margin_shrinks_monotonically_with_mux_depth() {
    // The fixture adds one mux level per ratio doubling on both cones,
    // plus nothing else — so the *absolute* margin is flat, but the
    // data delay (the quantity the generators must absorb) grows.
    let delays: Vec<f64> = [2u16, 4, 8, 16]
        .iter()
        .map(|&r| stage(r, 32).1[0].data_max_ps)
        .collect();
    for w in delays.windows(2) {
        assert!(
            w[1] > w[0],
            "data-cone delay must grow with the serialization ratio: {delays:?}"
        );
    }
}

#[test]
fn hand_registered_bundles_stay_unannotated() {
    // `register_bundle` (no params) keeps `None` — the annotation is
    // strictly opt-in for generators, never synthesized by the pass.
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let go = b.input("go", 1);
    let data = b.buf("data", go);
    let strobe = b.buf_chain("strobe_dly", go, 6);
    b.sim().register_bundle("manual", go, Time::ZERO);
    b.sim().register_capture(data, strobe);
    let _q = b.dlatch("cap", data, strobe, None);
    b.finish();
    let margins = timing_margins(&sim.netgraph());
    assert_eq!(margins.len(), 1);
    assert_eq!(margins[0].params, None);
}
