//! Seeded known-bad netlists: every pass family must *fire* on a
//! netlist built to violate its invariant, and must stay silent on
//! the equivalent healthy construction. These are the lint's own
//! regression fixtures — if a refactor of the graph extraction or a
//! pass ever stops seeing a defect class, one of these goes red.

use sal_cells::CircuitBuilder;
use sal_des::{CellClass, Component, Ctx, SimConfig, Simulator, Time};
use sal_lint::{run_all, Severity};
use sal_tech::St012Library;

/// Trivial logic stand-in for raw-simulator constructions (the lint
/// only reads the metadata side-table, never evaluates the cell).
struct Nop;
impl Component for Nop {
    fn on_input(&mut self, _ctx: &mut Ctx<'_>) {}
}

fn errors_of<'r>(report: &'r sal_lint::LintReport, pass: &str) -> Vec<&'r sal_lint::Finding> {
    report.errors().filter(|f| f.pass == pass).collect()
}

// ---------------------------------------------------------------
// connectivity
// ---------------------------------------------------------------

#[test]
fn connectivity_fires_on_floating_input() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let a = b.input("a", 1);
    // A raw signal, deliberately NOT marked as a port: it has no
    // driver but the AND gate reads it.
    let floating = b.sim().add_signal("floating", 1);
    let _y = b.and2("y", a, floating);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "connectivity");
    assert!(
        errs.iter().any(|f| f.path.contains("floating") && f.message.contains("undriven")),
        "expected an undriven-but-read error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn connectivity_fires_on_unarbitrated_double_driver() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let a = b.input("a", 1);
    let y = b.inv("y", a);
    let _z = b.inv("z", y);
    // Second driver on `y`, recorded via the metadata channel (the
    // kernel itself enforces single-driver wiring) with no arbiter tag.
    let extra = sim.add_component("rogue", Nop, &[]);
    sim.set_component_class(extra, CellClass::Comb);
    sim.connect_extra_driver(extra, y);
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "connectivity");
    assert!(
        errs.iter().any(|f| f.message.contains("2 drivers")),
        "expected a multiple-driver error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn connectivity_arbiter_tag_silences_double_driver() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let a = b.input("a", 1);
    let y = b.inv("y", a);
    let _z = b.inv("z", y);
    let extra = sim.add_component("mutex_grant", Nop, &[]);
    sim.set_component_class(extra, CellClass::Comb);
    sim.connect_extra_driver(extra, y);
    sim.mark_arbited(y);
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "connectivity").is_empty(),
        "arbited signal must not be flagged:\n{}",
        report.to_text()
    );
}

#[test]
fn connectivity_fires_on_width_mismatch() {
    let mut sim = Simulator::new();
    // An 8-bit gate reading a 4-bit bus (neither 1-bit control nor
    // full width). Raw construction: the builder's own width checks
    // would reject this, which is exactly why the lint must catch
    // netlists assembled outside the builder.
    let bus8 = sim.add_signal("bus8", 8);
    let bus4 = sim.add_signal("bus4", 4);
    let out = sim.add_signal("out", 8);
    sim.mark_port(bus8);
    sim.mark_port(bus4);
    let g = sim.add_component("wide_and", Nop, &[bus8, bus4]);
    sim.set_component_class(g, CellClass::Comb);
    sim.connect_driver(g, out).unwrap();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "connectivity");
    assert!(
        errs.iter().any(|f| f.path == "bus4" && f.message.contains("width 4")),
        "expected a width-mismatch error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn connectivity_silent_on_healthy_netlist() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let a = b.input("a", 8);
    let en = b.input("en", 1);
    // 1-bit control against an 8-bit bus is the legal broadcast form.
    let q = b.dlatch("q", a, en, None);
    let _y = b.inv("y", q);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        !report.has_errors(),
        "healthy netlist must carry no errors:\n{}",
        report.to_text()
    );
}

// ---------------------------------------------------------------
// loops
// ---------------------------------------------------------------

#[test]
fn loops_fire_on_cross_coupled_nands() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let set = b.input("set", 1);
    let rst = b.input("rst", 1);
    // An SR latch built from raw cross-coupled NANDs: functionally a
    // state element, structurally a combinational cycle — exactly the
    // hazard the pass exists for (un-modelled storage the timing
    // passes cannot see).
    let qb_pre = b.input("qb_pre", 1);
    let q = b.nand2("q", set, qb_pre);
    let qb = b.nand2("qb", rst, q);
    b.buf_into("qb_drv", qb_pre, qb);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "loops");
    assert!(
        errs.iter().any(|f| f.message.contains("combinational loop")),
        "expected a combinational-loop error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn loops_exempted_oscillator_is_informational() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let en = b.input("en", 1);
    let _osc = b.ring_oscillator("osc", en);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "loops").is_empty(),
        "exempted ring oscillator must not be an error:\n{}",
        report.to_text()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.pass == "loops"
                && f.severity == Severity::Info
                && f.message.contains("intentional")),
        "exempted loop should still be reported as info:\n{}",
        report.to_text()
    );
}

#[test]
fn loops_silent_on_sequential_feedback() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let rstn = b.input("rstn", 1);
    // Handshake feedback through a C-element: cyclic, but the cycle
    // passes through a state-holding cell — not a combinational loop.
    let ack_pre = b.input("ack_pre", 1);
    let nack = b.inv("nack", ack_pre);
    let lt = b.celement2("lt", req, nack, Some(rstn), false);
    b.buf_into("ack_drv", ack_pre, lt);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "loops").is_empty(),
        "sequential feedback must not be flagged:\n{}",
        report.to_text()
    );
}

// ---------------------------------------------------------------
// timing
// ---------------------------------------------------------------

/// Launch + capture pair where the matched delay is on the WRONG
/// side: the strobe takes the short path, the data the long one.
#[test]
fn timing_fires_on_reversed_matched_delay() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let go = b.input("go", 1);
    let slow_data = b.buf_chain("slow_data", go, 6);
    let fast_strobe = b.buf("fast_strobe", go);
    b.sim().register_bundle("rev", go, Time::ZERO);
    b.sim().register_capture(slow_data, fast_strobe);
    let _q = b.dlatch("cap", slow_data, fast_strobe, None);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "timing");
    assert!(
        errs.iter().any(|f| f.message.contains("margin")),
        "expected a negative-margin error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn timing_silent_on_properly_matched_delay() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let go = b.input("go", 1);
    let data = b.buf("data", go);
    let strobe = b.buf_chain("strobe_dly", go, 6);
    b.sim().register_bundle("fwd", go, Time::ZERO);
    b.sim().register_capture(data, strobe);
    let _q = b.dlatch("cap", data, strobe, None);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "timing").is_empty(),
        "correctly matched bundle must not be flagged:\n{}",
        report.to_text()
    );
    // ... and the positive margin is surfaced as info.
    assert!(
        report.findings.iter().any(|f| f.pass == "timing" && f.severity == Severity::Info),
        "positive margin should be reported as info:\n{}",
        report.to_text()
    );
}

#[test]
fn timing_fires_on_unreachable_strobe() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let go = b.input("go", 1);
    let other = b.input("other", 1);
    let data = b.buf("data", go);
    // The capture's trigger derives from an unrelated input — the
    // bundle's launch event can never close this capture window.
    let strobe = b.buf("strobe", other);
    b.sim().register_bundle("cutoff", go, Time::ZERO);
    b.sim().register_capture(data, strobe);
    let _q = b.dlatch("cap", data, strobe, None);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "timing");
    assert!(
        errs.iter().any(|f| f.message.contains("unreachable")),
        "expected an unreachable-strobe error, got:\n{}",
        report.to_text()
    );
}

// ---------------------------------------------------------------
// handshake
// ---------------------------------------------------------------

#[test]
fn handshake_fires_on_dropped_ack() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let unrelated = b.input("unrelated", 1);
    // The "acknowledge" is generated from an unrelated signal: no
    // cell path leads from the request to it.
    let ack = b.inv("ack", unrelated);
    b.sim().watch_handshake("orphan", req, ack);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "handshake");
    assert!(
        errs.iter().any(|f| f.message.contains("not reachable")),
        "expected an unreachable-ack error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn handshake_fires_on_forked_ack() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let ack_a = b.inv("ack_a", req);
    let ack_b = b.buf("ack_b", req);
    // One request claimed by two different acknowledges.
    b.sim().watch_handshake("fork_a", req, ack_a);
    b.sim().watch_handshake("fork_b", req, ack_b);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "handshake");
    assert!(
        errs.iter().any(|f| f.message.contains("distinct acknowledges")),
        "expected a forked-ack error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn handshake_fires_on_shared_nack_and_ack_wire() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let ack = b.buf("ack", req);
    // The NACK registered on the very wire that carries the ack:
    // "retry" and "done" are indistinguishable at the transmitter.
    b.sim().watch_handshake_nack("shared", req, ack, ack);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "handshake");
    assert!(
        errs.iter().any(|f| f.message.contains("same wire")),
        "expected a shared NACK/ack error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn handshake_fires_on_unreachable_nack() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let unrelated = b.input("unrelated", 1);
    let ack = b.buf("ack", req);
    // The NACK derives from an unrelated signal: a detected error can
    // never demand a retransmission of this request.
    let nack = b.inv("nack", unrelated);
    b.sim().watch_handshake_nack("deaf", req, ack, nack);
    b.finish();
    let report = run_all(&sim.netgraph());
    let errs = errors_of(&report, "handshake");
    assert!(
        errs.iter().any(|f| f.message.contains("NACK") && f.message.contains("not reachable")),
        "expected an unreachable-NACK error, got:\n{}",
        report.to_text()
    );
}

#[test]
fn handshake_silent_on_healthy_nack_triple() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let ack = b.buf("ack", req);
    // A distinct NACK wire with a real cell path from the request —
    // the healthy twin of the two constructions above.
    let nack = b.inv("nack", req);
    b.sim().watch_handshake_nack("protected", req, ack, nack);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "handshake").is_empty(),
        "a distinct, reachable NACK must not be flagged:\n{}",
        report.to_text()
    );
}

#[test]
fn handshake_silent_on_closed_loop() {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let req = b.input("req", 1);
    let rstn = b.input("rstn", 1);
    let ack = b.celement2("ack", req, req, Some(rstn), false);
    b.sim().watch_handshake("closed", req, ack);
    b.finish();
    let report = run_all(&sim.netgraph());
    assert!(
        errors_of(&report, "handshake").is_empty(),
        "closed req/ack loop must not be flagged:\n{}",
        report.to_text()
    );
}

// ---------------------------------------------------------------
// report plumbing
// ---------------------------------------------------------------

#[test]
fn report_is_deterministic_and_serializable() {
    let build = || {
        let mut sim = Simulator::with_config(SimConfig::default());
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 1);
        let floating = b.sim().add_signal("floating", 1);
        let y = b.and2("y", a, floating);
        let _dead = b.inv("dead", y);
        let en = b.input("en", 1);
        let _osc = b.ring_oscillator("osc", en);
        b.finish();
        run_all(&sim.netgraph())
    };
    let r1 = build();
    let r2 = build();
    assert_eq!(r1.to_json(), r2.to_json(), "same netlist must lint identically");
    let json = r1.to_json();
    assert!(json.contains("\"findings\""));
    assert!(json.contains("\"errors\""));
    // Errors sort before warnings before infos.
    let sev: Vec<Severity> = r1.findings.iter().map(|f| f.severity).collect();
    let mut sorted = sev.clone();
    sorted.sort_by(|x, y| y.cmp(x));
    assert_eq!(sev, sorted, "findings must be ordered by descending severity");
}
