//! Static bundled-data timing: longest data-path delay versus
//! shortest strobe-path delay from each registered launch point
//! ([`NetBundle`](sal_des::NetBundle)) to each capture cell
//! ([`NetCapture`](sal_des::NetCapture)).
//!
//! The model is classic static timing adapted to bundled-data
//! handshakes. A *launch* is a transition of the bundle's origin
//! signal (the acknowledge that advances the serializer's slice
//! token, the ring-oscillator tap that paces the I3 burst). From the
//! origin two cones fan out:
//!
//! * the **data cone** is traced backwards from the capture's data
//!   pin, *maximizing* delay. Combinational cells, wire transports
//!   and routing are transparent; a latch is transparent through its
//!   `d` pin (adding its latch delay); a flip-flop's output launches
//!   from its clock pin (reg-to-reg paths start at the launching
//!   clock, as in any STA); C-elements and David cells carry control,
//!   not data, and terminate the cone.
//! * the **strobe cone** is traced backwards from the capture's
//!   trigger pin, *minimizing* delay. Control transitions flow
//!   through everything except sources: gates and wires directly,
//!   state-holding cells through their trigger pins (a C-element
//!   forwards the request edge, a latch enable follows its
//!   controller).
//!
//! The static margin of a capture is `data_lead + strobe_min −
//! data_max`: the time the data settles before the strobe closes the
//! capture window. A non-positive margin is an error (the matched
//! delay does not cover the data path); positive margins are
//! reported as info so the `sal-lint` bin can expose them — they are
//! the static counterpart of the simulated skew margins in
//! `BENCH_robustness.json`.
//!
//! Cycles (token rings, handshake feedback) are cut on the DFS stack,
//! and results computed under a cut are not memoized, so the
//! traversal is deterministic and terminates.

use sal_des::{BundleParams, CellClass, NetComponent, NetGraph, SignalId};

use crate::report::{LintReport, Severity};

/// Pass name used in findings.
pub const PASS: &str = "timing";

/// One evaluated capture: which bundle it paired with and the static
/// delays/margin in picoseconds.
#[derive(Debug, Clone)]
pub struct TimingMargin {
    /// Label of the bundle the capture paired with (nearest launch
    /// point by data delay).
    pub bundle: String,
    /// Path of the captured data signal.
    pub capture_data: String,
    /// Path of the capturing trigger signal.
    pub capture_trigger: String,
    /// Longest data-path delay from the origin, ps.
    pub data_max_ps: f64,
    /// Shortest strobe-path delay from the origin, ps.
    pub strobe_min_ps: f64,
    /// Data head start at the origin, ps.
    pub data_lead_ps: f64,
    /// Static margin: `data_lead + strobe_min − data_max`, ps.
    pub margin_ps: f64,
    /// Generator parameters of the paired bundle, when it came from a
    /// width/ratio-parameterized generator (the `LinkSpec` machinery).
    pub params: Option<BundleParams>,
}

/// Computes the static margin of every registered capture that is
/// reachable from a registered bundle. Captures whose data cone
/// reaches no bundle origin are unconstrained (e.g. synchronous
/// captures timed by the clock) and are skipped.
pub fn timing_margins(graph: &NetGraph) -> Vec<TimingMargin> {
    let mut out = Vec::new();
    for cap in &graph.captures {
        // Pair with the nearest launch point: the bundle with the
        // smallest maximal data delay into this capture.
        let mut best: Option<(usize, i64)> = None;
        for (bi, b) in graph.bundles.iter().enumerate() {
            if let Some(d) = cone(graph, cap.data, b.origin, Mode::DataMax) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((bi, d));
                }
            }
        }
        let Some((bi, data_max)) = best else { continue };
        let bundle = &graph.bundles[bi];
        let strobe_min = cone(graph, cap.trigger, bundle.origin, Mode::StrobeMin);
        let lead = bundle.data_lead.as_fs() as i64;
        let margin_fs = strobe_min.map(|s| lead + s - data_max);
        out.push(TimingMargin {
            bundle: bundle.label.clone(),
            capture_data: graph.signal(cap.data).path.clone(),
            capture_trigger: graph.signal(cap.trigger).path.clone(),
            data_max_ps: data_max as f64 / 1000.0,
            strobe_min_ps: strobe_min.unwrap_or(0) as f64 / 1000.0,
            data_lead_ps: lead as f64 / 1000.0,
            // An unreachable strobe is reported as a zero-margin
            // defect by `check`; encode it as a hard failure here.
            margin_ps: margin_fs.map_or(f64::NEG_INFINITY, |m| m as f64 / 1000.0),
            params: bundle.params,
        });
    }
    out.sort_by(|a, b| {
        a.bundle
            .cmp(&b.bundle)
            .then_with(|| a.capture_data.cmp(&b.capture_data))
            .then_with(|| a.capture_trigger.cmp(&b.capture_trigger))
    });
    out
}

/// Runs the static-timing lint over `graph`, appending to `report`.
pub fn check(graph: &NetGraph, report: &mut LintReport) {
    for m in timing_margins(graph) {
        if m.margin_ps == f64::NEG_INFINITY {
            report.push(
                Severity::Error,
                PASS,
                &m.capture_trigger,
                format!(
                    "capture trigger is unreachable from bundle '{}' although the data \
                     pin is (data {:.1} ps): the strobe cannot close this capture",
                    m.bundle, m.data_max_ps
                ),
            );
        } else if m.margin_ps <= 0.0 {
            report.push(
                Severity::Error,
                PASS,
                &m.capture_data,
                format!(
                    "bundled-data violation against '{}': data {:.1} ps, strobe {:.1} ps \
                     (+{:.1} ps lead) — margin {:.1} ps; the strobe can overtake its data",
                    m.bundle, m.data_max_ps, m.strobe_min_ps, m.data_lead_ps, m.margin_ps
                ),
            );
        } else {
            report.push(
                Severity::Info,
                PASS,
                &m.capture_data,
                format!(
                    "static bundled margin +{:.1} ps against '{}' (data {:.1} ps, strobe \
                     {:.1} ps, lead {:.1} ps)",
                    m.margin_ps, m.bundle, m.data_max_ps, m.strobe_min_ps, m.data_lead_ps
                ),
            );
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    DataMax,
    /// Behind the launch register: a timing path has exactly ONE
    /// launching flip-flop, and the rest of the path back to the
    /// origin is its clock network — combinational cells only. A
    /// second register on the way would make it a multi-cycle path
    /// (the upstream word changing between handshakes), which the
    /// protocol, not the matched delay, keeps safe.
    ClockMax,
    StrobeMin,
}

/// Which of a cell's input pins the cone continues through, and the
/// mode the traversal continues in past that cell.
fn pins(comp: &NetComponent, mode: Mode) -> (&[SignalId], Mode) {
    match comp.class {
        CellClass::Comb | CellClass::Wire | CellClass::Route => (&comp.inputs, mode),
        CellClass::Latch => match mode {
            Mode::DataMax => (&comp.data_pins, mode),
            Mode::ClockMax => (&[], mode),
            Mode::StrobeMin => (&comp.trigger_pins, mode),
        },
        CellClass::Dff => match mode {
            Mode::DataMax => (&comp.trigger_pins, Mode::ClockMax),
            Mode::ClockMax => (&[], mode),
            Mode::StrobeMin => (&comp.trigger_pins, mode),
        },
        CellClass::CElement | CellClass::DavidCell => match mode {
            Mode::DataMax | Mode::ClockMax => (&[], mode),
            Mode::StrobeMin => (&comp.trigger_pins, mode),
        },
        CellClass::Source | CellClass::Env | CellClass::Monitor | CellClass::Unknown => {
            (&[], mode)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Memo {
    Unvisited,
    OnStack,
    Done(Option<i64>),
}

struct Walker<'g> {
    graph: &'g NetGraph,
    origin: SignalId,
    // One memo table per traversal mode a walk can be in (a data walk
    // flips into clock mode behind the launch register, so the same
    // signal can legitimately carry two different results).
    memo: Vec<[Memo; 2]>,
    steps: usize,
}

fn slot(mode: Mode) -> usize {
    match mode {
        Mode::DataMax | Mode::StrobeMin => 0,
        Mode::ClockMax => 1,
    }
}

/// Best (max or min, per mode) delay in femtoseconds from a
/// transition of `origin` to `start`, traced backwards through the
/// drivers, or `None` if no allowed path connects them.
fn cone(graph: &NetGraph, start: SignalId, origin: SignalId, mode: Mode) -> Option<i64> {
    let mut w = Walker {
        graph,
        origin,
        memo: vec![[Memo::Unvisited; 2]; graph.signals.len()],
        steps: 0,
    };
    w.visit(start, mode).0
}

impl Walker<'_> {
    /// Returns the best delay and whether the evaluation was cut at a
    /// signal currently on the DFS stack (in which case the result is
    /// path-dependent and must not be memoized).
    fn visit(&mut self, sig: SignalId, mode: Mode) -> (Option<i64>, bool) {
        if sig == self.origin {
            return (Some(0), false);
        }
        let m = slot(mode);
        match self.memo[sig.index()][m] {
            Memo::OnStack => return (None, true),
            Memo::Done(v) => return (v, false),
            Memo::Unvisited => {}
        }
        // Budget backstop: cones over a pathological graph give up
        // rather than walk forever (the result is still deterministic
        // for a given graph).
        self.steps += 1;
        if self.steps > 2_000_000 {
            return (None, false);
        }
        self.memo[sig.index()][m] = Memo::OnStack;
        let mut best: Option<i64> = None;
        let mut cut = false;
        for &driver in &self.graph.signal(sig).drivers {
            let comp = self.graph.component(driver);
            let delay = comp.delay.map_or(0, |d| d.as_fs() as i64);
            let (pins, next_mode) = pins(comp, mode);
            for &pin in pins {
                let (sub, sub_cut) = self.visit(pin, next_mode);
                cut |= sub_cut;
                if let Some(d) = sub {
                    let cand = d + delay;
                    best = Some(match (best, mode) {
                        (None, _) => cand,
                        (Some(b), Mode::DataMax | Mode::ClockMax) => b.max(cand),
                        (Some(b), Mode::StrobeMin) => b.min(cand),
                    });
                }
            }
        }
        if cut {
            self.memo[sig.index()][m] = Memo::Unvisited;
        } else {
            self.memo[sig.index()][m] = Memo::Done(best);
        }
        (best, cut)
    }
}
