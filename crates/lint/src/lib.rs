//! # sal-lint — static netlist analysis
//!
//! The async links of the paper only work because of invariants that
//! are *structural*, not dynamic: bundled-data strobes must arrive
//! after their data (the matched delays of Fig 6/8), every request
//! needs a four-phase acknowledge counterpart, and the only legal
//! combinational cycle is the intentional one (the I3 ring
//! oscillator; C-element and David-cell feedback is state, not
//! combinational). This crate checks those invariants on the
//! [`NetGraph`](sal_des::NetGraph) snapshot a
//! [`Simulator`](sal_des::Simulator) exposes after construction — in
//! milliseconds, at build time, for every netlist variant, instead of
//! after thousands of simulated perturbation runs.
//!
//! Four pass families:
//!
//! * [`connectivity`] — undriven-but-read signals, multiply-driven
//!   signals without an arbiter tag, dead (driven-never-read)
//!   signals, width mismatches on cell reads;
//! * [`loops`] — Tarjan SCC over the combinationally transparent
//!   subgraph, flagging cycles that do not pass through a
//!   state-holding cell, with ring-oscillator exemptions;
//! * [`timing`] — static bundled-data margins: longest data-path
//!   delay versus shortest strobe-path delay from each registered
//!   launch point to each capture cell (the static counterpart of
//!   the simulated skew sweep in `BENCH_robustness.json`);
//! * [`handshake`] — every registered req/ack pair must have the ack
//!   reachable from the req, and no request may fan out to two
//!   different acknowledges.
//!
//! [`run_all`] runs every pass and returns one merged,
//! deterministically ordered [`LintReport`].
//!
//! Analysis is read-only: it never perturbs the simulator, so a
//! linted netlist replays bit-identically to an unlinted one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod handshake;
pub mod loops;
mod report;
pub mod timing;

pub use report::{Finding, LintReport, Severity};
pub use timing::{timing_margins, TimingMargin};

use sal_des::NetGraph;

/// Runs every lint pass over the graph and merges the findings into
/// one deterministically ordered report.
pub fn run_all(graph: &NetGraph) -> LintReport {
    let mut report = LintReport::new();
    connectivity::check(graph, &mut report);
    loops::check(graph, &mut report);
    timing::check(graph, &mut report);
    handshake::check(graph, &mut report);
    report.sort();
    report
}
