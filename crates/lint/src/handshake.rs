//! Handshake protocol checks over the registered req/ack watch pairs.
//!
//! Every four-phase handshake the testbench watches (via
//! `Simulator::watch_handshake`) is also a structural claim: the
//! acknowledge must be *producible* from the request — there must be
//! a path of real cells from the req signal to the ack signal, or the
//! handshake can never complete and the link deadlocks on the first
//! token. A second claim is exclusivity: four-phase cells answer one
//! request with one acknowledge; a request wired (via watches) to two
//! different acknowledges is a protocol confusion — two receivers
//! both believe they own the completion of the same request.
//!
//! Protected links register req/nack/ack *triples* (via
//! `Simulator::watch_handshake_nack`), which add two more claims: the
//! negative acknowledge must be a distinct wire from the acknowledge
//! (a shared wire makes "retry" and "done" indistinguishable and the
//! retransmission controller misclassifies every word), and it must
//! itself be producible from the request — an unreachable NACK means
//! detected errors can never demand retransmission, silently
//! downgrading the protection to detect-and-drop.

use std::collections::BTreeMap;

use sal_des::{CellClass, NetGraph, SignalId};

use crate::report::{LintReport, Severity};

/// Pass name used in findings.
pub const PASS: &str = "handshake";

/// Runs the handshake lints over `graph`, appending to `report`.
pub fn check(graph: &NetGraph, report: &mut LintReport) {
    for watch in &graph.watches {
        if !reachable(graph, watch.req, watch.ack) {
            report.push(
                Severity::Error,
                PASS,
                &graph.signal(watch.req).path,
                format!(
                    "handshake '{}': ack '{}' is not reachable from req '{}' — \
                     the acknowledge can never answer this request",
                    watch.label,
                    graph.signal(watch.ack).path,
                    graph.signal(watch.req).path
                ),
            );
        }
        if let Some(nack) = watch.nack {
            if nack == watch.ack {
                report.push(
                    Severity::Error,
                    PASS,
                    &graph.signal(watch.req).path,
                    format!(
                        "handshake '{}': NACK and ack are the same wire '{}' — \
                         the transmitter cannot tell a retransmission demand \
                         from a completed word",
                        watch.label,
                        graph.signal(nack).path
                    ),
                );
            } else if !reachable(graph, watch.req, nack) {
                report.push(
                    Severity::Error,
                    PASS,
                    &graph.signal(watch.req).path,
                    format!(
                        "handshake '{}': NACK '{}' is not reachable from req '{}' — \
                         a detected error can never demand retransmission",
                        watch.label,
                        graph.signal(nack).path,
                        graph.signal(watch.req).path
                    ),
                );
            }
        }
    }

    // Exclusivity: one request, one acknowledge. Group the watches by
    // their req signal and flag requests claimed by two distinct acks.
    let mut by_req: BTreeMap<u32, Vec<&sal_des::NetWatch>> = BTreeMap::new();
    for watch in &graph.watches {
        by_req.entry(watch.req.index() as u32).or_default().push(watch);
    }
    for watches in by_req.values() {
        let mut acks: Vec<SignalId> = watches.iter().map(|w| w.ack).collect();
        acks.sort_by_key(|s| s.index());
        acks.dedup();
        if acks.len() > 1 {
            let names: Vec<&str> =
                acks.iter().map(|&a| graph.signal(a).path.as_str()).collect();
            report.push(
                Severity::Error,
                PASS,
                &graph.signal(watches[0].req).path,
                format!(
                    "four-phase request fans out to {} distinct acknowledges ({}); \
                     a request must be answered by exactly one ack",
                    acks.len(),
                    names.join(", ")
                ),
            );
        }
    }
}

/// Forward BFS from `from` to `to` over the cell graph: a signal
/// reaches the outputs of every non-monitor component sensitized on
/// it. Monitors are observers, not silicon, and don't conduct.
fn reachable(graph: &NetGraph, from: SignalId, to: SignalId) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; graph.signals.len()];
    seen[from.index()] = true;
    let mut queue = vec![from];
    while let Some(sig) = queue.pop() {
        for &reader in &graph.signal(sig).readers {
            let comp = graph.component(reader);
            if comp.class == CellClass::Monitor {
                continue;
            }
            for &out in &comp.outputs {
                if out == to {
                    return true;
                }
                if !seen[out.index()] {
                    seen[out.index()] = true;
                    queue.push(out);
                }
            }
        }
    }
    false
}
