//! Finding and report types shared by all passes.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: an intentional structure worth surfacing (an
    /// exempted oscillator loop, a positive timing margin).
    Info,
    /// Suspicious but not necessarily wrong (a driven-never-read
    /// signal, an unconstrained capture).
    Warning,
    /// A structural defect: the netlist violates an invariant the
    /// async links rely on.
    Error,
}

impl Severity {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity level.
    pub severity: Severity,
    /// The pass that produced the finding (`"connectivity"`,
    /// `"loops"`, `"timing"`, `"handshake"`).
    pub pass: &'static str,
    /// Hierarchical path of the offending signal, cell or label.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

/// The merged result of the lint passes, ordered deterministically
/// (severity descending, then pass, path, message).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, severity: Severity, pass: &'static str, path: &str, message: String) {
        self.findings.push(Finding { severity, pass, path: path.to_string(), message });
    }

    /// Sorts findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.pass.cmp(b.pass))
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Number of findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == severity).count()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// Whether the report contains any error-severity finding.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// A compact one-line-per-finding text rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("[{}] {}: {} — {}\n", f.severity, f.pass, f.path, f.message));
        }
        out
    }

    /// Hand-rolled JSON rendering (the vendored `serde` is a no-op
    /// stand-in, so every machine-readable artifact in this repo is
    /// written by hand). Deterministic: call [`LintReport::sort`]
    /// first (done by `run_all`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"errors\": {}, \"warnings\": {}, \"infos\": {},\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"severity\": \"{}\", \"pass\": \"{}\", \"path\": \"{}\", \"message\": \"{}\"}}{}\n",
                f.severity,
                f.pass,
                json_escape(&f.path),
                json_escape(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
