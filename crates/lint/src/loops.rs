//! Combinational-loop classification: Tarjan SCC over the subgraph of
//! combinationally transparent cells.
//!
//! A cycle that passes through a state-holding cell (latch, flip-flop,
//! C-element, David cell) is sequential feedback — the bread and
//! butter of async control — and is not reported. A cycle made only
//! of transparent cells (gates, wires, routing) is a combinational
//! loop: an oscillator or an X-latching hazard. The one intentional
//! instance in the paper's designs is the I3 ring oscillator, whose
//! loop-closing inverter carries a loop exemption; cycles through an
//! exempted cell are reported as info instead of error.

use sal_des::{NetComponent, NetGraph};

use crate::report::{LintReport, Severity};

/// Pass name used in findings.
pub const PASS: &str = "loops";

/// Runs the loop lint over `graph`, appending to `report`.
pub fn check(graph: &NetGraph, report: &mut LintReport) {
    let n = graph.components.len();
    // Forward adjacency restricted to transparent cells: component →
    // components sensitized on one of its output signals.
    let transparent: Vec<bool> =
        graph.components.iter().map(|c| c.class.is_transparent()).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for comp in &graph.components {
        if !transparent[comp.id.index()] {
            continue;
        }
        for &out in &comp.outputs {
            for &reader in &graph.signal(out).readers {
                if transparent[reader.index()]
                    && graph.component(reader).inputs.contains(&out)
                {
                    adj[comp.id.index()].push(reader.index());
                }
            }
        }
    }

    for scc in tarjan(&adj, &transparent) {
        let is_cycle = scc.len() > 1
            || adj[scc[0]].contains(&scc[0]); // single-node self-loop
        if !is_cycle {
            continue;
        }
        let exempt = scc
            .iter()
            .any(|&i| graph.components[i].loop_exempt);
        let mut members: Vec<String> = scc
            .iter()
            .map(|&i| component_path(&graph.components[i]))
            .collect();
        members.sort();
        let shown = members.len().min(6);
        let suffix = if members.len() > shown {
            format!(", … ({} cells total)", members.len())
        } else {
            String::new()
        };
        let anchor = members[0].clone();
        if exempt {
            report.push(
                Severity::Info,
                PASS,
                &anchor,
                format!(
                    "intentional combinational loop ({} cells, ring-oscillator \
                     exemption): {}{}",
                    members.len(),
                    members[..shown].join(", "),
                    suffix
                ),
            );
        } else {
            report.push(
                Severity::Error,
                PASS,
                &anchor,
                format!(
                    "combinational loop through {} cell(s) with no state-holding \
                     element: {}{}",
                    members.len(),
                    members[..shown].join(", "),
                    suffix
                ),
            );
        }
    }
}

fn component_path(c: &NetComponent) -> String {
    if c.scope_path.is_empty() {
        c.name.clone()
    } else {
        format!("{}.{}", c.scope_path, c.name)
    }
}

/// Iterative Tarjan SCC over the masked component graph. Returns the
/// strongly connected components in a deterministic order.
fn tarjan(adj: &[Vec<usize>], mask: &[bool]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if !mask[start] || index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
