//! Connectivity lints: undriven-but-read, multiply-driven without an
//! arbiter tag, dead (driven-never-read) signals, and width
//! consistency of cell reads.

use sal_des::{CellClass, NetGraph};

use crate::report::{LintReport, Severity};

/// Pass name used in findings.
pub const PASS: &str = "connectivity";

/// Runs the connectivity lints over `graph`, appending to `report`.
pub fn check(graph: &NetGraph, report: &mut LintReport) {
    for sig in &graph.signals {
        // A monitor read keeps no silicon alive; only cell and
        // testbench readers make an undriven signal a real defect.
        let real_readers = sig
            .readers
            .iter()
            .filter(|&&c| graph.component(c).class != CellClass::Monitor)
            .count();
        if sig.drivers.is_empty() && real_readers > 0 && !sig.is_port {
            report.push(
                Severity::Error,
                PASS,
                &sig.path,
                format!(
                    "undriven signal is read by {} cell(s); every non-port input must \
                     have a driver (floating inputs read X forever)",
                    real_readers
                ),
            );
        }
        if sig.drivers.len() > 1 && !sig.is_arbited {
            let names: Vec<&str> = sig
                .drivers
                .iter()
                .map(|&c| graph.component(c).name.as_str())
                .collect();
            report.push(
                Severity::Error,
                PASS,
                &sig.path,
                format!(
                    "{} drivers ({}) on a signal not marked as arbitrated",
                    sig.drivers.len(),
                    names.join(", ")
                ),
            );
        }
        if !sig.drivers.is_empty() && sig.readers.is_empty() {
            report.push(
                Severity::Warning,
                PASS,
                &sig.path,
                "driven but never read (dead logic or missing connection)".to_string(),
            );
        }
    }

    // Width consistency: for silicon cells, every read must either
    // match the cell's output width or be a 1-bit control/broadcast
    // input. Routing cells (slice/concat) reshape widths by design
    // and are exempt, as are sources, monitors and testbench models.
    for comp in &graph.components {
        if !comp.class.is_width_checked() {
            continue;
        }
        let Some(out_w) = comp.outputs.iter().map(|&s| graph.signal(s).width).max() else {
            continue;
        };
        for &input in comp.inputs.iter().chain(comp.reads.iter()) {
            let w = graph.signal(input).width;
            if w != 1 && w != out_w {
                report.push(
                    Severity::Error,
                    PASS,
                    &graph.signal(input).path,
                    format!(
                        "width {} read by {}-bit {} cell '{}' (inputs must be 1 bit or \
                         match the output width)",
                        w,
                        out_w,
                        comp.class.label(),
                        comp.name
                    ),
                );
            }
        }
    }
}
