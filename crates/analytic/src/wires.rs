//! The Fig 10 bandwidth-versus-wires trade-off.
//!
//! A synchronous link delivers one word per clock, so pushing a target
//! flit bandwidth through a slower clock forces a proportionally wider
//! (replicated) data path — the paper's example: 300 MFlit/s needs 32
//! wires at 300 MHz but 96 wires at 100 MHz. The proposed asynchronous
//! serial link keeps a constant `n` data wires at any switch clock, up
//! to its self-timed upper-bound throughput.

/// Data wires a synchronous link needs to carry `bandwidth_mflits` of
/// `flit_bits`-bit flits at `clock_mhz` (the paper counts data wires
/// only: 32 at 300 MHz, 96 at 100 MHz for 300 MFlit/s).
///
/// # Panics
///
/// Panics unless both rates are positive.
pub fn sync_wires_needed(bandwidth_mflits: f64, clock_mhz: f64, flit_bits: u32) -> u32 {
    assert!(bandwidth_mflits > 0.0 && clock_mhz > 0.0, "rates must be positive");
    let lanes = (bandwidth_mflits / clock_mhz).ceil() as u32;
    lanes.max(1) * flit_bits
}

/// Data wires the serialized asynchronous link needs: a constant
/// `slice_bits`, independent of the switch clock, provided the target
/// bandwidth does not exceed the link's self-timed upper bound.
/// Returns `None` beyond the upper bound (the link cannot get there by
/// adding wires — it would need a wider slice).
pub fn async_wires_needed(
    bandwidth_mflits: f64,
    upper_bound_mflits: f64,
    slice_bits: u32,
) -> Option<u32> {
    assert!(bandwidth_mflits > 0.0, "bandwidth must be positive");
    (bandwidth_mflits <= upper_bound_mflits).then_some(slice_bits)
}

/// One point of the Fig 10 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Fig10Point {
    /// Target bandwidth, MFlit/s.
    pub bandwidth_mflits: f64,
    /// Wires for the synchronous link at 100 MHz.
    pub sync_100: u32,
    /// Wires for the synchronous link at 200 MHz.
    pub sync_200: u32,
    /// Wires for the synchronous link at 300 MHz.
    pub sync_300: u32,
    /// Wires for the proposed asynchronous link (None above its upper
    /// bound).
    pub async_proposed: Option<u32>,
}

/// The full Fig 10 sweep: bandwidths from 100 to 350 MFlit/s.
pub fn fig10_series(flit_bits: u32, slice_bits: u32, upper_bound_mflits: f64) -> Vec<Fig10Point> {
    (0..=10)
        .map(|i| {
            let bw = 100.0 + 25.0 * i as f64;
            Fig10Point {
                bandwidth_mflits: bw,
                sync_100: sync_wires_needed(bw, 100.0, flit_bits),
                sync_200: sync_wires_needed(bw, 200.0, flit_bits),
                sync_300: sync_wires_needed(bw, 300.0, flit_bits),
                async_proposed: async_wires_needed(bw, upper_bound_mflits, slice_bits),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig10_anchor_points() {
        // "the proposed link (I3) can support 300 MFlits/s using a
        //  300 MHz switch clock with 8 wires whereas the synchronous
        //  link (I1) would need 32 wires at 300 MHz which is a 75%
        //  reduction … this would require an increase to 96 wires at
        //  100 MHz."
        assert_eq!(sync_wires_needed(300.0, 300.0, 32), 32);
        assert_eq!(sync_wires_needed(300.0, 100.0, 32), 96);
        assert_eq!(async_wires_needed(300.0, 311.0, 8), Some(8));
        let reduction: f64 = 1.0 - 8.0 / 32.0;
        assert!((reduction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sync_wires_step_at_clock_multiples() {
        assert_eq!(sync_wires_needed(100.0, 100.0, 32), 32);
        assert_eq!(sync_wires_needed(101.0, 100.0, 32), 64);
        assert_eq!(sync_wires_needed(200.0, 100.0, 32), 64);
        assert_eq!(sync_wires_needed(201.0, 100.0, 32), 96);
    }

    #[test]
    fn async_constant_until_upper_bound() {
        assert_eq!(async_wires_needed(100.0, 311.0, 8), Some(8));
        assert_eq!(async_wires_needed(311.0, 311.0, 8), Some(8));
        assert_eq!(async_wires_needed(312.0, 311.0, 8), None);
    }

    #[test]
    fn series_covers_paper_range() {
        let s = fig10_series(32, 8, 311.0);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].bandwidth_mflits, 100.0);
        assert_eq!(s[10].bandwidth_mflits, 350.0);
        // Above the upper bound the async link drops out.
        assert!(s[10].async_proposed.is_none());
        // The synchronous 100 MHz curve is the steepest.
        assert!(s[10].sync_100 > s[10].sync_300);
    }
}
