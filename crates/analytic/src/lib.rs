//! # sal-analytic — closed-form models from the paper's §V
//!
//! The paper validates its simulated links against two hand-derived
//! cycle-delay equations and two simple cost models. This crate
//! implements all four so the benchmark harness can cross-check the
//! gate-level simulation against the analysis, exactly as the paper
//! checks its ≈311 MFlit/s per-word upper bound against Fig 10:
//!
//! * [`PerTransferDelay`] — `D = k·(s·Tp + Treqreq + Treqack + Tackack
//!   + Tackout) + Tnextflit` (paper Fig 15, with `k` slices and
//!   `s` wire segments).
//! * [`PerWordDelay`] — `D = 2s·Tp + 2B·Tinv + Tvalidwordack + Tackout
//!   + Tburst` (paper Fig 16).
//! * [`sync_wires_needed`] / [`async_wires_needed`] — the Fig 10
//!   bandwidth-versus-wires trade-off.
//! * Wiring area (Fig 11) comes from
//!   [`WireModel::area_um2`](sal_tech::WireModel::area_um2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod wires;

pub use delay::{PerTransferDelay, PerWordDelay};
pub use wires::{async_wires_needed, fig10_series, sync_wires_needed, Fig10Point};
