//! The paper's cycle-delay equations (§V, Figs 15–16).

use sal_des::Time;

/// Cycle-delay model of the per-transfer link I2 (paper Fig 15):
///
/// ```text
/// D = k · (s·Tp + Treqreq + Treqack + Tackack + Tackout) + Tnextflit
/// ```
///
/// where `k` is the number of slices per flit (4 in the paper: "this
/// is multiplied by 4 since the 32 bit flit is sent 8 bits at a time")
/// and `s` the number of wire segments the handshake crosses (the
/// paper's "(4 Tp)" for its 4-segment wire).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerTransferDelay {
    /// Propagation time along one wire segment.
    pub tp: Time,
    /// Request-in to request-out of a buffer stage.
    pub treqreq: Time,
    /// Request-in to acknowledge of the data.
    pub treqack: Time,
    /// Acknowledge-in to acknowledge-out to the previous buffer.
    pub tackack: Time,
    /// Acknowledge-in to the output of a new slice of data.
    pub tackout: Time,
    /// Time for the next flit to be ready at the transmitter.
    pub tnextflit: Time,
}

impl PerTransferDelay {
    /// Per-flit cycle delay for `slices` slices over `segments` wire
    /// segments.
    pub fn cycle_delay(&self, slices: u32, segments: u32) -> Time {
        let per_slice = self.tp * segments as u64
            + self.treqreq
            + self.treqack
            + self.tackack
            + self.tackout;
        per_slice * slices as u64 + self.tnextflit
    }

    /// Upper-bound throughput in MFlit/s for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the cycle delay is zero.
    pub fn upper_bound_mflits(&self, slices: u32, segments: u32) -> f64 {
        let d = self.cycle_delay(slices, segments);
        assert!(!d.is_zero(), "zero cycle delay");
        1.0 / d.as_secs() / 1e6
    }
}

/// Cycle-delay model of the per-word link I3 (paper Fig 16):
///
/// ```text
/// D = 2s·Tp + 2B·Tinv + Tvalidwordack + Tackout + Tburst
/// ```
///
/// The request path crosses `s` segments forward and the word
/// acknowledge crosses `s` back (the paper's "10 Tp" for 5 segments
/// each way), through `B` inverter-pair repeater stations each way
/// (the paper's "8 Tinv" for 4 stations).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerWordDelay {
    /// Propagation time along one wire segment.
    pub tp: Time,
    /// One repeater inverter delay.
    pub tinv: Time,
    /// Valid word received to acknowledge output at the receiver.
    pub tvalidwordack: Time,
    /// Acknowledge in to new flit output at the transmitter.
    pub tackout: Time,
    /// Burst period of all slices of a flit.
    pub tburst: Time,
}

impl PerWordDelay {
    /// The paper's own example values (§V): `Tp = 0` (gate-level sim),
    /// `Tinv = 0.011 ns` from the ST 0.12 datasheet, `Tburst ≈ 1.1 ns`,
    /// `Tvalidwordack ≈ 0.7 ns`, `Tackout ≈ 1.4 ns`.
    pub fn paper_example() -> Self {
        PerWordDelay {
            tp: Time::ZERO,
            tinv: Time::from_ps(11),
            tvalidwordack: Time::from_ps(700),
            tackout: Time::from_ps(1400),
            tburst: Time::from_ps(1100),
        }
    }

    /// Per-flit cycle delay for `stations` repeater stations (wire has
    /// `stations + 1` segments each way).
    pub fn cycle_delay(&self, stations: u32) -> Time {
        let segments = stations as u64 + 1;
        self.tp * (2 * segments)
            + self.tinv * (2 * stations as u64)
            + self.tvalidwordack
            + self.tackout
            + self.tburst
    }

    /// Upper-bound throughput in MFlit/s.
    ///
    /// # Panics
    ///
    /// Panics if the cycle delay is zero.
    pub fn upper_bound_mflits(&self, stations: u32) -> f64 {
        let d = self.cycle_delay(stations);
        assert!(!d.is_zero(), "zero cycle delay");
        1.0 / d.as_secs() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_per_word_example_reproduces_311_mflits() {
        // §V: "Using these values the per-word delay is 3.21 ns from
        // which we obtain an upper bound throughput of around
        // 311 MFlits/s".
        let d = PerWordDelay::paper_example();
        let cycle = d.cycle_delay(4);
        assert!(
            (cycle.as_ns() - 3.288).abs() < 0.001,
            "cycle {} ns",
            cycle.as_ns()
        );
        let ub = d.upper_bound_mflits(4);
        assert!((295.0..=315.0).contains(&ub), "upper bound {ub} MFlit/s");
    }

    #[test]
    fn per_word_delay_grows_with_stations() {
        let d = PerWordDelay::paper_example();
        assert!(d.cycle_delay(8) > d.cycle_delay(2));
        assert!(d.upper_bound_mflits(8) < d.upper_bound_mflits(2));
    }

    #[test]
    fn per_transfer_equation_structure() {
        let d = PerTransferDelay {
            tp: Time::from_ps(10),
            treqreq: Time::from_ps(50),
            treqack: Time::from_ps(60),
            tackack: Time::from_ps(40),
            tackout: Time::from_ps(30),
            tnextflit: Time::from_ps(200),
        };
        // 4 slices × (4×10 + 50+60+40+30) + 200 = 4×220 + 200 = 1080.
        assert_eq!(d.cycle_delay(4, 4), Time::from_ps(1080));
        // Throughput: ~926 MFlit/s upper bound for these (fast) numbers.
        let ub = d.upper_bound_mflits(4, 4);
        assert!((925.0..=927.0).contains(&ub));
    }

    #[test]
    fn per_transfer_scales_linearly_in_slices() {
        let d = PerTransferDelay {
            tp: Time::from_ps(5),
            treqreq: Time::from_ps(50),
            treqack: Time::from_ps(50),
            tackack: Time::from_ps(50),
            tackout: Time::from_ps(50),
            tnextflit: Time::ZERO,
        };
        let d4 = d.cycle_delay(4, 2);
        let d8 = d.cycle_delay(8, 2);
        assert_eq!(d8.as_fs(), 2 * d4.as_fs());
    }
}
