//! Handshake deadlock watchdog.
//!
//! The kernel itself cannot know which signals form a handshake, so
//! link-level construction code registers each req/ack (or
//! VALID/ack) pair with [`crate::Simulator::watch_handshake`]. When a
//! run goes quiet — the event queue drains, a wall budget expires, or
//! the event limit trips — [`crate::Simulator::deadlock_report`]
//! inspects every registered pair and reports the ones caught
//! mid-protocol as a structured [`DeadlockReport`]: which handshake,
//! the levels and last transition times of both wires, and the
//! components waiting on them. A four-phase handshake at rest has
//! req == ack; anything else at quiescence is a stall.

use std::fmt;

use crate::{SignalId, Time, Value};

/// A registered req/ack pair, plus a label for reporting. Protected
/// links additionally carry the negative-acknowledge wire that answers
/// the same request when a detected error demands a retransmission.
#[derive(Debug, Clone)]
pub(crate) struct HandshakeWatch {
    pub label: String,
    pub req: SignalId,
    pub ack: SignalId,
    pub nack: Option<SignalId>,
}

/// One handshake caught mid-protocol: the request and acknowledge
/// levels disagree, so one side is waiting on a transition that never
/// arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct StalledHandshake {
    /// Label given at registration (e.g. `"i2.buf2"`).
    pub label: String,
    /// Full path of the request (or VALID) wire.
    pub req_path: String,
    /// Full path of the acknowledge wire.
    pub ack_path: String,
    /// Committed value of the request wire.
    pub req_value: Value,
    /// Committed value of the acknowledge wire.
    pub ack_value: Value,
    /// Last committed transition of the request wire.
    pub req_last_change: Time,
    /// Last committed transition of the acknowledge wire.
    pub ack_last_change: Time,
    /// Names of the components listening on either wire — the parties
    /// stuck waiting for the missing transition.
    pub waiting: Vec<String>,
}

impl fmt::Display for StalledHandshake {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] req {}={:?} (last change {}) vs ack {}={:?} (last change {})",
            self.label,
            self.req_path,
            self.req_value,
            self.req_last_change,
            self.ack_path,
            self.ack_value,
            self.ack_last_change,
        )?;
        if !self.waiting.is_empty() {
            write!(f, "; waiting: {}", self.waiting.join(", "))?;
        }
        Ok(())
    }
}

/// Structured diagnosis of a simulation that stopped with handshakes
/// mid-protocol. Produced by [`crate::Simulator::deadlock_report`] and
/// attached to [`crate::SimError::EventLimitExceeded`] when available.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// Simulation time of the diagnosis.
    pub at: Time,
    /// Every registered handshake found stalled, in registration order.
    pub stalled: Vec<StalledHandshake>,
}

impl DeadlockReport {
    /// The label of the first stalled handshake — a convenient short
    /// culprit name for log lines and assertions.
    pub fn first_label(&self) -> Option<&str> {
        self.stalled.first().map(|s| s.label.as_str())
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock diagnosis at {}: {} stalled handshake(s)",
            self.at,
            self.stalled.len()
        )?;
        for s in &self.stalled {
            write!(f, "\n  {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_names_the_stalled_pair() {
        let report = DeadlockReport {
            at: Time::from_ns(3),
            stalled: vec![StalledHandshake {
                label: "i2.buf2".to_string(),
                req_path: "link.wire.seg_r2".to_string(),
                ack_path: "link.ack_in2".to_string(),
                req_value: Value::one(1),
                ack_value: Value::zero(1),
                req_last_change: Time::from_ns(2),
                ack_last_change: Time::from_ps(500),
                waiting: vec!["buf2.lt_c".to_string()],
            }],
        };
        let text = report.to_string();
        assert!(text.contains("1 stalled handshake"));
        assert!(text.contains("i2.buf2"));
        assert!(text.contains("link.wire.seg_r2"));
        assert!(text.contains("link.ack_in2"));
        assert!(text.contains("buf2.lt_c"));
        assert_eq!(report.first_label(), Some("i2.buf2"));
    }
}
