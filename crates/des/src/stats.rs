//! Activity and energy reports.

use crate::Time;

/// Per-signal toggle counts over a simulation run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ActivityReport {
    /// `(hierarchical path, committed bit toggles)` per signal.
    pub signals: Vec<(String, u64)>,
    /// Simulation time at which the report was taken.
    pub sim_time: Time,
}

impl ActivityReport {
    /// Total bit toggles across all signals.
    pub fn total_toggles(&self) -> u64 {
        self.signals.iter().map(|(_, t)| t).sum()
    }

    /// The `n` most active signals, most active first.
    pub fn top_n(&self, n: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> =
            self.signals.iter().map(|(p, t)| (p.as_str(), *t)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }
}

/// Energy accumulated in one scope (exclusive of children).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeEnergy {
    /// Dotted scope path; empty string is the root.
    pub path: String,
    /// Energy in femtojoules.
    pub energy_fj: f64,
}

/// Per-scope energy over a simulation run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EnergyReport {
    /// One entry per scope, in creation order.
    pub scopes: Vec<ScopeEnergy>,
    /// Simulation time at which the report was taken.
    pub sim_time: Time,
}

impl EnergyReport {
    /// Total energy across the whole design, femtojoules.
    pub fn total_fj(&self) -> f64 {
        self.scopes.iter().map(|s| s.energy_fj).sum()
    }

    /// Energy of the subtree rooted at `prefix` (inclusive).
    pub fn subtree_fj(&self, prefix: &str) -> f64 {
        self.scopes
            .iter()
            .filter(|s| {
                s.path == prefix
                    || (s.path.starts_with(prefix) && s.path[prefix.len()..].starts_with('.'))
                    || prefix.is_empty()
            })
            .map(|s| s.energy_fj)
            .sum()
    }

    /// Average power over the run in microwatts, given the energy is in
    /// femtojoules and the window is `window` long.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn average_power_uw(&self, prefix: &str, window: Time) -> f64 {
        assert!(!window.is_zero(), "zero averaging window");
        let fj = self.subtree_fj(prefix);
        // fJ / s = 1e-15 W; report µW (1e-6 W).
        fj * 1e-15 / window.as_secs() * 1e6
    }
}

/// Kernel profiling counters, snapshotted by
/// [`Simulator::profile`](crate::Simulator::profile).
///
/// The counters cost a few integer increments per delta on the event
/// loop — cheap enough to stay always-on, so kernel performance
/// regressions are visible in CI without a special build.
#[derive(Debug, Clone, Copy)]
pub struct SimProfile {
    /// Events processed (drive commits, wakes, fault actions).
    pub events: u64,
    /// Committed signal value changes.
    pub commits: u64,
    /// Wake events processed.
    pub wakes: u64,
    /// Deltas processed: queue pops, each being a wake, a fault action
    /// or a batch of same-timestamp commits.
    pub deltas: u64,
    /// Peak event-queue depth observed at a sampled delta boundary
    /// (depth is sampled once every 64 deltas, so the event loop pays
    /// a single counter increment per delta).
    pub queue_peak: usize,
    /// Mean event-queue depth over the sampled delta boundaries.
    pub queue_mean: f64,
    /// Wall-clock time spent inside the event loop.
    pub wall: std::time::Duration,
    /// Simulation time at the snapshot.
    pub sim_time: Time,
    /// Weakly-connected compiled combinational regions built by
    /// [`Simulator::compile`](crate::Simulator::compile) (0 when
    /// running interpreted).
    pub cones_built: u64,
    /// Compiled spec evaluations performed (0 when interpreted).
    pub cone_evals: u64,
    /// Global-queue events avoided by scheduling compiled drives on
    /// the private calendar instead (0 when interpreted).
    pub events_avoided: u64,
    /// Lanes carried by the last bit-sliced campaign pass (0 outside
    /// sliced campaigns).
    pub lanes_active: u64,
    /// Lanes the last bit-sliced campaign pass demoted to scalar
    /// replay because their timing diverged from the carrier.
    pub scalar_fallbacks: u64,
}

impl SimProfile {
    /// Events processed per wall-clock second (0 if nothing ran).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Wall-clock nanoseconds spent per simulated nanosecond (0 if no
    /// simulated time elapsed) — the kernel's slowdown factor.
    pub fn wall_ns_per_sim_ns(&self) -> f64 {
        let sim_ns = self.sim_time.as_ns();
        if sim_ns <= 0.0 {
            0.0
        } else {
            self.wall.as_secs_f64() * 1e9 / sim_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_totals_and_top() {
        let r = ActivityReport {
            signals: vec![("a".into(), 5), ("b".into(), 9), ("c".into(), 1)],
            sim_time: Time::from_ns(1),
        };
        assert_eq!(r.total_toggles(), 15);
        assert_eq!(r.top_n(2), vec![("b", 9), ("a", 5)]);
    }

    #[test]
    fn energy_subtree_and_power() {
        let r = EnergyReport {
            scopes: vec![
                ScopeEnergy { path: "link".into(), energy_fj: 100.0 },
                ScopeEnergy { path: "link.ser".into(), energy_fj: 50.0 },
                ScopeEnergy { path: "linker".into(), energy_fj: 999.0 },
            ],
            sim_time: Time::from_ns(1),
        };
        assert!((r.subtree_fj("link") - 150.0).abs() < 1e-9);
        assert!((r.total_fj() - 1149.0).abs() < 1e-9);
        // 150 fJ over 1 ns = 150 µW.
        let p = r.average_power_uw("link", Time::from_ns(1));
        assert!((p - 150.0).abs() < 1e-9);
    }
}
