//! The simulator: netlist container plus event loop.

use crate::component::{Component, ComponentId, Ctx};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::netgraph::{
    CellClass, NetBundle, NetCapture, NetComponent, NetGraph, NetMeta, NetSignal, NetWatch,
};
use crate::scope::{ScopeId, ScopePath, ScopeTree};
use crate::signal::{SignalId, SignalInfo, SignalState};
use crate::stats::{ActivityReport, EnergyReport, ScopeEnergy, SimProfile};
use crate::trace::{MemoryTrace, TraceRecord, TraceSignalMeta, TraceSink};
use crate::watchdog::{DeadlockReport, HandshakeWatch, StalledHandshake};
use crate::{SimError, SimResult, Time, Value};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on processed events per `run_*` call, as a safety net
    /// against oscillating loops. The default (200 million) is far above
    /// any experiment in this repository.
    pub max_events: u64,
    /// Record every committed signal change for later VCD/JSONL export
    /// by installing a [`MemoryTrace`] sink at construction. Costs
    /// memory proportional to activity; off by default. For custom
    /// sinks (ring buffers, streaming JSONL) leave this off and call
    /// [`Simulator::set_trace_sink`] after netlist construction.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_events: 200_000_000, trace: false }
    }
}

/// The mutable core shared with component evaluation contexts.
pub(crate) struct Kernel {
    pub signals: Vec<SignalState>,
    pub queue: EventQueue,
    pub now: Time,
    /// Committed value changes (profiling counter). Lives here, next
    /// to `now`, so the per-commit increment touches a cache line the
    /// commit path has already written.
    pub commits: u64,
    /// Scope of each component, indexed by `ComponentId`.
    pub comp_scopes: Vec<ScopeId>,
    /// Evaluation-pending stamp of each component, indexed by
    /// `ComponentId`: holds the id of the delta batch that last queued
    /// the component, so a component fed by several signals committing
    /// at one timestamp is evaluated once per delta, not once per
    /// driving signal.
    pub comp_stamp: Vec<u64>,
    /// Per-scope energy accumulator, femtojoules. Holds component
    /// internal energy ([`Ctx::add_energy_fj`]) plus switching energy
    /// *folded in* from the per-signal toggle counters at fold points
    /// (energy/toggle resets, per-toggle-energy changes). Live totals
    /// are derived by adding each signal's un-folded toggles × energy
    /// — see [`Simulator::scope_energies_fj`] — which keeps the commit
    /// hot path free of floating-point accumulation.
    pub scope_energy_fj: Vec<f64>,
    /// Installed transition-trace sink, if any. `None` (the default)
    /// keeps the commit hot path on a single predictable branch, the
    /// same zero-overhead-when-off contract as `fault` below.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Installed fault perturbations. `None` (the default) means every
    /// drive takes the untouched fast path — applying an empty
    /// [`FaultPlan`] leaves this `None`, so a clean run is
    /// bit-identical to a build without the fault subsystem.
    pub fault: Option<Box<FaultState>>,
}

/// An event-driven gate-level simulator holding a netlist of signals
/// and [`Component`]s.
///
/// See the [crate-level documentation](crate) for the simulation model
/// and a complete example.
pub struct Simulator {
    kernel: Kernel,
    comps: Vec<Box<dyn Component>>,
    comp_names: Vec<String>,
    scopes: ScopeTree,
    scope_stack: Vec<ScopeId>,
    config: SimConfig,
    events_processed: u64,
    /// Monotone id of the delta batch being processed; pairs with
    /// `Kernel::comp_stamp` to dedup evaluations. Starts at 1 so the
    /// zero-initialised stamps never match.
    delta_seq: u64,
    /// Scratch list of components awaiting evaluation in the current
    /// delta, in first-trigger order. Kept allocated across deltas so
    /// the steady-state event loop performs no heap allocation.
    pending_evals: Vec<ComponentId>,
    /// Handshake pairs registered for deadlock diagnosis, in
    /// registration order.
    watches: Vec<HandshakeWatch>,
    /// Static-netlist annotation side tables (cell classes, declared
    /// reads, bundled-data launch/capture points…). Never read by the
    /// event loop; snapshotted by [`Simulator::netgraph`].
    net: NetMeta,
    /// Wake events processed (profiling counter).
    wakes: u64,
    /// Deltas processed — queue pops, each a wake, a fault action or a
    /// batch of same-timestamp commits (profiling counter).
    deltas: u64,
    /// Sum of sampled event-queue depths; with `queue_samples` this
    /// yields the mean queue occupancy.
    queue_depth_sum: u64,
    /// Number of queue-depth samples taken (one every 64 deltas, so
    /// the event loop pays one branch, not a queue walk, per delta).
    queue_samples: u64,
    /// Peak event-queue depth observed at a sampled delta boundary.
    queue_peak: usize,
    /// Wall-clock time spent inside `run_until` since construction.
    wall: std::time::Duration,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.kernel.signals.len())
            .field("components", &self.comps.len())
            .field("now", &self.kernel.now)
            .field("pending_events", &self.kernel.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with default configuration.
    pub fn new() -> Self {
        Self::with_config(SimConfig::default())
    }

    /// Replaces the runaway-event budget after construction. The
    /// budget is the quiescence watchdog's horizon: exceeding it trips
    /// [`SimError::EventLimitExceeded`] with a deadlock diagnosis.
    /// Chaos campaigns whose retransmission backoff legitimately burns
    /// many events per delivered word raise it; unit tests hunting an
    /// oscillation lower it.
    pub fn set_max_events(&mut self, limit: u64) {
        self.config.max_events = limit;
    }

    /// The configured runaway-event budget.
    pub fn max_events(&self) -> u64 {
        self.config.max_events
    }

    /// Creates an empty simulator with the given configuration.
    pub fn with_config(config: SimConfig) -> Self {
        let trace: Option<Box<dyn TraceSink>> =
            if config.trace { Some(Box::new(MemoryTrace::new())) } else { None };
        Simulator {
            kernel: Kernel {
                signals: Vec::new(),
                queue: EventQueue::new(),
                now: Time::ZERO,
                comp_scopes: Vec::new(),
                comp_stamp: Vec::new(),
                scope_energy_fj: vec![0.0],
                trace,
                fault: None,
                commits: 0,
            },
            comps: Vec::new(),
            comp_names: Vec::new(),
            scopes: ScopeTree::new(),
            scope_stack: vec![ScopeId::ROOT],
            config,
            events_processed: 0,
            delta_seq: 1,
            pending_evals: Vec::new(),
            watches: Vec::new(),
            net: NetMeta::default(),
            wakes: 0,
            deltas: 0,
            queue_depth_sum: 0,
            queue_samples: 0,
            queue_peak: 0,
            wall: std::time::Duration::ZERO,
        }
    }

    // ------------------------------------------------------------------
    // Netlist construction
    // ------------------------------------------------------------------

    /// Enters a child scope of the current scope. Signals and
    /// components added until the matching [`Simulator::pop_scope`]
    /// belong to it (hierarchical names, energy attribution).
    pub fn push_scope(&mut self, name: &str) -> ScopeId {
        let id = self.scopes.child(self.current_scope(), name);
        self.scope_stack.push(id);
        self.kernel.scope_energy_fj.push(0.0);
        id
    }

    /// Leaves the current scope.
    ///
    /// # Panics
    ///
    /// Panics on an attempt to pop the root scope.
    pub fn pop_scope(&mut self) {
        assert!(self.scope_stack.len() > 1, "cannot pop the root scope");
        self.scope_stack.pop();
    }

    /// The scope new signals/components are currently added to.
    pub fn current_scope(&self) -> ScopeId {
        *self.scope_stack.last().expect("scope stack never empty")
    }

    /// The dotted path of a scope.
    pub fn scope_path(&self, id: ScopeId) -> ScopePath {
        self.scopes.path(id)
    }

    /// Adds a signal of the given width to the current scope. The
    /// signal starts as all-`X` with no driver attached.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn add_signal(&mut self, name: &str, width: u8) -> SignalId {
        assert!((1..=Value::MAX_WIDTH).contains(&width), "width must be 1..=64");
        let id = SignalId(self.kernel.signals.len() as u32);
        self.kernel
            .signals
            .push(SignalState::new(name.to_string(), width, self.current_scope()));
        id
    }

    /// Adds a component to the current scope. `inputs` lists the
    /// signals whose changes should trigger [`Component::on_input`].
    pub fn add_component<C: Component>(
        &mut self,
        name: &str,
        comp: C,
        inputs: &[SignalId],
    ) -> ComponentId {
        let id = ComponentId(self.comps.len() as u32);
        self.comps.push(Box::new(comp));
        self.comp_names.push(name.to_string());
        self.kernel.comp_scopes.push(self.current_scope());
        self.kernel.comp_stamp.push(0);
        for &sig in inputs {
            let fanout = &mut self.kernel.signals[sig.index()].fanout;
            // Component ids are handed out monotonically and each
            // component registers all its inputs in one call, so a
            // duplicate (the same signal listed twice in `inputs`) can
            // only ever be the last entry — an O(1) check instead of a
            // linear scan, keeping netlist construction O(n).
            if fanout.last() != Some(&id) {
                fanout.push(id);
            }
        }
        id
    }

    /// Registers `comp` as the unique driver of `sig`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MultipleDrivers`] if another component
    /// already drives the signal.
    pub fn connect_driver(&mut self, comp: ComponentId, sig: SignalId) -> SimResult<()> {
        let state = &mut self.kernel.signals[sig.index()];
        if let Some(existing) = state.driver {
            if existing != comp {
                return Err(SimError::MultipleDrivers { signal: sig, existing, attempted: comp });
            }
        }
        state.driver = Some(comp);
        Ok(())
    }

    /// Adds a stimulus source that drives `sig` with each listed value
    /// at the listed absolute time. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the signal already has a driver, if a value width
    /// mismatches, or if times are not sorted.
    pub fn stimulus(&mut self, sig: SignalId, schedule: &[(Time, Value)]) -> ComponentId {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "stimulus schedule must be sorted by time"
        );
        for (_, v) in schedule {
            assert_eq!(
                v.width(),
                self.kernel.signals[sig.index()].width,
                "stimulus width mismatch on '{}'",
                self.kernel.signals[sig.index()].name
            );
        }
        let width = self.kernel.signals[sig.index()].width;
        let comp =
            Stimulus { sig, schedule: schedule.to_vec(), next: 0, cur: Value::all_x(width) };
        // The stimulus listens to its *own* signal: each commit calls
        // it back, and it responds by scheduling the next entry as one
        // delayed drive. Steady state is one event per schedule entry,
        // instead of the wake + zero-delay-drive pair a timer-driven
        // stimulus would cost.
        let id = self.add_component("stimulus", comp, &[sig]);
        self.net.set_class(id, CellClass::Source);
        self.connect_driver(id, sig).expect("stimulus target already driven");
        if !schedule.is_empty() {
            self.kernel.queue.push(schedule[0].0, EventKind::Wake { comp: id });
        }
        id
    }

    /// Adds a monitor invoked with `(time, value)` after every commit
    /// of `sig`. Monitors drive nothing and are ideal for measurements.
    pub fn monitor<F>(&mut self, name: &str, sig: SignalId, callback: F) -> ComponentId
    where
        F: FnMut(Time, Value) + 'static,
    {
        let comp = MonitorComp { sig, callback: Box::new(callback) };
        let id = self.add_component(name, comp, &[sig]);
        self.net.set_class(id, CellClass::Monitor);
        id
    }

    /// Schedules an initial wakeup for a component (used by sources
    /// that need a kick before any input ever changes).
    pub fn schedule_wake(&mut self, comp: ComponentId, at: Time) {
        self.kernel.queue.push(at, EventKind::Wake { comp });
    }

    // ------------------------------------------------------------------
    // Static-netlist annotation (metadata only — see `netgraph`)
    // ------------------------------------------------------------------

    /// Tags a component with its behavioural [`CellClass`]. Pure
    /// metadata for static analysis; simulation is unaffected.
    pub fn set_component_class(&mut self, comp: ComponentId, class: CellClass) {
        self.net.set_class(comp, class);
    }

    /// The annotated class of a component ([`CellClass::Unknown`] if
    /// never tagged).
    pub fn component_class(&self, comp: ComponentId) -> CellClass {
        self.net.class(comp)
    }

    /// Records a component's nominal propagation delay for static
    /// timing. Metadata only — the component applies its own delay
    /// dynamically.
    pub fn set_component_delay(&mut self, comp: ComponentId, delay: Time) {
        self.net.set_delay(comp, delay);
    }

    /// Annotates which of a component's inputs are data pins and
    /// which are trigger pins (clock/enable/set/clear). The static
    /// timing pass traverses state-holding cells through these roles.
    pub fn set_component_pins(&mut self, comp: ComponentId, data: &[SignalId], trigger: &[SignalId]) {
        for &s in data {
            self.net.data_pins.push((comp, s));
        }
        for &s in trigger {
            self.net.trigger_pins.push((comp, s));
        }
    }

    /// Declares that `comp` reads `sig` without being sensitized to
    /// it (e.g. a flip-flop samples `d` at the clock edge but is not
    /// woken by `d` changes). Keeps the connectivity lint aware of
    /// the read without adding the signal to the dynamic fanout.
    pub fn declare_read(&mut self, comp: ComponentId, sig: SignalId) {
        self.net.declared_reads.push((comp, sig));
    }

    /// Exempts a component from the combinational-loop lint (the one
    /// legitimate use is a ring oscillator's loop-closing inverter).
    pub fn set_loop_exempt(&mut self, comp: ComponentId) {
        self.net.set_loop_exempt(comp);
    }

    /// Marks a signal as a block port: it is legitimately undriven
    /// until a stimulus or an enclosing netlist drives it.
    pub fn mark_port(&mut self, sig: SignalId) {
        self.net.ports.push(sig);
    }

    /// Marks a signal as legitimately multiply-driven (an arbitrated
    /// or wired-OR node). Without this tag the connectivity lint
    /// reports declared extra drivers as errors.
    pub fn mark_arbited(&mut self, sig: SignalId) {
        self.net.arbited.push(sig);
    }

    /// Records `comp` as an *additional* driver of `sig` in the
    /// static graph. The kernel's single-driver invariant is not
    /// relaxed — this is metadata for modelling shared nodes, and the
    /// connectivity lint flags it unless the signal is
    /// [arbited](Simulator::mark_arbited).
    pub fn connect_extra_driver(&mut self, comp: ComponentId, sig: SignalId) {
        self.net.extra_drivers.push((sig, comp));
    }

    /// Registers a bundled-data launch point: transitions of `origin`
    /// launch both a data value and the strobe that captures it
    /// downstream. `data_lead` is the head start the data event has
    /// over the strobe event at the origin (zero when both are the
    /// same transition).
    pub fn register_bundle(&mut self, label: &str, origin: SignalId, data_lead: Time) {
        self.net.bundles.push(NetBundle { label: label.to_string(), origin, data_lead });
    }

    /// Registers a bundled-data capture point: `trigger` closes a
    /// storage element over `data`, so along every matched launch
    /// path the data must arrive before the trigger.
    pub fn register_capture(&mut self, data: SignalId, trigger: SignalId) {
        self.net.captures.push(NetCapture { data, trigger });
    }

    /// Snapshots the netlist's static structure — drivers, readers,
    /// widths, scopes, cell classes and every registered annotation —
    /// into an immutable [`NetGraph`] for the lint passes.
    pub fn netgraph(&self) -> NetGraph {
        let nsig = self.kernel.signals.len();
        let ncomp = self.comps.len();
        let mut signals: Vec<NetSignal> = (0..nsig)
            .map(|i| {
                let st = &self.kernel.signals[i];
                let info = self.signal_info(SignalId(i as u32));
                NetSignal {
                    id: SignalId(i as u32),
                    name: st.name.clone(),
                    path: info.path,
                    width: st.width,
                    drivers: st.driver.into_iter().collect(),
                    readers: st.fanout.clone(),
                    is_port: false,
                    is_arbited: false,
                }
            })
            .collect();
        for &(sig, comp) in &self.net.extra_drivers {
            signals[sig.index()].drivers.push(comp);
        }
        for &sig in &self.net.ports {
            signals[sig.index()].is_port = true;
        }
        for &sig in &self.net.arbited {
            signals[sig.index()].is_arbited = true;
        }
        let mut components: Vec<NetComponent> = (0..ncomp)
            .map(|i| {
                let id = ComponentId(i as u32);
                NetComponent {
                    id,
                    name: self.comp_names[i].clone(),
                    scope_path: self.scope_path_str(self.kernel.comp_scopes[i]).to_string(),
                    class: self.net.class(id),
                    delay: self.net.delays.get(i).copied().flatten(),
                    inputs: Vec::new(),
                    reads: Vec::new(),
                    outputs: Vec::new(),
                    data_pins: Vec::new(),
                    trigger_pins: Vec::new(),
                    loop_exempt: self.net.loop_exempt.get(i).copied().unwrap_or(false),
                }
            })
            .collect();
        // Invert the per-signal fanout/driver tables into per-component
        // input/output lists (signal order, deterministic).
        for (i, st) in self.kernel.signals.iter().enumerate() {
            let sig = SignalId(i as u32);
            for &comp in &st.fanout {
                components[comp.index()].inputs.push(sig);
            }
            if let Some(driver) = st.driver {
                components[driver.index()].outputs.push(sig);
            }
        }
        for &(sig, comp) in &self.net.extra_drivers {
            components[comp.index()].outputs.push(sig);
        }
        for &(comp, sig) in &self.net.declared_reads {
            components[comp.index()].reads.push(sig);
            if !signals[sig.index()].readers.contains(&comp) {
                signals[sig.index()].readers.push(comp);
            }
        }
        for &(comp, sig) in &self.net.data_pins {
            components[comp.index()].data_pins.push(sig);
        }
        for &(comp, sig) in &self.net.trigger_pins {
            components[comp.index()].trigger_pins.push(sig);
        }
        NetGraph {
            signals,
            components,
            bundles: self.net.bundles.clone(),
            captures: self.net.captures.clone(),
            watches: self
                .watches
                .iter()
                .map(|w| NetWatch { label: w.label.clone(), req: w.req, ack: w.ack, nack: w.nack })
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The committed value of a signal.
    pub fn value(&self, sig: SignalId) -> Value {
        self.kernel.signals[sig.index()].value
    }

    /// Total committed bit toggles of a signal.
    pub fn toggles(&self, sig: SignalId) -> u64 {
        self.kernel.signals[sig.index()].toggles
    }

    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.kernel.now
    }

    /// Number of signals in the netlist.
    pub fn signal_count(&self) -> usize {
        self.kernel.signals.len()
    }

    /// Number of components in the netlist.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The width of a signal in bits, without the name/path assembly
    /// of [`Simulator::signal_info`] — netlist builders call this for
    /// every port of every cell.
    #[inline]
    pub fn signal_width(&self, sig: SignalId) -> u8 {
        self.kernel.signals[sig.index()].width
    }

    /// The dotted path of a scope as a borrowed string (the allocating
    /// variant is [`Simulator::scope_path`]).
    pub fn scope_path_str(&self, id: ScopeId) -> &str {
        self.scopes.path_str(id)
    }

    /// Per-scope accumulated energy in femtojoules, indexed by scope
    /// id. A cheap snapshot for differential power measurements; use
    /// [`Simulator::energy_report`] for the path-labelled view.
    pub fn scope_energies_fj(&self) -> Vec<f64> {
        let mut out = self.kernel.scope_energy_fj.clone();
        for st in &self.kernel.signals {
            let unfolded = st.toggles - st.toggles_energy_base;
            if unfolded != 0 {
                out[st.scope.0 as usize] += unfolded as f64 * st.energy_per_toggle_fj;
            }
        }
        out
    }

    /// Converts the switching energy `sig` has accrued since its last
    /// fold into scope energy and rebases the counter. Must run before
    /// anything changes the signal's per-toggle energy or resets its
    /// toggle counter, so already-earned energy keeps the rate it was
    /// earned at.
    fn fold_signal_energy(&mut self, sig: SignalId) {
        let st = &mut self.kernel.signals[sig.index()];
        let unfolded = st.toggles - st.toggles_energy_base;
        if unfolded != 0 {
            self.kernel.scope_energy_fj[st.scope.0 as usize] +=
                unfolded as f64 * st.energy_per_toggle_fj;
        }
        st.toggles_energy_base = st.toggles;
    }

    /// Full metadata and statistics for a signal.
    pub fn signal_info(&self, sig: SignalId) -> SignalInfo {
        let s = &self.kernel.signals[sig.index()];
        let scope_path = self.scopes.path(s.scope);
        let path = if scope_path.as_str().is_empty() {
            s.name.clone()
        } else {
            format!("{}.{}", scope_path, s.name)
        };
        SignalInfo {
            name: s.name.clone(),
            path,
            width: s.width,
            value: s.value,
            toggles: s.toggles,
            last_change: s.last_change,
            energy_per_toggle_fj: s.energy_per_toggle_fj,
        }
    }

    /// Looks a signal up by its full hierarchical path.
    pub fn signal_by_path(&self, path: &str) -> Option<SignalId> {
        (0..self.kernel.signals.len())
            .map(|i| SignalId(i as u32))
            .find(|&id| self.signal_info(id).path == path)
    }

    /// Iterates over all signal ids.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.kernel.signals.len() as u32).map(SignalId)
    }

    /// Sets the energy charged per bit toggle of `sig`, in femtojoules.
    /// Called by the technology annotator after netlist construction.
    pub fn set_signal_energy(&mut self, sig: SignalId, fj_per_toggle: f64) {
        self.fold_signal_energy(sig);
        self.kernel.signals[sig.index()].energy_per_toggle_fj = fj_per_toggle;
    }

    /// Adds to the energy charged per bit toggle of `sig` (e.g. extra
    /// wire load discovered after the driving cell was created).
    pub fn add_signal_energy(&mut self, sig: SignalId, fj_per_toggle: f64) {
        self.fold_signal_energy(sig);
        self.kernel.signals[sig.index()].energy_per_toggle_fj += fj_per_toggle;
    }

    /// Activity statistics for every signal.
    pub fn activity_report(&self) -> ActivityReport {
        ActivityReport {
            signals: self
                .signal_ids()
                .map(|id| {
                    let info = self.signal_info(id);
                    (info.path, info.toggles)
                })
                .collect(),
            sim_time: self.kernel.now,
        }
    }

    /// Switching + internal energy accumulated per scope since the last
    /// [`Simulator::reset_energy`], rolled up into an [`EnergyReport`].
    pub fn energy_report(&self) -> EnergyReport {
        let energies = self.scope_energies_fj();
        let per_scope: Vec<ScopeEnergy> = energies
            .into_iter()
            .enumerate()
            .map(|(i, energy_fj)| ScopeEnergy {
                path: self.scopes.path(ScopeId(i as u32)).as_str().to_string(),
                energy_fj,
            })
            .collect();
        EnergyReport { scopes: per_scope, sim_time: self.kernel.now }
    }

    /// Energy (femtojoules) of a scope subtree selected by path prefix.
    pub fn subtree_energy_fj(&self, prefix: &str) -> f64 {
        let energies = self.scope_energies_fj();
        self.scopes.subtree(prefix).into_iter().map(|s| energies[s.0 as usize]).sum()
    }

    /// Clears all accumulated energy (e.g. after a warm-up phase, so a
    /// measurement window starts from zero).
    pub fn reset_energy(&mut self) {
        for e in &mut self.kernel.scope_energy_fj {
            *e = 0.0;
        }
        for s in &mut self.kernel.signals {
            s.toggles_energy_base = s.toggles;
        }
    }

    /// Clears all per-signal toggle counters (energy already earned by
    /// those toggles is preserved).
    pub fn reset_toggles(&mut self) {
        for id in 0..self.kernel.signals.len() as u32 {
            self.fold_signal_energy(SignalId(id));
        }
        for s in &mut self.kernel.signals {
            s.toggles = 0;
            s.toggles_energy_base = 0;
        }
    }

    /// Installs a transition-trace sink: every committed signal change
    /// from now on is reported to it as a
    /// [`TraceRecord`](crate::trace::TraceRecord). The sink's
    /// [`install`](TraceSink::install) hook receives the current
    /// signal table, so call this *after* netlist construction.
    /// Replaces any previously installed sink.
    pub fn set_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        sink.install(&self.trace_signal_metas());
        self.kernel.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, restoring the
    /// zero-overhead untraced commit path.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.kernel.trace.take()
    }

    /// The installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.kernel.trace.as_deref()
    }

    /// The signal table as trace metadata, indexed by
    /// [`SignalId::index`]: full path, width and per-toggle switching
    /// energy of every signal.
    pub fn trace_signal_metas(&self) -> Vec<TraceSignalMeta> {
        (0..self.kernel.signals.len() as u32)
            .map(|i| {
                let s = &self.kernel.signals[i as usize];
                let scope_path = self.scopes.path(s.scope);
                let path = if scope_path.as_str().is_empty() {
                    s.name.clone()
                } else {
                    format!("{}.{}", scope_path, s.name)
                };
                TraceSignalMeta {
                    path,
                    width: s.width,
                    energy_per_toggle_fj: s.energy_per_toggle_fj,
                }
            })
            .collect()
    }

    /// Kernel profiling counters: events/commits/wakes processed,
    /// event-queue occupancy, and wall-clock time spent simulating.
    /// Counter updates are plain integer increments on already-touched
    /// cache lines, so the hot path stays branch-predictable.
    pub fn profile(&self) -> SimProfile {
        SimProfile {
            events: self.events_processed,
            commits: self.kernel.commits,
            wakes: self.wakes,
            deltas: self.deltas,
            queue_peak: self.queue_peak,
            queue_mean: if self.queue_samples == 0 {
                0.0
            } else {
                self.queue_depth_sum as f64 / self.queue_samples as f64
            },
            wall: self.wall,
            sim_time: self.kernel.now,
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & deadlock watchdog
    // ------------------------------------------------------------------

    /// Resolves a [`FaultPlan`] against this netlist and installs it.
    /// Call once, after construction and before running. An empty plan
    /// installs nothing — the run stays bit-identical to a plan-free
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFaultTarget`] if a stuck-at or
    /// glitch names a signal path that does not exist.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> SimResult<()> {
        if plan.is_empty() {
            return Ok(());
        }
        let nsig = self.kernel.signals.len();
        let ncomp = self.comps.len();
        let mut comp_scale = vec![1.0f64; ncomp];
        if plan.delay_scale != 1.0 || plan.delay_sigma > 0.0 {
            for (c, scale) in comp_scale.iter_mut().enumerate() {
                let path = self.scopes.path_str(self.kernel.comp_scopes[c]);
                if plan.scope_matches(path) {
                    *scale = plan.sample_scale(c);
                }
            }
        }
        let mut extra_delay_fs = vec![0u64; nsig];
        if !plan.skews.is_empty() {
            for (i, extra) in extra_delay_fs.iter_mut().enumerate() {
                let path = self.signal_info(SignalId(i as u32)).path;
                for rule in &plan.skews {
                    if path.contains(rule.substring.as_str()) {
                        *extra += rule.extra.as_fs();
                    }
                }
            }
        }
        let mut setup_check = vec![false; ncomp];
        if plan.setup_check {
            for (c, flag) in setup_check.iter_mut().enumerate() {
                let path = self.scopes.path_str(self.kernel.comp_scopes[c]);
                *flag = plan.scope_matches(path);
            }
        }
        let mut stuck_from = vec![Time::MAX; nsig];
        let mut actions = Vec::new();
        for s in &plan.stuck {
            let sig = self
                .signal_by_path(&s.path)
                .ok_or_else(|| SimError::UnknownFaultTarget { path: s.path.clone() })?;
            stuck_from[sig.index()] = s.from;
            let width = self.kernel.signals[sig.index()].width;
            let value = if s.value { Value::ones(width) } else { Value::zero(width) };
            let idx = actions.len() as u32;
            actions.push(FaultAction::Force { signal: sig, value });
            self.kernel.queue.push(s.from, EventKind::Fault { action: idx });
        }
        for g in &plan.glitches {
            let sig = self
                .signal_by_path(&g.path)
                .ok_or_else(|| SimError::UnknownFaultTarget { path: g.path.clone() })?;
            let width = self.kernel.signals[sig.index()].width;
            let lane_mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
            let idx = actions.len() as u32;
            actions.push(FaultAction::Glitch {
                signal: sig,
                mask: g.mask & lane_mask,
                width: g.width,
            });
            self.kernel.queue.push(g.at, EventKind::Fault { action: idx });
        }
        self.kernel.fault = Some(Box::new(FaultState {
            comp_scale,
            extra_delay_fs,
            stuck_from,
            setup_check,
            actions,
        }));
        Ok(())
    }

    /// Registers a req/ack (or VALID/ack) pair for deadlock diagnosis.
    /// A four-phase handshake at rest has both wires at the same
    /// level; [`Simulator::deadlock_report`] flags registered pairs
    /// whose levels disagree.
    pub fn watch_handshake(&mut self, label: &str, req: SignalId, ack: SignalId) {
        self.watches.push(HandshakeWatch { label: label.to_string(), req, ack, nack: None });
    }

    /// Registers a req/ack pair whose request can also be answered by
    /// a negative acknowledge (`nack`), as in a protected link where a
    /// failed integrity check demands a retransmission instead of the
    /// word acknowledge. The triple is carried into the
    /// [`crate::NetGraph`] snapshot so static analysis can check that
    /// the NACK wire genuinely answers the request.
    pub fn watch_handshake_nack(
        &mut self,
        label: &str,
        req: SignalId,
        ack: SignalId,
        nack: SignalId,
    ) {
        self.watches.push(HandshakeWatch { label: label.to_string(), req, ack, nack: Some(nack) });
    }

    /// Number of handshake pairs registered for diagnosis.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// The registered handshake pairs as `(label, req, ack)`, in
    /// registration order. Lets trace consumers compute per-handshake
    /// latency statistics without re-deriving the pairing.
    pub fn handshake_watches(&self) -> impl Iterator<Item = (&str, SignalId, SignalId)> + '_ {
        self.watches.iter().map(|w| (w.label.as_str(), w.req, w.ack))
    }

    /// Inspects every registered handshake and reports the stalled
    /// ones — pairs whose req and ack levels disagree, meaning one
    /// side is waiting for a transition that never arrived. Returns
    /// `None` when nothing is stalled (or nothing was registered).
    ///
    /// Call when a run goes quiet with work outstanding: after a
    /// drained queue, an expired wall budget, or an event-limit trip
    /// (the kernel attaches this report to
    /// [`SimError::EventLimitExceeded`] automatically).
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        let mut stalled = Vec::new();
        for w in &self.watches {
            let req = &self.kernel.signals[w.req.index()];
            let ack = &self.kernel.signals[w.ack.index()];
            if req.value.as_logic() == ack.value.as_logic() {
                continue;
            }
            // The waiting parties are whoever listens on either wire.
            let mut waiting: Vec<String> = Vec::new();
            for &comp in req.fanout.iter().chain(ack.fanout.iter()) {
                let name = &self.comp_names[comp.index()];
                if !waiting.iter().any(|n| n == name) {
                    waiting.push(name.clone());
                }
            }
            stalled.push(StalledHandshake {
                label: w.label.clone(),
                req_path: self.signal_info(w.req).path,
                ack_path: self.signal_info(w.ack).path,
                req_value: req.value,
                ack_value: ack.value,
                req_last_change: req.last_change,
                ack_last_change: ack.last_change,
                waiting,
            });
        }
        if stalled.is_empty() {
            None
        } else {
            Some(DeadlockReport { at: self.kernel.now, stalled })
        }
    }

    /// Force-commits `value` onto a signal outside the normal driver
    /// path: bumps the drive epoch (cancelling any in-flight inertial
    /// drive), updates toggles/trace exactly like a committed drive,
    /// and queues the fanout for evaluation.
    fn force_signal(&mut self, signal: SignalId, value: Value) {
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        st.drive_epoch += 1;
        st.pending = false;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = kernel.now;
        kernel.commits += 1;
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time: kernel.now, signal, old, new: value });
        }
        self.pending_evals.extend_from_slice(&st.fanout);
    }

    /// Executes one scheduled fault action (the `Fault` event arm).
    fn run_fault_action(&mut self, idx: u32) {
        let Some(fault) = self.kernel.fault.as_ref() else {
            return;
        };
        match fault.actions[idx as usize].clone() {
            FaultAction::Force { signal, value } => self.force_signal(signal, value),
            FaultAction::Glitch { signal, mask, width } => {
                let st = &self.kernel.signals[signal.index()];
                let old = st.value;
                let flipped = old.xor(&Value::from_u64(st.width, mask));
                // Schedule the restore before flipping, so a glitch of
                // width zero still resolves in deterministic order.
                let fault = self.kernel.fault.as_mut().expect("checked above");
                let restore = fault.actions.len() as u32;
                fault.actions.push(FaultAction::Force { signal, value: old });
                let t = self.kernel.now + width;
                self.kernel.queue.push(t, EventKind::Fault { action: restore });
                self.force_signal(signal, flipped);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs until the event queue is exhausted or simulated time would
    /// pass `horizon`. Events *at* the horizon are processed. Returns
    /// the final simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the configured event
    /// budget is exhausted (runaway oscillation).
    pub fn run_until(&mut self, horizon: Time) -> SimResult<Time> {
        let wall_start = std::time::Instant::now();
        let mut processed: u64 = 0;
        while let Some(ev) = self.kernel.queue.pop_at_or_before(horizon) {
            // Profiling: sample queue occupancy once every 64 deltas.
            // Singleton-delta workloads (free-running oscillators) pop
            // millions of one-event deltas, so the steady-state loop
            // must pay a single increment-and-mask here, not a queue
            // walk; the subsampled mean/peak stay representative.
            self.deltas += 1;
            if self.deltas & 0x3F == 0 {
                let depth = self.kernel.queue.len();
                self.queue_samples += 1;
                self.queue_depth_sum += depth as u64;
                if depth > self.queue_peak {
                    self.queue_peak = depth;
                }
            }
            processed += self.step_delta(ev);
            if processed > self.config.max_events {
                self.events_processed += processed;
                self.wall += wall_start.elapsed();
                return Err(SimError::EventLimitExceeded {
                    at: self.kernel.now,
                    limit: self.config.max_events,
                    diagnosis: self.deadlock_report().map(Box::new),
                });
            }
        }
        self.events_processed += processed;
        self.wall += wall_start.elapsed();
        // Advance to the horizon even if the queue went quiet earlier.
        if self.kernel.now < horizon {
            self.kernel.now = horizon;
        }
        Ok(self.kernel.now)
    }

    /// Runs for `span` beyond the current time.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_for(&mut self, span: Time) -> SimResult<Time> {
        let horizon = self.kernel.now + span;
        self.run_until(horizon)
    }

    /// Runs until no events remain (only sensible for circuits without
    /// free-running sources such as clocks or ring oscillators).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_to_quiescence(&mut self) -> SimResult<Time> {
        self.run_until(Time::MAX)
    }

    /// Processes one delta: a single wake, or a maximal run of
    /// consecutive same-timestamp drive commits followed by exactly
    /// one evaluation of every component in their combined fanout.
    /// Returns the number of events consumed.
    ///
    /// Batching the commits first and deduplicating the evaluations
    /// matches HDL delta-cycle semantics — a process fed by several
    /// signals that change in the same delta runs once, seeing all of
    /// them at their new values — and removes both the per-commit
    /// fanout clone and the redundant re-evaluations from the hot
    /// loop. The scratch buffer and stamps make the steady state
    /// allocation-free.
    fn step_delta(&mut self, ev: crate::event::Event) -> u64 {
        self.kernel.now = ev.time;
        let mut consumed = 1;
        match ev.kind {
            EventKind::Wake { comp } => {
                self.wakes += 1;
                self.eval(comp, true);
            }
            EventKind::Fault { action } => {
                debug_assert!(self.pending_evals.is_empty());
                self.run_fault_action(action);
                let mut i = 0;
                while i < self.pending_evals.len() {
                    let comp = self.pending_evals[i];
                    i += 1;
                    self.eval(comp, false);
                }
                self.pending_evals.clear();
            }
            EventKind::Drive { .. } => {
                debug_assert!(self.pending_evals.is_empty());
                // Probe for a same-time burst *before* committing —
                // commits never touch the queue, so holding the second
                // event is safe. Knowing the delta is a singleton (the
                // overwhelming majority of gate-level activity) lets
                // the fanout walk skip the dedup stamps: a component
                // appears at most once in a single signal's fanout.
                match self.kernel.queue.pop_drive_at(self.kernel.now) {
                    None => self.commit_drive_lone(ev),
                    Some(second) => {
                        consumed += 1;
                        let delta = self.delta_seq;
                        self.delta_seq += 1;
                        self.commit_drive(ev, delta);
                        let mut next = Some(second);
                        while let Some(cur) = next {
                            self.commit_drive(cur, delta);
                            next = self.kernel.queue.pop_drive_at(self.kernel.now);
                            if next.is_some() {
                                consumed += 1;
                            }
                        }
                    }
                }
                // Index loop rather than iterator: `eval` needs `&mut
                // self`, and nothing reachable from a component can
                // touch `pending_evals` (components only see the
                // kernel through their `Ctx`), so the list is stable
                // during the drain.
                let mut i = 0;
                while i < self.pending_evals.len() {
                    let comp = self.pending_evals[i];
                    i += 1;
                    self.eval(comp, false);
                }
                self.pending_evals.clear();
            }
        }
        consumed
    }

    /// Applies one drive event: commits the value change (toggles,
    /// energy, trace) and queues the signal's fanout for evaluation,
    /// skipping components already queued in this delta.
    fn commit_drive(&mut self, ev: crate::event::Event, delta: u64) {
        let EventKind::Drive { signal, epoch } = ev.kind else {
            unreachable!("commit_drive on non-drive event");
        };
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        if epoch != st.drive_epoch {
            return; // superseded (inertial cancellation)
        }
        st.pending = false;
        // The event matched the signal's current drive epoch, so the
        // value it was scheduled with is exactly `pending_value`.
        let value = st.pending_value;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = ev.time;
        kernel.commits += 1;
        // Switching energy is *not* accumulated here: it is derived
        // lazily from the toggle counter (see `scope_energies_fj`),
        // keeping f64 traffic off the commit hot path.
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time: ev.time, signal, old, new: value });
        }
        for &comp in &st.fanout {
            let stamp = &mut kernel.comp_stamp[comp.index()];
            if *stamp != delta {
                *stamp = delta;
                self.pending_evals.push(comp);
            }
        }
    }

    /// [`Simulator::commit_drive`] specialised for a singleton delta
    /// (no other commit at this timestamp): with a single committed
    /// signal the dedup stamps cannot reject anything — a component
    /// appears at most once in one signal's fanout — so the fanout is
    /// either evaluated directly (the ubiquitous single-listener wire)
    /// or bulk-copied into the scratch list.
    fn commit_drive_lone(&mut self, ev: crate::event::Event) {
        let EventKind::Drive { signal, epoch } = ev.kind else {
            unreachable!("commit_drive on non-drive event");
        };
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        if epoch != st.drive_epoch {
            return; // superseded (inertial cancellation)
        }
        st.pending = false;
        // The event matched the signal's current drive epoch, so the
        // value it was scheduled with is exactly `pending_value`.
        let value = st.pending_value;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = ev.time;
        kernel.commits += 1;
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time: ev.time, signal, old, new: value });
        }
        if let &[comp] = st.fanout.as_slice() {
            self.eval(comp, false);
        } else {
            self.pending_evals.extend_from_slice(&st.fanout);
        }
    }

    fn eval(&mut self, comp: ComponentId, wake: bool) {
        // `comps` and `kernel` are disjoint fields, and a component
        // only sees the kernel through its `Ctx` — it can never reach
        // back into the component list — so the component can be
        // called in place, with no take/put of its box.
        let boxed = &mut self.comps[comp.index()];
        let mut ctx = Ctx { kernel: &mut self.kernel, comp };
        if wake {
            boxed.on_wake(&mut ctx);
        } else {
            boxed.on_input(&mut ctx);
        }
    }
}

/// Drives a fixed schedule of values onto one signal.
///
/// After the initial wake the stimulus is self-chaining: it sits in
/// its own signal's fanout, and each commit of an entry triggers the
/// delayed drive of the next one. A timer wake is only needed to hop
/// over entries that repeat the current value (their drive is a no-op
/// and produces no commit to chain from).
struct Stimulus {
    sig: SignalId,
    schedule: Vec<(Time, Value)>,
    next: usize,
    /// Value of the latest drive issued (committed or in flight); the
    /// signal itself starts all-X.
    cur: Value,
}

impl Stimulus {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Commit everything due now with zero delay. Several entries
        // at the same timestamp supersede each other through the
        // inertial epoch, so the last one wins, as before.
        let mut issued = false;
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= now {
            let (_, v) = self.schedule[self.next];
            self.next += 1;
            if v != self.cur {
                ctx.drive(self.sig, v, Time::ZERO);
                self.cur = v;
                issued = true;
            }
        }
        if issued {
            // The zero-delay commit calls `on_input`, continuing the
            // chain at this same timestamp.
            return;
        }
        let Some(&(t, v)) = self.schedule.get(self.next) else {
            return;
        };
        if v != self.cur {
            ctx.drive(self.sig, v, t - now);
            self.cur = v;
            self.next += 1;
        } else {
            ctx.wake_after(t - now);
        }
    }
}

impl Component for Stimulus {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        self.step(ctx);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.step(ctx);
    }
}

/// Calls a closure after each commit of a watched signal.
struct MonitorComp {
    sig: SignalId,
    callback: Box<dyn FnMut(Time, Value)>,
}

impl Component for MonitorComp {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let v = ctx.read(self.sig);
        (self.callback)(ctx.now(), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Not {
        a: SignalId,
        y: SignalId,
        delay: Time,
    }

    impl Component for Not {
        fn on_input(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read(self.a).not();
            ctx.drive(self.y, v, self.delay);
        }
    }

    fn inverter(sim: &mut Simulator, a: SignalId, delay: Time) -> SignalId {
        let y = sim.add_signal("y", 1);
        let id = sim.add_component("not", Not { a, y, delay }, &[a]);
        sim.connect_driver(id, y).unwrap();
        y
    }

    #[test]
    fn stimulus_and_gate_propagation() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        sim.run_until(Time::from_ps(50)).unwrap();
        assert!(sim.value(y).is_high());
        sim.run_until(Time::from_ps(200)).unwrap();
        assert!(sim.value(y).is_low());
    }

    #[test]
    fn inertial_delay_filters_glitch() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(50));
        // 20 ps pulse, shorter than the 50 ps gate delay: must vanish.
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(200), Value::one(1)),
                (Time::from_ps(220), Value::zero(1)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_high());
        // One transition X->1 only; the glitch never reached y.
        assert_eq!(sim.toggles(y), 1);
    }

    #[test]
    fn toggle_and_energy_accounting() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        sim.set_signal_energy(a, 2.0);
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::from_u64(8, 0x00)),
                (Time::from_ps(10), Value::from_u64(8, 0xFF)),
                (Time::from_ps(20), Value::from_u64(8, 0x0F)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        // X->00 is 8 toggles, 00->FF is 8, FF->0F is 4.
        assert_eq!(sim.toggles(a), 20);
        let e = sim.subtree_energy_fj("");
        assert!((e - 40.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_sees_commits_in_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 4);
        sim.monitor("mon", a, move |t, v| {
            seen2.borrow_mut().push((t, v.to_u64().unwrap()));
        });
        sim.stimulus(
            a,
            &[
                (Time::from_ps(5), Value::from_u64(4, 1)),
                (Time::from_ps(15), Value::from_u64(4, 2)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            &*seen.borrow(),
            &[(Time::from_ps(5), 1), (Time::from_ps(15), 2)]
        );
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = sim.add_signal("y", 1);
        let c1 = sim.add_component("n1", Not { a, y, delay: Time::from_ps(1) }, &[a]);
        let c2 = sim.add_component("n2", Not { a, y, delay: Time::from_ps(1) }, &[a]);
        sim.connect_driver(c1, y).unwrap();
        let err = sim.connect_driver(c2, y).unwrap_err();
        assert!(matches!(err, SimError::MultipleDrivers { .. }));
    }

    #[test]
    fn run_until_advances_time_even_when_quiet() {
        let mut sim = Simulator::new();
        let t = sim.run_until(Time::from_ns(5)).unwrap();
        assert_eq!(t, Time::from_ns(5));
        assert_eq!(sim.now(), Time::from_ns(5));
    }

    #[test]
    fn event_limit_catches_oscillation() {
        // s = or(r, kick); r = not(s). Once kick pulses high and falls
        // back, the loop oscillates forever with 1 ps gate delays.
        let mut sim = Simulator::with_config(SimConfig { max_events: 1000, trace: false });
        let kick = sim.add_signal("kick", 1);
        let s = sim.add_signal("s", 1);
        let r = sim.add_signal("r", 1);
        let g1 = sim.add_component("g1", Not { a: s, y: r, delay: Time::from_ps(1) }, &[s]);
        sim.connect_driver(g1, r).unwrap();
        let g2 = sim.add_component("g2", Or { a: r, b: kick, y: s }, &[r, kick]);
        sim.connect_driver(g2, s).unwrap();
        sim.stimulus(
            kick,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(10), Value::zero(1))],
        );
        let res = sim.run_until(Time::from_ns(100));
        assert!(matches!(res, Err(SimError::EventLimitExceeded { .. })));
    }

    struct Or {
        a: SignalId,
        b: SignalId,
        y: SignalId,
    }
    impl Component for Or {
        fn on_input(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read(self.a).or(&ctx.read(self.b));
            ctx.drive(self.y, v, Time::from_ps(1));
        }
    }

    #[test]
    fn scope_energy_rollup() {
        let mut sim = Simulator::new();
        sim.push_scope("blk");
        let a = sim.add_signal("a", 1);
        sim.set_signal_energy(a, 3.0);
        sim.pop_scope();
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(1), Value::one(1))]);
        sim.run_to_quiescence().unwrap();
        assert!((sim.subtree_energy_fj("blk") - 6.0).abs() < 1e-9);
        assert_eq!(sim.subtree_energy_fj("other"), 0.0);
    }

    #[test]
    fn signal_paths_and_lookup() {
        let mut sim = Simulator::new();
        sim.push_scope("top");
        sim.push_scope("sub");
        let a = sim.add_signal("data", 8);
        sim.pop_scope();
        sim.pop_scope();
        assert_eq!(sim.signal_info(a).path, "top.sub.data");
        assert_eq!(sim.signal_by_path("top.sub.data"), Some(a));
        assert_eq!(sim.signal_by_path("nope"), None);
    }

    #[test]
    fn empty_fault_plan_installs_nothing() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let _y = inverter(&mut sim, a, Time::from_ps(10));
        sim.apply_fault_plan(&FaultPlan::new(123)).unwrap();
        assert!(sim.kernel.fault.is_none());
    }

    #[test]
    fn unknown_fault_target_is_an_error() {
        let mut sim = Simulator::new();
        let _a = sim.add_signal("a", 1);
        let plan = FaultPlan::new(0).stuck_at("no.such.signal", false, Time::ZERO);
        let err = sim.apply_fault_plan(&plan).unwrap_err();
        assert!(matches!(err, SimError::UnknownFaultTarget { .. }));
        assert!(err.to_string().contains("no.such.signal"));
    }

    #[test]
    fn stuck_at_forces_value_and_discards_later_drives() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(1), Value::one(1)),
                (Time::from_ns(2), Value::zero(1)),
            ],
        );
        // y would settle high; stick it low from 500 ps instead.
        let plan = FaultPlan::new(0).stuck_at("y", false, Time::from_ps(500));
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_low());
        // The input kept moving; the stuck output never followed.
        assert_eq!(sim.value(a), Value::zero(1));
    }

    #[test]
    fn glitch_flips_and_restores() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.monitor("mon", a, move |t, v| {
            seen2.borrow_mut().push((t, v));
        });
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        let plan = FaultPlan::new(0).glitch("a", Time::from_ns(5), Time::from_ps(200), 1);
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            &*seen.borrow(),
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(5), Value::one(1)),
                (Time::from_ns(5) + Time::from_ps(200), Value::zero(1)),
            ]
        );
    }

    #[test]
    fn downstream_inertial_delay_filters_short_glitch() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(50));
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        // 20 ps SEU, shorter than the 50 ps gate delay: must vanish.
        let plan = FaultPlan::new(0).glitch("a", Time::from_ns(5), Time::from_ps(20), 1);
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_high());
        assert_eq!(sim.toggles(y), 1); // only the initial X -> 1
    }

    #[test]
    fn delay_scale_slows_gates() {
        let run = |scale: f64| {
            let mut sim = Simulator::new();
            let a = sim.add_signal("a", 1);
            let y = inverter(&mut sim, a, Time::from_ps(100));
            sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
            let plan = FaultPlan::new(0).with_delay_scale(scale);
            sim.apply_fault_plan(&plan).unwrap();
            sim.run_to_quiescence().unwrap();
            sim.signal_info(y).last_change
        };
        assert_eq!(run(1.0), Time::from_ps(100));
        assert_eq!(run(4.0), Time::from_ps(400));
    }

    #[test]
    fn skew_adds_extra_delay_on_matching_signals_only() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let data_y = inverter(&mut sim, a, Time::from_ps(100)); // named "y"
        sim.push_scope("req");
        let req_y = inverter(&mut sim, a, Time::from_ps(100)); // "req.y"
        sim.pop_scope();
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        let plan = FaultPlan::new(0).skew_matching("req.y", Time::from_ps(300));
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.signal_info(data_y).last_change, Time::from_ps(100));
        assert_eq!(sim.signal_info(req_y).last_change, Time::from_ps(400));
    }

    #[test]
    fn sigma_runs_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulator::new();
            let a = sim.add_signal("a", 1);
            let mut y = a;
            for _ in 0..8 {
                y = inverter(&mut sim, y, Time::from_ps(37));
            }
            sim.stimulus(
                a,
                &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))],
            );
            let plan = FaultPlan::new(seed).with_delay_sigma(0.3);
            sim.apply_fault_plan(&plan).unwrap();
            sim.run_to_quiescence().unwrap();
            (sim.signal_info(y).last_change, sim.toggles(y), sim.events_processed())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn watchdog_reports_stalled_handshake() {
        // A req wire that rises and an ack wire that never answers —
        // the minimal stalled four-phase handshake.
        let mut sim = Simulator::new();
        sim.push_scope("hs");
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.pop_scope();
        let _listener = inverter(&mut sim, req, Time::from_ps(10));
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("hs0", req, ack);
        sim.run_until(Time::from_ns(10)).unwrap();
        let report = sim.deadlock_report().expect("stall must be diagnosed");
        assert_eq!(report.first_label(), Some("hs0"));
        assert_eq!(report.stalled.len(), 1);
        let s = &report.stalled[0];
        assert_eq!(s.req_path, "hs.req");
        assert_eq!(s.ack_path, "hs.ack");
        assert_eq!(s.req_last_change, Time::from_ns(1));
        assert!(s.waiting.iter().any(|n| n == "not"));
    }

    #[test]
    fn watchdog_quiet_when_handshakes_at_rest() {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("hs0", req, ack);
        sim.run_to_quiescence().unwrap();
        assert!(sim.deadlock_report().is_none());
    }

    #[test]
    fn event_limit_error_carries_watchdog_diagnosis() {
        // The oscillation test's circuit, plus a watched pair that is
        // mid-protocol while the loop spins.
        let mut sim = Simulator::with_config(SimConfig { max_events: 1000, trace: false });
        let kick = sim.add_signal("kick", 1);
        let s = sim.add_signal("s", 1);
        let r = sim.add_signal("r", 1);
        let g1 = sim.add_component("g1", Not { a: s, y: r, delay: Time::from_ps(1) }, &[s]);
        sim.connect_driver(g1, r).unwrap();
        let g2 = sim.add_component("g2", Or { a: r, b: kick, y: s }, &[r, kick]);
        sim.connect_driver(g2, s).unwrap();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.stimulus(req, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("stuck", req, ack);
        sim.stimulus(
            kick,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(10), Value::zero(1))],
        );
        let err = sim.run_until(Time::from_ns(100)).unwrap_err();
        let SimError::EventLimitExceeded { diagnosis: Some(report), .. } = err else {
            panic!("expected event-limit error with diagnosis, got {err:?}");
        };
        assert_eq!(report.first_label(), Some("stuck"));
    }

    #[test]
    fn trace_sink_sees_old_and_new_values() {
        use crate::trace::{MemoryTrace, TraceDump};
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 4);
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::from_u64(4, 0b0011)),
                (Time::from_ps(10), Value::from_u64(4, 0b1100)),
            ],
        );
        sim.set_trace_sink(Box::new(MemoryTrace::new()));
        sim.run_to_quiescence().unwrap();
        let dump = TraceDump::capture(&sim).expect("sink retains records");
        assert_eq!(dump.records.len(), 2);
        assert_eq!(dump.records[0].old, Value::all_x(4));
        assert_eq!(dump.records[0].new, Value::from_u64(4, 0b0011));
        assert_eq!(dump.records[1].old, Value::from_u64(4, 0b0011));
        assert_eq!(dump.records[1].new, Value::from_u64(4, 0b1100));
        assert_eq!(dump.path(a), "a");
    }

    #[test]
    fn take_trace_sink_restores_untraced_path() {
        use crate::trace::MemoryTrace;
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.set_trace_sink(Box::new(MemoryTrace::new()));
        let sink = sim.take_trace_sink().expect("sink was installed");
        assert_eq!(sink.records().map(<[_]>::len), Some(0));
        assert!(sim.trace_sink().is_none());
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.kernel.trace.is_none());
    }

    #[test]
    fn profile_counts_commits_and_wakes() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let _y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(
            a,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        sim.run_to_quiescence().unwrap();
        let p = sim.profile();
        // a: X->0, 0->1; y: X->1, 1->0.
        assert_eq!(p.commits, 4);
        assert!(p.wakes >= 1, "stimulus kick must be counted");
        assert_eq!(p.events, sim.events_processed());
        assert!(p.deltas > 0 && p.deltas <= p.events);
        assert!(p.queue_mean >= 0.0);
        assert_eq!(p.sim_time, sim.now());
    }

    #[test]
    fn reset_counters() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.set_signal_energy(a, 1.0);
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(1), Value::one(1))]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.toggles(a) > 0);
        sim.reset_toggles();
        sim.reset_energy();
        assert_eq!(sim.toggles(a), 0);
        assert_eq!(sim.subtree_energy_fj(""), 0.0);
    }
}
