//! The simulator: netlist container plus event loop.

use crate::compile::{CombSpec, Compiled, ConeForest};
use crate::component::{Component, ComponentId, Ctx};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::netgraph::{
    BundleParams, CellClass, NetBundle, NetCapture, NetComponent, NetGraph, NetMeta, NetSignal,
    NetWatch,
};
use crate::scope::{ScopeId, ScopePath, ScopeTree};
use crate::signal::{SignalId, SignalInfo, SignalState};
use crate::stats::{ActivityReport, EnergyReport, ScopeEnergy, SimProfile};
use crate::trace::{MemoryTrace, TraceRecord, TraceSignalMeta, TraceSink};
use crate::slice::Sliced;
use crate::watchdog::{DeadlockReport, HandshakeWatch, StalledHandshake};
use crate::{LaneValues, SimError, SimResult, Time, Value};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on processed events per `run_*` call, as a safety net
    /// against oscillating loops. The default (200 million) is far above
    /// any experiment in this repository.
    pub max_events: u64,
    /// Record every committed signal change for later VCD/JSONL export
    /// by installing a [`MemoryTrace`] sink at construction. Costs
    /// memory proportional to activity; off by default. For custom
    /// sinks (ring buffers, streaming JSONL) leave this off and call
    /// [`Simulator::set_trace_sink`] after netlist construction.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_events: 200_000_000, trace: false }
    }
}

/// The mutable core shared with component evaluation contexts.
pub(crate) struct Kernel {
    pub signals: Vec<SignalState>,
    pub queue: EventQueue,
    pub now: Time,
    /// Committed value changes (profiling counter). Lives here, next
    /// to `now`, so the per-commit increment touches a cache line the
    /// commit path has already written.
    pub commits: u64,
    /// Scope of each component, indexed by `ComponentId`.
    pub comp_scopes: Vec<ScopeId>,
    /// Evaluation-pending stamp of each component, indexed by
    /// `ComponentId`: holds the id of the delta batch that last queued
    /// the component, so a component fed by several signals committing
    /// at one timestamp is evaluated once per delta, not once per
    /// driving signal.
    pub comp_stamp: Vec<u64>,
    /// Per-scope energy accumulator, femtojoules. Holds component
    /// internal energy ([`Ctx::add_energy_fj`]) plus switching energy
    /// *folded in* from the per-signal toggle counters at fold points
    /// (energy/toggle resets, per-toggle-energy changes). Live totals
    /// are derived by adding each signal's un-folded toggles × energy
    /// — see [`Simulator::scope_energies_fj`] — which keeps the commit
    /// hot path free of floating-point accumulation.
    pub scope_energy_fj: Vec<f64>,
    /// Installed transition-trace sink, if any. `None` (the default)
    /// keeps the commit hot path on a single predictable branch, the
    /// same zero-overhead-when-off contract as `fault` below.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Installed fault perturbations. `None` (the default) means every
    /// drive takes the untouched fast path — applying an empty
    /// [`FaultPlan`] leaves this `None`, so a clean run is
    /// bit-identical to a build without the fault subsystem.
    pub fault: Option<Box<FaultState>>,
    /// The active bit-sliced campaign pass, if
    /// [`Simulator::slice_begin`] ran. Lives in the kernel (not the
    /// simulator) so the dynamic-drive skip paths in [`Ctx::drive`]
    /// can reach it; boxed so the common scalar run pays one pointer
    /// test, not the struct's footprint.
    pub sliced: Option<Box<Sliced>>,
}

impl Kernel {
    /// Routes one committed value change through the active sliced
    /// campaign pass. `forced` is `Some(was_pending)` for force
    /// commits (fault actions), `None` for driver commits.
    fn slice_commit(
        &mut self,
        time: Time,
        signal: SignalId,
        old: &Value,
        new: &Value,
        forced: Option<bool>,
    ) {
        let (signals, sliced) = (&self.signals, &mut self.sliced);
        let Some(sl) = sliced else { return };
        let driver = signals[signal.index()].driver;
        sl.on_commit(time, signal, old, new, forced, driver, |s| signals[s.index()].value);
    }

    /// Reports a skipped dynamic drive to the active sliced pass (the
    /// inertial no-op rules in [`Ctx::drive`] fired).
    pub(crate) fn slice_dyn_skip(&mut self, comp: ComponentId, out: SignalId, v: &Value) {
        let (signals, sliced) = (&self.signals, &mut self.sliced);
        let Some(sl) = sliced else { return };
        sl.dyn_skip(comp, out, v, |s| signals[s.index()].value);
    }

    /// Reports a dynamic drive that superseded an in-flight one to the
    /// active sliced pass.
    pub(crate) fn slice_dyn_supersede(&mut self, comp: ComponentId, out: SignalId) {
        let (signals, sliced) = (&self.signals, &mut self.sliced);
        let Some(sl) = sliced else { return };
        sl.dyn_supersede(comp, out, |s| signals[s.index()].value);
    }
}

/// An event-driven gate-level simulator holding a netlist of signals
/// and [`Component`]s.
///
/// See the [crate-level documentation](crate) for the simulation model
/// and a complete example.
pub struct Simulator {
    kernel: Kernel,
    comps: Vec<Box<dyn Component>>,
    comp_names: Vec<String>,
    scopes: ScopeTree,
    scope_stack: Vec<ScopeId>,
    config: SimConfig,
    events_processed: u64,
    /// Monotone id of the delta batch being processed; pairs with
    /// `Kernel::comp_stamp` to dedup evaluations. Starts at 1 so the
    /// zero-initialised stamps never match.
    delta_seq: u64,
    /// Scratch list of components awaiting evaluation in the current
    /// delta, in first-trigger order. Kept allocated across deltas so
    /// the steady-state event loop performs no heap allocation.
    pending_evals: Vec<ComponentId>,
    /// Handshake pairs registered for deadlock diagnosis, in
    /// registration order.
    watches: Vec<HandshakeWatch>,
    /// Static-netlist annotation side tables (cell classes, declared
    /// reads, bundled-data launch/capture points…). Never read by the
    /// event loop; snapshotted by [`Simulator::netgraph`].
    net: NetMeta,
    /// Wake events processed (profiling counter).
    wakes: u64,
    /// Deltas processed — queue pops, each a wake, a fault action or a
    /// batch of same-timestamp commits (profiling counter).
    deltas: u64,
    /// Sum of sampled event-queue depths; with `queue_samples` this
    /// yields the mean queue occupancy.
    queue_depth_sum: u64,
    /// Number of queue-depth samples taken (one every 64 deltas, so
    /// the event loop pays one branch, not a queue walk, per delta).
    queue_samples: u64,
    /// Peak event-queue depth observed at a sampled delta boundary.
    queue_peak: usize,
    /// Wall-clock time spent inside `run_until` since construction.
    wall: std::time::Duration,
    /// Compiled execution specs registered by the cell builders,
    /// indexed by `ComponentId` (sparse — `None` for cells with no
    /// combinational description). Inert until [`Simulator::compile`].
    comb_specs: Vec<Option<CombSpec>>,
    /// The active compiled engine, if [`Simulator::compile`] ran.
    compiled: Option<Compiled>,
    /// State-cell capture rules `q <- d` registered by the cell
    /// builders for the sliced campaign engine. Inert until
    /// [`Simulator::slice_begin`].
    capture_rules: Vec<(SignalId, SignalId)>,
    /// Lanes carried by the last bit-sliced campaign pass attached to
    /// this simulator (recorded by the lane executor; profiling only).
    lanes_active: u64,
    /// Lanes the last bit-sliced campaign pass demoted to scalar
    /// replay (recorded by the lane executor; profiling only).
    scalar_fallbacks: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.kernel.signals.len())
            .field("components", &self.comps.len())
            .field("now", &self.kernel.now)
            .field("pending_events", &self.kernel.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with default configuration.
    pub fn new() -> Self {
        Self::with_config(SimConfig::default())
    }

    /// Replaces the runaway-event budget after construction. The
    /// budget is the quiescence watchdog's horizon: exceeding it trips
    /// [`SimError::EventLimitExceeded`] with a deadlock diagnosis.
    /// Chaos campaigns whose retransmission backoff legitimately burns
    /// many events per delivered word raise it; unit tests hunting an
    /// oscillation lower it.
    pub fn set_max_events(&mut self, limit: u64) {
        self.config.max_events = limit;
    }

    /// The configured runaway-event budget.
    pub fn max_events(&self) -> u64 {
        self.config.max_events
    }

    /// Creates an empty simulator with the given configuration.
    pub fn with_config(config: SimConfig) -> Self {
        let trace: Option<Box<dyn TraceSink>> =
            if config.trace { Some(Box::new(MemoryTrace::new())) } else { None };
        Simulator {
            kernel: Kernel {
                signals: Vec::new(),
                queue: EventQueue::new(),
                now: Time::ZERO,
                comp_scopes: Vec::new(),
                comp_stamp: Vec::new(),
                scope_energy_fj: vec![0.0],
                trace,
                fault: None,
                sliced: None,
                commits: 0,
            },
            comps: Vec::new(),
            comp_names: Vec::new(),
            scopes: ScopeTree::new(),
            scope_stack: vec![ScopeId::ROOT],
            config,
            events_processed: 0,
            delta_seq: 1,
            pending_evals: Vec::new(),
            watches: Vec::new(),
            net: NetMeta::default(),
            wakes: 0,
            deltas: 0,
            queue_depth_sum: 0,
            queue_samples: 0,
            queue_peak: 0,
            wall: std::time::Duration::ZERO,
            comb_specs: Vec::new(),
            compiled: None,
            capture_rules: Vec::new(),
            lanes_active: 0,
            scalar_fallbacks: 0,
        }
    }

    // ------------------------------------------------------------------
    // Netlist construction
    // ------------------------------------------------------------------

    /// Enters a child scope of the current scope. Signals and
    /// components added until the matching [`Simulator::pop_scope`]
    /// belong to it (hierarchical names, energy attribution).
    pub fn push_scope(&mut self, name: &str) -> ScopeId {
        let id = self.scopes.child(self.current_scope(), name);
        self.scope_stack.push(id);
        self.kernel.scope_energy_fj.push(0.0);
        id
    }

    /// Leaves the current scope.
    ///
    /// # Panics
    ///
    /// Panics on an attempt to pop the root scope.
    pub fn pop_scope(&mut self) {
        assert!(self.scope_stack.len() > 1, "cannot pop the root scope");
        self.scope_stack.pop();
    }

    /// The scope new signals/components are currently added to.
    pub fn current_scope(&self) -> ScopeId {
        *self.scope_stack.last().expect("scope stack never empty")
    }

    /// The dotted path of a scope.
    pub fn scope_path(&self, id: ScopeId) -> ScopePath {
        self.scopes.path(id)
    }

    /// Adds a signal of the given width to the current scope. The
    /// signal starts as all-`X` with no driver attached.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn add_signal(&mut self, name: &str, width: u8) -> SignalId {
        assert!((1..=Value::MAX_WIDTH).contains(&width), "width must be 1..=64");
        let id = SignalId(self.kernel.signals.len() as u32);
        self.kernel
            .signals
            .push(SignalState::new(name.to_string(), width, self.current_scope()));
        id
    }

    /// Adds a component to the current scope. `inputs` lists the
    /// signals whose changes should trigger [`Component::on_input`].
    pub fn add_component<C: Component>(
        &mut self,
        name: &str,
        comp: C,
        inputs: &[SignalId],
    ) -> ComponentId {
        let id = ComponentId(self.comps.len() as u32);
        self.comps.push(Box::new(comp));
        self.comp_names.push(name.to_string());
        self.kernel.comp_scopes.push(self.current_scope());
        self.kernel.comp_stamp.push(0);
        for &sig in inputs {
            let fanout = &mut self.kernel.signals[sig.index()].fanout;
            // Component ids are handed out monotonically and each
            // component registers all its inputs in one call, so a
            // duplicate (the same signal listed twice in `inputs`) can
            // only ever be the last entry — an O(1) check instead of a
            // linear scan, keeping netlist construction O(n).
            if fanout.last() != Some(&id) {
                fanout.push(id);
            }
        }
        id
    }

    /// Registers `comp` as the unique driver of `sig`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MultipleDrivers`] if another component
    /// already drives the signal.
    pub fn connect_driver(&mut self, comp: ComponentId, sig: SignalId) -> SimResult<()> {
        let state = &mut self.kernel.signals[sig.index()];
        if let Some(existing) = state.driver {
            if existing != comp {
                return Err(SimError::MultipleDrivers { signal: sig, existing, attempted: comp });
            }
        }
        state.driver = Some(comp);
        Ok(())
    }

    /// Adds a stimulus source that drives `sig` with each listed value
    /// at the listed absolute time. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the signal already has a driver, if a value width
    /// mismatches, or if times are not sorted.
    pub fn stimulus(&mut self, sig: SignalId, schedule: &[(Time, Value)]) -> ComponentId {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "stimulus schedule must be sorted by time"
        );
        for (_, v) in schedule {
            assert_eq!(
                v.width(),
                self.kernel.signals[sig.index()].width,
                "stimulus width mismatch on '{}'",
                self.kernel.signals[sig.index()].name
            );
        }
        let width = self.kernel.signals[sig.index()].width;
        let comp =
            Stimulus { sig, schedule: schedule.to_vec(), next: 0, cur: Value::all_x(width) };
        // The stimulus listens to its *own* signal: each commit calls
        // it back, and it responds by scheduling the next entry as one
        // delayed drive. Steady state is one event per schedule entry,
        // instead of the wake + zero-delay-drive pair a timer-driven
        // stimulus would cost.
        let id = self.add_component("stimulus", comp, &[sig]);
        self.net.set_class(id, CellClass::Source);
        self.connect_driver(id, sig).expect("stimulus target already driven");
        if !schedule.is_empty() {
            self.kernel.queue.push(schedule[0].0, EventKind::Wake { comp: id });
        }
        id
    }

    /// Adds a monitor invoked with `(time, value)` after every commit
    /// of `sig`. Monitors drive nothing and are ideal for measurements.
    pub fn monitor<F>(&mut self, name: &str, sig: SignalId, callback: F) -> ComponentId
    where
        F: FnMut(Time, Value) + 'static,
    {
        let comp = MonitorComp { sig, callback: Box::new(callback) };
        let id = self.add_component(name, comp, &[sig]);
        self.net.set_class(id, CellClass::Monitor);
        id
    }

    /// Schedules an initial wakeup for a component (used by sources
    /// that need a kick before any input ever changes).
    pub fn schedule_wake(&mut self, comp: ComponentId, at: Time) {
        self.kernel.queue.push(at, EventKind::Wake { comp });
    }

    // ------------------------------------------------------------------
    // Static-netlist annotation (metadata only — see `netgraph`)
    // ------------------------------------------------------------------

    /// Tags a component with its behavioural [`CellClass`]. Pure
    /// metadata for static analysis; simulation is unaffected.
    pub fn set_component_class(&mut self, comp: ComponentId, class: CellClass) {
        self.net.set_class(comp, class);
    }

    /// The annotated class of a component ([`CellClass::Unknown`] if
    /// never tagged).
    pub fn component_class(&self, comp: ComponentId) -> CellClass {
        self.net.class(comp)
    }

    /// Records a component's nominal propagation delay for static
    /// timing. Metadata only — the component applies its own delay
    /// dynamically.
    pub fn set_component_delay(&mut self, comp: ComponentId, delay: Time) {
        self.net.set_delay(comp, delay);
    }

    /// Annotates which of a component's inputs are data pins and
    /// which are trigger pins (clock/enable/set/clear). The static
    /// timing pass traverses state-holding cells through these roles.
    pub fn set_component_pins(&mut self, comp: ComponentId, data: &[SignalId], trigger: &[SignalId]) {
        for &s in data {
            self.net.data_pins.push((comp, s));
        }
        for &s in trigger {
            self.net.trigger_pins.push((comp, s));
        }
    }

    /// Declares that `comp` reads `sig` without being sensitized to
    /// it (e.g. a flip-flop samples `d` at the clock edge but is not
    /// woken by `d` changes). Keeps the connectivity lint aware of
    /// the read without adding the signal to the dynamic fanout.
    pub fn declare_read(&mut self, comp: ComponentId, sig: SignalId) {
        self.net.declared_reads.push((comp, sig));
    }

    /// Exempts a component from the combinational-loop lint (the one
    /// legitimate use is a ring oscillator's loop-closing inverter).
    /// Exempt components are also excluded from compiled execution:
    /// a free-running loop's timing *is* its behaviour, so it stays on
    /// the event queue.
    pub fn set_loop_exempt(&mut self, comp: ComponentId) {
        self.net.set_loop_exempt(comp);
    }

    /// Registers a compiled execution spec for a combinational
    /// component. Inert until [`Simulator::compile`] — a simulator
    /// that never compiles behaves bit-identically to one with no
    /// specs registered.
    pub fn set_comb_spec(&mut self, comp: ComponentId, spec: CombSpec) {
        if self.comb_specs.len() <= comp.index() {
            self.comb_specs.resize_with(comp.index() + 1, || None);
        }
        self.comb_specs[comp.index()] = Some(spec);
    }

    /// The registered compiled spec of a component, if any.
    pub fn comb_spec(&self, comp: ComponentId) -> Option<&CombSpec> {
        self.comb_specs.get(comp.index()).and_then(Option::as_ref)
    }

    /// True once [`Simulator::compile`] has activated compiled
    /// execution.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Switches every eligible combinational component to compiled
    /// execution. Call once, after netlist construction.
    ///
    /// Eligibility: a [`CombSpec`] is registered, the cell class is
    /// transparent (combinational, wiring or routing), and the
    /// component is not [loop-exempt](Simulator::set_loop_exempt).
    /// State cells, matched-delay models, environment components and
    /// ring-oscillator loop closers keep interpreted event-queue
    /// execution — their event timing is the object of study.
    ///
    /// Returns the number of components switched. Calling it on a
    /// netlist with no registered specs activates an empty (no-op)
    /// compiled engine.
    pub fn compile(&mut self) -> usize {
        let ncomp = self.comps.len();
        let mut member = vec![false; ncomp];
        for (i, m) in member.iter_mut().enumerate() {
            let id = ComponentId(i as u32);
            *m = self.comb_specs.get(i).is_some_and(|s| s.is_some())
                && self.net.class(id).is_transparent()
                && !self.net.loop_exempt.get(i).copied().unwrap_or(false);
        }
        let members = member.iter().filter(|&&m| m).count();
        // Count the weakly-connected compiled regions ("cones"): two
        // members share a cone when one's output feeds the other.
        let mut forest = ConeForest::new(ncomp);
        for st in &self.kernel.signals {
            let Some(driver) = st.driver else { continue };
            if !member[driver.index()] {
                continue;
            }
            for &reader in &st.fanout {
                if member[reader.index()] {
                    forest.union(driver.0, reader.0);
                }
            }
        }
        let mut roots: Vec<u32> = (0..ncomp as u32)
            .filter(|&i| member[i as usize])
            .map(|i| forest.find(i))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        // Lower every member's spec into the flat node table and
        // snapshot the committed values into the dense shadow the
        // nodes evaluate over (maintained by the commit paths from
        // here on).
        let values: Vec<Value> = self.kernel.signals.iter().map(|s| s.value).collect();
        let mut compiled = Compiled::new(
            vec![crate::compile::NO_NODE; ncomp],
            Vec::new(),
            Vec::new(),
            values,
            roots.len() as u64,
        );
        for (i, m) in member.iter().enumerate() {
            if *m {
                let spec = self.comb_specs[i].as_ref().expect("member has a spec");
                compiled.add_node(ComponentId(i as u32), spec);
            }
        }
        self.compiled = Some(compiled);
        members
    }

    /// Records bit-sliced campaign statistics for
    /// [`Simulator::profile`] (called by the lane executor).
    pub fn note_lane_stats(&mut self, lanes_active: u64, scalar_fallbacks: u64) {
        self.lanes_active = lanes_active;
        self.scalar_fallbacks = scalar_fallbacks;
    }

    // ------------------------------------------------------------------
    // Bit-sliced campaigns
    // ------------------------------------------------------------------

    /// Registers a state-cell capture rule `q <- d` for the sliced
    /// campaign engine: commits of `q` that pass the captured `d`
    /// through verbatim inherit `d`'s per-lane planes. Called by the
    /// cell builders for latches and flip-flops; inert until
    /// [`Simulator::slice_begin`].
    pub fn set_capture_rule(&mut self, q: SignalId, d: SignalId) {
        self.capture_rules.push((q, d));
    }

    /// Starts a bit-sliced campaign pass carrying `lanes` seeds (1 to
    /// 64) over this simulator. Requires compiled execution
    /// ([`Simulator::compile`]): the lane planes advance through the
    /// compiled nodes' lane-parallel evaluators.
    ///
    /// Schedule per-lane glitches with [`Simulator::slice_glitch`],
    /// record per-lane histories with [`Simulator::slice_tap`], run
    /// the simulation once, then call [`Simulator::slice_seal`]: every
    /// lane *not* in the returned diverged mask has tap histories
    /// bit-identical to a scalar run seeded with that lane's masks;
    /// diverged lanes must be replayed scalar.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulator::compile`] has not run or `lanes` is
    /// outside `1..=64`.
    pub fn slice_begin(&mut self, lanes: u8) {
        let compiled = self.compiled.as_ref().expect("slice_begin requires compile()");
        let nsignals = self.kernel.signals.len();
        // Non-member probe lists: the signals each interpreted cell
        // reacts to (sensitivity fanout) plus its declared
        // non-sensitized reads — the conservative divergence probe
        // for commits the plane algebra cannot follow.
        let mut reads: Vec<Vec<SignalId>> = vec![Vec::new(); self.comps.len()];
        for (i, st) in self.kernel.signals.iter().enumerate() {
            let s = SignalId(i as u32);
            for &comp in &st.fanout {
                if !compiled.is_member(comp) {
                    if let Some(r) = reads.get_mut(comp.index()) {
                        r.push(s);
                    }
                }
            }
        }
        for &(comp, s) in &self.net.declared_reads {
            if !compiled.is_member(comp) {
                if let Some(r) = reads.get_mut(comp.index()) {
                    if !r.contains(&s) {
                        r.push(s);
                    }
                }
            }
        }
        self.kernel.sliced =
            Some(Box::new(Sliced::new(lanes, nsignals, &self.capture_rules, reads)));
        self.lanes_active = u64::from(lanes);
        self.scalar_fallbacks = 0;
    }

    /// Schedules a sliced glitch: at `at`, lane `k` XORs `masks[k]`
    /// into `signal` for `width`. The carrier executes the *union* of
    /// all lanes' masks through the regular fault machinery, so every
    /// lane's disturbance exists in the carrier's event stream; each
    /// lane's planes take only its own mask.
    ///
    /// # Panics
    ///
    /// Panics if no sliced pass is active, `at` is in the past,
    /// `masks` doesn't hold one mask per lane, `width` is zero, or the
    /// site overlaps an earlier one on the same signal.
    pub fn slice_glitch(&mut self, at: Time, signal: SignalId, width: Time, masks: &[u64]) {
        assert!(at >= self.kernel.now, "sliced glitch scheduled in the past");
        let sliced = self.kernel.sliced.as_mut().expect("slice_begin first");
        sliced.add_glitch(at, signal, width, masks);
        let union = masks.iter().fold(0u64, |acc, &m| acc | m);
        // An empty fault state transforms every drive to itself, so
        // installing one here keeps clean-path behaviour bit-identical.
        let fault = self.kernel.fault.get_or_insert_with(|| {
            Box::new(FaultState {
                comp_scale: Vec::new(),
                extra_delay_fs: Vec::new(),
                stuck_from: Vec::new(),
                setup_check: Vec::new(),
                actions: Vec::new(),
            })
        });
        let action = fault.actions.len() as u32;
        fault.actions.push(FaultAction::Glitch { signal, mask: union, width });
        self.kernel.queue.push(at, EventKind::Fault { action });
    }

    /// Registers a per-lane tap on `signal`: every subsequent carrier
    /// commit appends `(time, planes)` to the history returned by
    /// [`Simulator::slice_tap_history`], seeded with the planes at
    /// registration time.
    ///
    /// # Panics
    ///
    /// Panics if no sliced pass is active.
    pub fn slice_tap(&mut self, signal: SignalId) {
        let now = self.kernel.now;
        let cur = self.kernel.signals[signal.index()].value;
        self.kernel.sliced.as_mut().expect("slice_begin first").add_tap(signal, now, &cur);
    }

    /// The per-lane commit history of a tapped signal. `None` if no
    /// sliced pass is active or the signal was never tapped.
    pub fn slice_tap_history(&self, signal: SignalId) -> Option<&[(Time, LaneValues)]> {
        self.kernel.sliced.as_ref()?.tap_history(signal)
    }

    /// Lanes the active sliced pass has demoted so far (bit `k` set =
    /// lane `k` diverged), without the final missed-force sweep.
    pub fn slice_diverged(&self) -> u64 {
        self.kernel.sliced.as_ref().map_or(0, |s| s.diverged)
    }

    /// Ends the sliced pass's accounting: processes every remaining
    /// expected injection as missed and returns the final
    /// diverged-lane mask. Lanes not in the mask have tap histories
    /// bit-identical to scalar runs with their masks; lanes in it must
    /// be replayed scalar. The pass stays attached and queryable.
    pub fn slice_seal(&mut self) -> u64 {
        let (signals, sliced) = (&self.kernel.signals, &mut self.kernel.sliced);
        let Some(sl) = sliced else { return 0 };
        let mask = sl.seal(|s| signals[s.index()].value);
        self.scalar_fallbacks = u64::from(mask.count_ones());
        mask
    }

    /// Marks a signal as a block port: it is legitimately undriven
    /// until a stimulus or an enclosing netlist drives it.
    pub fn mark_port(&mut self, sig: SignalId) {
        self.net.ports.push(sig);
    }

    /// Marks a signal as legitimately multiply-driven (an arbitrated
    /// or wired-OR node). Without this tag the connectivity lint
    /// reports declared extra drivers as errors.
    pub fn mark_arbited(&mut self, sig: SignalId) {
        self.net.arbited.push(sig);
    }

    /// Records `comp` as an *additional* driver of `sig` in the
    /// static graph. The kernel's single-driver invariant is not
    /// relaxed — this is metadata for modelling shared nodes, and the
    /// connectivity lint flags it unless the signal is
    /// [arbited](Simulator::mark_arbited).
    pub fn connect_extra_driver(&mut self, comp: ComponentId, sig: SignalId) {
        self.net.extra_drivers.push((sig, comp));
    }

    /// Registers a bundled-data launch point: transitions of `origin`
    /// launch both a data value and the strobe that captures it
    /// downstream. `data_lead` is the head start the data event has
    /// over the strobe event at the origin (zero when both are the
    /// same transition).
    pub fn register_bundle(&mut self, label: &str, origin: SignalId, data_lead: Time) {
        self.net.bundles.push(NetBundle {
            label: label.to_string(),
            origin,
            data_lead,
            params: None,
        });
    }

    /// Registers a bundled-data launch point annotated with the
    /// generator parameters it was built under (word width and
    /// serialization ratio), so lint output and timing fixtures can
    /// name the design point. Identical to
    /// [`register_bundle`](Simulator::register_bundle) for the timing
    /// pass itself — the annotation is metadata only.
    pub fn register_bundle_with(
        &mut self,
        label: &str,
        origin: SignalId,
        data_lead: Time,
        params: BundleParams,
    ) {
        self.net.bundles.push(NetBundle {
            label: label.to_string(),
            origin,
            data_lead,
            params: Some(params),
        });
    }

    /// Registers a bundled-data capture point: `trigger` closes a
    /// storage element over `data`, so along every matched launch
    /// path the data must arrive before the trigger.
    pub fn register_capture(&mut self, data: SignalId, trigger: SignalId) {
        self.net.captures.push(NetCapture { data, trigger });
    }

    /// Snapshots the netlist's static structure — drivers, readers,
    /// widths, scopes, cell classes and every registered annotation —
    /// into an immutable [`NetGraph`] for the lint passes.
    pub fn netgraph(&self) -> NetGraph {
        let nsig = self.kernel.signals.len();
        let ncomp = self.comps.len();
        let mut signals: Vec<NetSignal> = (0..nsig)
            .map(|i| {
                let st = &self.kernel.signals[i];
                let info = self.signal_info(SignalId(i as u32));
                NetSignal {
                    id: SignalId(i as u32),
                    name: st.name.clone(),
                    path: info.path,
                    width: st.width,
                    drivers: st.driver.into_iter().collect(),
                    readers: st.fanout.clone(),
                    is_port: false,
                    is_arbited: false,
                }
            })
            .collect();
        for &(sig, comp) in &self.net.extra_drivers {
            signals[sig.index()].drivers.push(comp);
        }
        for &sig in &self.net.ports {
            signals[sig.index()].is_port = true;
        }
        for &sig in &self.net.arbited {
            signals[sig.index()].is_arbited = true;
        }
        let mut components: Vec<NetComponent> = (0..ncomp)
            .map(|i| {
                let id = ComponentId(i as u32);
                NetComponent {
                    id,
                    name: self.comp_names[i].clone(),
                    scope_path: self.scope_path_str(self.kernel.comp_scopes[i]).to_string(),
                    class: self.net.class(id),
                    delay: self.net.delays.get(i).copied().flatten(),
                    inputs: Vec::new(),
                    reads: Vec::new(),
                    outputs: Vec::new(),
                    data_pins: Vec::new(),
                    trigger_pins: Vec::new(),
                    loop_exempt: self.net.loop_exempt.get(i).copied().unwrap_or(false),
                }
            })
            .collect();
        // Invert the per-signal fanout/driver tables into per-component
        // input/output lists (signal order, deterministic).
        for (i, st) in self.kernel.signals.iter().enumerate() {
            let sig = SignalId(i as u32);
            for &comp in &st.fanout {
                components[comp.index()].inputs.push(sig);
            }
            if let Some(driver) = st.driver {
                components[driver.index()].outputs.push(sig);
            }
        }
        for &(sig, comp) in &self.net.extra_drivers {
            components[comp.index()].outputs.push(sig);
        }
        for &(comp, sig) in &self.net.declared_reads {
            components[comp.index()].reads.push(sig);
            if !signals[sig.index()].readers.contains(&comp) {
                signals[sig.index()].readers.push(comp);
            }
        }
        for &(comp, sig) in &self.net.data_pins {
            components[comp.index()].data_pins.push(sig);
        }
        for &(comp, sig) in &self.net.trigger_pins {
            components[comp.index()].trigger_pins.push(sig);
        }
        NetGraph {
            signals,
            components,
            bundles: self.net.bundles.clone(),
            captures: self.net.captures.clone(),
            watches: self
                .watches
                .iter()
                .map(|w| NetWatch { label: w.label.clone(), req: w.req, ack: w.ack, nack: w.nack })
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The committed value of a signal.
    pub fn value(&self, sig: SignalId) -> Value {
        self.kernel.signals[sig.index()].value
    }

    /// Total committed bit toggles of a signal.
    pub fn toggles(&self, sig: SignalId) -> u64 {
        self.kernel.signals[sig.index()].toggles
    }

    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.kernel.now
    }

    /// Number of signals in the netlist.
    pub fn signal_count(&self) -> usize {
        self.kernel.signals.len()
    }

    /// Number of components in the netlist.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The width of a signal in bits, without the name/path assembly
    /// of [`Simulator::signal_info`] — netlist builders call this for
    /// every port of every cell.
    #[inline]
    pub fn signal_width(&self, sig: SignalId) -> u8 {
        self.kernel.signals[sig.index()].width
    }

    /// The dotted path of a scope as a borrowed string (the allocating
    /// variant is [`Simulator::scope_path`]).
    pub fn scope_path_str(&self, id: ScopeId) -> &str {
        self.scopes.path_str(id)
    }

    /// Per-scope accumulated energy in femtojoules, indexed by scope
    /// id. A cheap snapshot for differential power measurements; use
    /// [`Simulator::energy_report`] for the path-labelled view.
    pub fn scope_energies_fj(&self) -> Vec<f64> {
        let mut out = self.kernel.scope_energy_fj.clone();
        for st in &self.kernel.signals {
            let unfolded = st.toggles - st.toggles_energy_base;
            if unfolded != 0 {
                out[st.scope.0 as usize] += unfolded as f64 * st.energy_per_toggle_fj;
            }
        }
        out
    }

    /// Converts the switching energy `sig` has accrued since its last
    /// fold into scope energy and rebases the counter. Must run before
    /// anything changes the signal's per-toggle energy or resets its
    /// toggle counter, so already-earned energy keeps the rate it was
    /// earned at.
    fn fold_signal_energy(&mut self, sig: SignalId) {
        let st = &mut self.kernel.signals[sig.index()];
        let unfolded = st.toggles - st.toggles_energy_base;
        if unfolded != 0 {
            self.kernel.scope_energy_fj[st.scope.0 as usize] +=
                unfolded as f64 * st.energy_per_toggle_fj;
        }
        st.toggles_energy_base = st.toggles;
    }

    /// Full metadata and statistics for a signal.
    pub fn signal_info(&self, sig: SignalId) -> SignalInfo {
        let s = &self.kernel.signals[sig.index()];
        let scope_path = self.scopes.path(s.scope);
        let path = if scope_path.as_str().is_empty() {
            s.name.clone()
        } else {
            format!("{}.{}", scope_path, s.name)
        };
        SignalInfo {
            name: s.name.clone(),
            path,
            width: s.width,
            value: s.value,
            toggles: s.toggles,
            last_change: s.last_change,
            energy_per_toggle_fj: s.energy_per_toggle_fj,
        }
    }

    /// Looks a signal up by its full hierarchical path.
    pub fn signal_by_path(&self, path: &str) -> Option<SignalId> {
        (0..self.kernel.signals.len())
            .map(|i| SignalId(i as u32))
            .find(|&id| self.signal_info(id).path == path)
    }

    /// Iterates over all signal ids.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.kernel.signals.len() as u32).map(SignalId)
    }

    /// Sets the energy charged per bit toggle of `sig`, in femtojoules.
    /// Called by the technology annotator after netlist construction.
    pub fn set_signal_energy(&mut self, sig: SignalId, fj_per_toggle: f64) {
        self.fold_signal_energy(sig);
        self.kernel.signals[sig.index()].energy_per_toggle_fj = fj_per_toggle;
    }

    /// Adds to the energy charged per bit toggle of `sig` (e.g. extra
    /// wire load discovered after the driving cell was created).
    pub fn add_signal_energy(&mut self, sig: SignalId, fj_per_toggle: f64) {
        self.fold_signal_energy(sig);
        self.kernel.signals[sig.index()].energy_per_toggle_fj += fj_per_toggle;
    }

    /// Activity statistics for every signal.
    pub fn activity_report(&self) -> ActivityReport {
        ActivityReport {
            signals: self
                .signal_ids()
                .map(|id| {
                    let info = self.signal_info(id);
                    (info.path, info.toggles)
                })
                .collect(),
            sim_time: self.kernel.now,
        }
    }

    /// Switching + internal energy accumulated per scope since the last
    /// [`Simulator::reset_energy`], rolled up into an [`EnergyReport`].
    pub fn energy_report(&self) -> EnergyReport {
        let energies = self.scope_energies_fj();
        let per_scope: Vec<ScopeEnergy> = energies
            .into_iter()
            .enumerate()
            .map(|(i, energy_fj)| ScopeEnergy {
                path: self.scopes.path(ScopeId(i as u32)).as_str().to_string(),
                energy_fj,
            })
            .collect();
        EnergyReport { scopes: per_scope, sim_time: self.kernel.now }
    }

    /// Energy (femtojoules) of a scope subtree selected by path prefix.
    pub fn subtree_energy_fj(&self, prefix: &str) -> f64 {
        let energies = self.scope_energies_fj();
        self.scopes.subtree(prefix).into_iter().map(|s| energies[s.0 as usize]).sum()
    }

    /// Clears all accumulated energy (e.g. after a warm-up phase, so a
    /// measurement window starts from zero).
    pub fn reset_energy(&mut self) {
        for e in &mut self.kernel.scope_energy_fj {
            *e = 0.0;
        }
        for s in &mut self.kernel.signals {
            s.toggles_energy_base = s.toggles;
        }
    }

    /// Clears all per-signal toggle counters (energy already earned by
    /// those toggles is preserved).
    pub fn reset_toggles(&mut self) {
        for id in 0..self.kernel.signals.len() as u32 {
            self.fold_signal_energy(SignalId(id));
        }
        for s in &mut self.kernel.signals {
            s.toggles = 0;
            s.toggles_energy_base = 0;
        }
    }

    /// Installs a transition-trace sink: every committed signal change
    /// from now on is reported to it as a
    /// [`TraceRecord`](crate::trace::TraceRecord). The sink's
    /// [`install`](TraceSink::install) hook receives the current
    /// signal table, so call this *after* netlist construction.
    /// Replaces any previously installed sink.
    pub fn set_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        sink.install(&self.trace_signal_metas());
        self.kernel.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, restoring the
    /// zero-overhead untraced commit path.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.kernel.trace.take()
    }

    /// The installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.kernel.trace.as_deref()
    }

    /// The signal table as trace metadata, indexed by
    /// [`SignalId::index`]: full path, width and per-toggle switching
    /// energy of every signal.
    pub fn trace_signal_metas(&self) -> Vec<TraceSignalMeta> {
        (0..self.kernel.signals.len() as u32)
            .map(|i| {
                let s = &self.kernel.signals[i as usize];
                let scope_path = self.scopes.path(s.scope);
                let path = if scope_path.as_str().is_empty() {
                    s.name.clone()
                } else {
                    format!("{}.{}", scope_path, s.name)
                };
                TraceSignalMeta {
                    path,
                    width: s.width,
                    energy_per_toggle_fj: s.energy_per_toggle_fj,
                }
            })
            .collect()
    }

    /// Kernel profiling counters: events/commits/wakes processed,
    /// event-queue occupancy, and wall-clock time spent simulating.
    /// Counter updates are plain integer increments on already-touched
    /// cache lines, so the hot path stays branch-predictable.
    pub fn profile(&self) -> SimProfile {
        SimProfile {
            events: self.events_processed,
            commits: self.kernel.commits,
            wakes: self.wakes,
            deltas: self.deltas,
            queue_peak: self.queue_peak,
            queue_mean: if self.queue_samples == 0 {
                0.0
            } else {
                self.queue_depth_sum as f64 / self.queue_samples as f64
            },
            wall: self.wall,
            sim_time: self.kernel.now,
            cones_built: self.compiled.as_ref().map_or(0, |c| c.cones_built),
            cone_evals: self.compiled.as_ref().map_or(0, |c| c.cone_evals),
            events_avoided: self.compiled.as_ref().map_or(0, |c| c.events_avoided),
            lanes_active: self.lanes_active,
            scalar_fallbacks: self.scalar_fallbacks,
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & deadlock watchdog
    // ------------------------------------------------------------------

    /// Resolves a [`FaultPlan`] against this netlist and installs it.
    /// Call once, after construction and before running. An empty plan
    /// installs nothing — the run stays bit-identical to a plan-free
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFaultTarget`] if a stuck-at or
    /// glitch names a signal path that does not exist.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> SimResult<()> {
        if plan.is_empty() {
            return Ok(());
        }
        let nsig = self.kernel.signals.len();
        let ncomp = self.comps.len();
        let mut comp_scale = vec![1.0f64; ncomp];
        if plan.delay_scale != 1.0 || plan.delay_sigma > 0.0 {
            for (c, scale) in comp_scale.iter_mut().enumerate() {
                let path = self.scopes.path_str(self.kernel.comp_scopes[c]);
                if plan.scope_matches(path) {
                    *scale = plan.sample_scale(c);
                }
            }
        }
        let mut extra_delay_fs = vec![0u64; nsig];
        if !plan.skews.is_empty() {
            for (i, extra) in extra_delay_fs.iter_mut().enumerate() {
                let path = self.signal_info(SignalId(i as u32)).path;
                for rule in &plan.skews {
                    if path.contains(rule.substring.as_str()) {
                        *extra += rule.extra.as_fs();
                    }
                }
            }
        }
        let mut setup_check = vec![false; ncomp];
        if plan.setup_check {
            for (c, flag) in setup_check.iter_mut().enumerate() {
                let path = self.scopes.path_str(self.kernel.comp_scopes[c]);
                *flag = plan.scope_matches(path);
            }
        }
        let mut stuck_from = vec![Time::MAX; nsig];
        let mut actions = Vec::new();
        for s in &plan.stuck {
            let sig = self
                .signal_by_path(&s.path)
                .ok_or_else(|| SimError::UnknownFaultTarget { path: s.path.clone() })?;
            stuck_from[sig.index()] = s.from;
            let width = self.kernel.signals[sig.index()].width;
            let value = if s.value { Value::ones(width) } else { Value::zero(width) };
            let idx = actions.len() as u32;
            actions.push(FaultAction::Force { signal: sig, value });
            self.kernel.queue.push(s.from, EventKind::Fault { action: idx });
        }
        for g in &plan.glitches {
            let sig = self
                .signal_by_path(&g.path)
                .ok_or_else(|| SimError::UnknownFaultTarget { path: g.path.clone() })?;
            let width = self.kernel.signals[sig.index()].width;
            let lane_mask = Value::width_mask(width);
            let idx = actions.len() as u32;
            actions.push(FaultAction::Glitch {
                signal: sig,
                mask: g.mask & lane_mask,
                width: g.width,
            });
            self.kernel.queue.push(g.at, EventKind::Fault { action: idx });
        }
        self.kernel.fault = Some(Box::new(FaultState {
            comp_scale,
            extra_delay_fs,
            stuck_from,
            setup_check,
            actions,
        }));
        Ok(())
    }

    /// Registers a req/ack (or VALID/ack) pair for deadlock diagnosis.
    /// A four-phase handshake at rest has both wires at the same
    /// level; [`Simulator::deadlock_report`] flags registered pairs
    /// whose levels disagree.
    pub fn watch_handshake(&mut self, label: &str, req: SignalId, ack: SignalId) {
        self.watches.push(HandshakeWatch { label: label.to_string(), req, ack, nack: None });
    }

    /// Registers a req/ack pair whose request can also be answered by
    /// a negative acknowledge (`nack`), as in a protected link where a
    /// failed integrity check demands a retransmission instead of the
    /// word acknowledge. The triple is carried into the
    /// [`crate::NetGraph`] snapshot so static analysis can check that
    /// the NACK wire genuinely answers the request.
    pub fn watch_handshake_nack(
        &mut self,
        label: &str,
        req: SignalId,
        ack: SignalId,
        nack: SignalId,
    ) {
        self.watches.push(HandshakeWatch { label: label.to_string(), req, ack, nack: Some(nack) });
    }

    /// Number of handshake pairs registered for diagnosis.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// The registered handshake pairs as `(label, req, ack)`, in
    /// registration order. Lets trace consumers compute per-handshake
    /// latency statistics without re-deriving the pairing.
    pub fn handshake_watches(&self) -> impl Iterator<Item = (&str, SignalId, SignalId)> + '_ {
        self.watches.iter().map(|w| (w.label.as_str(), w.req, w.ack))
    }

    /// Inspects every registered handshake and reports the stalled
    /// ones — pairs whose req and ack levels disagree, meaning one
    /// side is waiting for a transition that never arrived. Returns
    /// `None` when nothing is stalled (or nothing was registered).
    ///
    /// Call when a run goes quiet with work outstanding: after a
    /// drained queue, an expired wall budget, or an event-limit trip
    /// (the kernel attaches this report to
    /// [`SimError::EventLimitExceeded`] automatically).
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        let mut stalled = Vec::new();
        for w in &self.watches {
            let req = &self.kernel.signals[w.req.index()];
            let ack = &self.kernel.signals[w.ack.index()];
            if req.value.as_logic() == ack.value.as_logic() {
                continue;
            }
            // The waiting parties are whoever listens on either wire.
            let mut waiting: Vec<String> = Vec::new();
            for &comp in req.fanout.iter().chain(ack.fanout.iter()) {
                let name = &self.comp_names[comp.index()];
                if !waiting.iter().any(|n| n == name) {
                    waiting.push(name.clone());
                }
            }
            stalled.push(StalledHandshake {
                label: w.label.clone(),
                req_path: self.signal_info(w.req).path,
                ack_path: self.signal_info(w.ack).path,
                req_value: req.value,
                ack_value: ack.value,
                req_last_change: req.last_change,
                ack_last_change: ack.last_change,
                waiting,
            });
        }
        if stalled.is_empty() {
            None
        } else {
            Some(DeadlockReport { at: self.kernel.now, stalled })
        }
    }

    /// Force-commits `value` onto a signal outside the normal driver
    /// path: bumps the drive epoch (cancelling any in-flight inertial
    /// drive), updates toggles/trace exactly like a committed drive,
    /// and queues the fanout for evaluation.
    fn force_signal(&mut self, signal: SignalId, value: Value) {
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        let was_pending = st.pending;
        st.drive_epoch += 1;
        st.pending = false;
        if st.value == value {
            // No commit, so no sliced hook fires: a missed injection
            // is caught by the sliced pass's expected-force sweep.
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = kernel.now;
        kernel.commits += 1;
        if let Some(c) = &mut self.compiled {
            c.values[signal.index()] = value;
        }
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time: kernel.now, signal, old, new: value });
        }
        if kernel.sliced.is_some() {
            let now = kernel.now;
            kernel.slice_commit(now, signal, &old, &value, Some(was_pending));
        }
        let st = &self.kernel.signals[signal.index()];
        self.pending_evals.extend_from_slice(&st.fanout);
    }

    /// Executes one scheduled fault action (the `Fault` event arm).
    fn run_fault_action(&mut self, idx: u32) {
        let Some(fault) = self.kernel.fault.as_ref() else {
            return;
        };
        match fault.actions[idx as usize].clone() {
            FaultAction::Force { signal, value } => self.force_signal(signal, value),
            FaultAction::Glitch { signal, mask, width } => {
                let st = &self.kernel.signals[signal.index()];
                let old = st.value;
                let flipped = old.xor(&Value::from_u64(st.width, mask));
                // Schedule the restore before flipping, so a glitch of
                // width zero still resolves in deterministic order.
                let fault = self.kernel.fault.as_mut().expect("checked above");
                let restore = fault.actions.len() as u32;
                fault.actions.push(FaultAction::Force { signal, value: old });
                let t = self.kernel.now + width;
                self.kernel.queue.push(t, EventKind::Fault { action: restore });
                self.force_signal(signal, flipped);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs until the event queue is exhausted or simulated time would
    /// pass `horizon`. Events *at* the horizon are processed. Returns
    /// the final simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the configured event
    /// budget is exhausted (runaway oscillation).
    pub fn run_until(&mut self, horizon: Time) -> SimResult<Time> {
        let wall_start = std::time::Instant::now();
        let mut processed: u64 = 0;
        loop {
            // Merge the compiled engine's calendar with the global
            // queue, *calendar first at drive ties*: a compiled drive
            // committing at the same femtosecond as a queued drive
            // must share the latter's delta batch, so both land before
            // any fanout evaluates — matching the interpreted kernel
            // where they would have shared one delta (the
            // data-beats-trigger side of bundled data). A *non-drive*
            // tie (wake or fault, scheduled long ago with an earlier
            // seq) instead yields to the queue: the interpreted loop
            // runs it as its own delta before the drive batch, and the
            // calendar must not commit past it.
            let take_calendar = match self.compiled.as_ref().and_then(Compiled::peek_time) {
                Some(ct) if ct <= horizon => match self.kernel.queue.peek_time() {
                    None => true,
                    Some(qt) => ct < qt || (ct == qt && self.kernel.queue.due_is_drive(qt)),
                },
                _ => false,
            };
            if take_calendar {
                // The batch does its own per-delta accounting
                // (deltas, queue sampling); only the event budget is
                // settled out here.
                let cap = self.config.max_events.saturating_sub(processed).saturating_add(1);
                processed += self.step_calendar_batch(horizon, cap);
                if processed > self.config.max_events {
                    self.events_processed += processed;
                    self.wall += wall_start.elapsed();
                    return Err(SimError::EventLimitExceeded {
                        at: self.kernel.now,
                        limit: self.config.max_events,
                        diagnosis: self.deadlock_report().map(Box::new),
                    });
                }
                continue;
            }
            let consumed = if let Some(ev) = self.kernel.queue.pop_at_or_before(horizon) {
                self.step_delta(ev)
            } else {
                break;
            };
            // Profiling: sample queue occupancy once every 64 deltas.
            // Singleton-delta workloads (free-running oscillators) pop
            // millions of one-event deltas, so the steady-state loop
            // must pay a single increment-and-mask here, not a queue
            // walk; the subsampled mean/peak stay representative.
            self.deltas += 1;
            if self.deltas & 0x3F == 0 {
                let depth = self.kernel.queue.len();
                self.queue_samples += 1;
                self.queue_depth_sum += depth as u64;
                if depth > self.queue_peak {
                    self.queue_peak = depth;
                }
            }
            processed += consumed;
            if processed > self.config.max_events {
                self.events_processed += processed;
                self.wall += wall_start.elapsed();
                return Err(SimError::EventLimitExceeded {
                    at: self.kernel.now,
                    limit: self.config.max_events,
                    diagnosis: self.deadlock_report().map(Box::new),
                });
            }
        }
        self.events_processed += processed;
        self.wall += wall_start.elapsed();
        // Advance to the horizon even if the queue went quiet earlier.
        if self.kernel.now < horizon {
            self.kernel.now = horizon;
        }
        Ok(self.kernel.now)
    }

    /// Runs for `span` beyond the current time.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_for(&mut self, span: Time) -> SimResult<Time> {
        let horizon = self.kernel.now + span;
        self.run_until(horizon)
    }

    /// Runs until no events remain (only sensible for circuits without
    /// free-running sources such as clocks or ring oscillators).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_to_quiescence(&mut self) -> SimResult<Time> {
        self.run_until(Time::MAX)
    }

    /// Processes one delta: a single wake, or a maximal run of
    /// consecutive same-timestamp drive commits followed by exactly
    /// one evaluation of every component in their combined fanout.
    /// Returns the number of events consumed.
    ///
    /// Batching the commits first and deduplicating the evaluations
    /// matches HDL delta-cycle semantics — a process fed by several
    /// signals that change in the same delta runs once, seeing all of
    /// them at their new values — and removes both the per-commit
    /// fanout clone and the redundant re-evaluations from the hot
    /// loop. The scratch buffer and stamps make the steady state
    /// allocation-free.
    fn step_delta(&mut self, ev: crate::event::Event) -> u64 {
        self.kernel.now = ev.time;
        let mut consumed = 1;
        match ev.kind {
            EventKind::Wake { comp } => {
                self.wakes += 1;
                self.eval(comp, true);
            }
            EventKind::Fault { action } => {
                debug_assert!(self.pending_evals.is_empty());
                self.run_fault_action(action);
                let mut i = 0;
                while i < self.pending_evals.len() {
                    let comp = self.pending_evals[i];
                    i += 1;
                    self.eval(comp, false);
                }
                self.pending_evals.clear();
            }
            EventKind::Drive { .. } => {
                debug_assert!(self.pending_evals.is_empty());
                // Probe for a same-time burst *before* committing —
                // commits never touch the queue, so holding the second
                // event is safe. Knowing the delta is a singleton (the
                // overwhelming majority of gate-level activity) lets
                // the fanout walk skip the dedup stamps: a component
                // appears at most once in a single signal's fanout.
                match self.kernel.queue.pop_drive_at(self.kernel.now) {
                    None => self.commit_drive_lone(ev),
                    Some(second) => {
                        consumed += 1;
                        let delta = self.delta_seq;
                        self.delta_seq += 1;
                        self.commit_drive(ev, delta);
                        let mut next = Some(second);
                        while let Some(cur) = next {
                            self.commit_drive(cur, delta);
                            next = self.kernel.queue.pop_drive_at(self.kernel.now);
                            if next.is_some() {
                                consumed += 1;
                            }
                        }
                    }
                }
                // Index loop rather than iterator: `eval` needs `&mut
                // self`, and nothing reachable from a component can
                // touch `pending_evals` (components only see the
                // kernel through their `Ctx`), so the list is stable
                // during the drain.
                let mut i = 0;
                while i < self.pending_evals.len() {
                    let comp = self.pending_evals[i];
                    i += 1;
                    self.eval(comp, false);
                }
                self.pending_evals.clear();
            }
        }
        consumed
    }

    /// Processes a maximal run of compiled-calendar deltas: at each
    /// delta, commits every calendar entry due at the earliest
    /// calendar timestamp, then evaluates each component in the
    /// combined fanout once. The commit path is the same core as
    /// queued drives ([`Simulator::commit_signal`]) — epoch-validated,
    /// inertial, toggle- and trace-accounted — only the scheduling
    /// container differs. Returns the number of calendar entries
    /// consumed (they count against the event budget exactly like
    /// queued events: every push is matched by one pop in both
    /// engines, so the `events` profile counter stays comparable
    /// across modes).
    ///
    /// The batch keeps going while the next calendar timestamp stays
    /// at or ahead of the global queue's — the same calendar-first
    /// merge rule as [`Simulator::run_until`], hoisted into a tight
    /// loop. Compiled evaluations only ever touch the calendar, so
    /// the queue bound is a loop invariant that needs refreshing only
    /// after a *dynamic* evaluation (a state cell, monitor or
    /// environment model in a compiled signal's fanout), the one step
    /// that can push global events. Stops once `cap` entries have
    /// been consumed so a runaway netlist still trips the caller's
    /// event budget.
    fn step_calendar_batch(&mut self, horizon: Time, cap: u64) -> u64 {
        let mut consumed: u64 = 0;
        let mut queue_bound = self.kernel.queue.peek_time();
        let mut queue_len = self.kernel.queue.len();
        while consumed < cap {
            let Some(t) = self.compiled.as_ref().and_then(Compiled::peek_time) else {
                break;
            };
            if t > horizon || queue_bound.is_some_and(|qt| t > qt) {
                break;
            }
            // Same tie-break as `run_until`: a queued non-drive due at
            // `t` precedes the calendar's commits (its seq is older),
            // so the batch hands control back for that delta.
            if queue_bound == Some(t) && !self.kernel.queue.due_is_drive(t) {
                break;
            }
            self.kernel.now = t;
            debug_assert!(self.pending_evals.is_empty());
            let entry = self
                .compiled
                .as_mut()
                .expect("peeked above")
                .pop_at(t)
                .expect("front entry is at t");
            consumed += 1;
            // A queued drive due at this same femtosecond (a dynamic
            // cell's in-flight commit) must join this delta: in the
            // interpreted kernel it would have shared one batch with
            // the calendar commits and landed before any fanout ran.
            // Leaving it buried would let the fanout evaluation below
            // re-drive the cell against the stale value, inertially
            // cancelling a commit that was already due *now*.
            let queued_drive = self.kernel.queue.pop_leading_drive_at(t);
            if queued_drive.is_some()
                || self.compiled.as_ref().expect("active").peek_time() == Some(t)
            {
                // Several commits share this timestamp: batch them
                // under one delta with stamp-deduplicated fanout.
                let delta = self.delta_seq;
                self.delta_seq += 1;
                self.commit_signal(t, entry.signal, entry.epoch, delta);
                while let Some(e) =
                    self.compiled.as_mut().expect("active").pop_at(t)
                {
                    consumed += 1;
                    self.commit_signal(t, e.signal, e.epoch, delta);
                }
                let mut qd = queued_drive;
                while let Some(ev) = qd {
                    consumed += 1;
                    self.commit_drive(ev, delta);
                    qd = self.kernel.queue.pop_leading_drive_at(t);
                }
                let mut i = 0;
                while i < self.pending_evals.len() {
                    let comp = self.pending_evals[i];
                    i += 1;
                    self.eval(comp, false);
                }
                self.pending_evals.clear();
            } else {
                // Singleton delta — the overwhelming majority — skips
                // the dedup stamps like `commit_drive_lone`.
                self.commit_calendar_lone(t, entry);
            }
            // Per-delta profiling, same cadence as the queue path.
            self.deltas += 1;
            if self.deltas & 0x3F == 0 {
                let depth = self.kernel.queue.len();
                self.queue_samples += 1;
                self.queue_depth_sum += depth as u64;
                if depth > self.queue_peak {
                    self.queue_peak = depth;
                }
            }
            // Compiled evaluations only touch the calendar; the queue
            // bound can only move when a dynamic evaluation pushed a
            // global event, which is visible as a queue growth.
            let len_now = self.kernel.queue.len();
            if len_now != queue_len {
                queue_len = len_now;
                queue_bound = self.kernel.queue.peek_time();
            }
        }
        consumed
    }

    /// [`Simulator::step_calendar_batch`]'s singleton-delta commit:
    /// the calendar analogue of [`Simulator::commit_drive_lone`] —
    /// with a single committed signal the dedup stamps cannot reject
    /// anything, so the fanout is evaluated directly.
    fn commit_calendar_lone(&mut self, time: Time, entry: crate::compile::CalEntry) {
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[entry.signal.index()];
        if entry.epoch != st.drive_epoch {
            return; // superseded (inertial cancellation)
        }
        st.pending = false;
        let value = st.pending_value;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = time;
        kernel.commits += 1;
        if let Some(c) = &mut self.compiled {
            c.values[entry.signal.index()] = value;
        }
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time, signal: entry.signal, old, new: value });
        }
        // The sliced hook must run before fanout evaluation: the
        // lane-parallel evaluators read this commit's planes.
        if let &[comp] = st.fanout.as_slice() {
            if self.kernel.sliced.is_some() {
                self.kernel.slice_commit(time, entry.signal, &old, &value, None);
            }
            self.eval(comp, false);
        } else {
            debug_assert!(self.pending_evals.is_empty());
            self.pending_evals.extend_from_slice(&st.fanout);
            if self.kernel.sliced.is_some() {
                self.kernel.slice_commit(time, entry.signal, &old, &value, None);
            }
            let mut i = 0;
            while i < self.pending_evals.len() {
                let comp = self.pending_evals[i];
                i += 1;
                self.eval(comp, false);
            }
            self.pending_evals.clear();
        }
    }

    /// Applies one drive event: commits the value change (toggles,
    /// energy, trace) and queues the signal's fanout for evaluation,
    /// skipping components already queued in this delta.
    fn commit_drive(&mut self, ev: crate::event::Event, delta: u64) {
        let EventKind::Drive { signal, epoch } = ev.kind else {
            unreachable!("commit_drive on non-drive event");
        };
        self.commit_signal(ev.time, signal, epoch, delta);
    }

    /// The shared commit core behind queued drives and compiled
    /// calendar entries: epoch-validate, commit the pending value,
    /// account toggles and trace, stamp-dedup the fanout into the
    /// pending-evaluation list.
    fn commit_signal(&mut self, time: Time, signal: SignalId, epoch: u64, delta: u64) {
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        if epoch != st.drive_epoch {
            return; // superseded (inertial cancellation)
        }
        st.pending = false;
        // The event matched the signal's current drive epoch, so the
        // value it was scheduled with is exactly `pending_value`.
        let value = st.pending_value;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = time;
        kernel.commits += 1;
        if let Some(c) = &mut self.compiled {
            c.values[signal.index()] = value;
        }
        // Switching energy is *not* accumulated here: it is derived
        // lazily from the toggle counter (see `scope_energies_fj`),
        // keeping f64 traffic off the commit hot path.
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time, signal, old, new: value });
        }
        for &comp in &st.fanout {
            let stamp = &mut kernel.comp_stamp[comp.index()];
            if *stamp != delta {
                *stamp = delta;
                self.pending_evals.push(comp);
            }
        }
        // Fanout evaluation happens after every commit of this delta,
        // so the planes are in place before any evaluator reads them.
        if self.kernel.sliced.is_some() {
            self.kernel.slice_commit(time, signal, &old, &value, None);
        }
    }

    /// [`Simulator::commit_drive`] specialised for a singleton delta
    /// (no other commit at this timestamp): with a single committed
    /// signal the dedup stamps cannot reject anything — a component
    /// appears at most once in one signal's fanout — so the fanout is
    /// either evaluated directly (the ubiquitous single-listener wire)
    /// or bulk-copied into the scratch list.
    fn commit_drive_lone(&mut self, ev: crate::event::Event) {
        let EventKind::Drive { signal, epoch } = ev.kind else {
            unreachable!("commit_drive on non-drive event");
        };
        let kernel = &mut self.kernel;
        let st = &mut kernel.signals[signal.index()];
        if epoch != st.drive_epoch {
            return; // superseded (inertial cancellation)
        }
        st.pending = false;
        // The event matched the signal's current drive epoch, so the
        // value it was scheduled with is exactly `pending_value`.
        let value = st.pending_value;
        if st.value == value {
            return;
        }
        let toggles = st.value.toggles_to(&value);
        st.toggles += toggles as u64;
        let old = st.value;
        st.value = value;
        st.last_change = ev.time;
        kernel.commits += 1;
        if let Some(c) = &mut self.compiled {
            c.values[signal.index()] = value;
        }
        if let Some(sink) = &mut kernel.trace {
            sink.record(&TraceRecord { time: ev.time, signal, old, new: value });
        }
        if let &[comp] = st.fanout.as_slice() {
            // Sliced hook before evaluation: the lane-parallel
            // evaluator reads this commit's planes.
            if self.kernel.sliced.is_some() {
                self.kernel.slice_commit(ev.time, signal, &old, &value, None);
            }
            self.eval(comp, false);
        } else {
            self.pending_evals.extend_from_slice(&st.fanout);
            if self.kernel.sliced.is_some() {
                self.kernel.slice_commit(ev.time, signal, &old, &value, None);
            }
        }
    }

    fn eval(&mut self, comp: ComponentId, wake: bool) {
        // Compiled components short-circuit the dynamic dispatch:
        // their spec is evaluated directly and the resulting drive
        // lands on the compiled calendar, not the global queue. (A
        // compiled cell never schedules wakes, so the wake path cannot
        // reach a member.)
        if !wake {
            if let Some(compiled) = &self.compiled {
                if compiled.is_member(comp) {
                    self.eval_compiled(comp);
                    return;
                }
            }
        }
        // `comps` and `kernel` are disjoint fields, and a component
        // only sees the kernel through its `Ctx` — it can never reach
        // back into the component list — so the component can be
        // called in place, with no take/put of its box.
        let boxed = &mut self.comps[comp.index()];
        let mut ctx = Ctx { kernel: &mut self.kernel, comp };
        if wake {
            boxed.on_wake(&mut ctx);
        } else {
            boxed.on_input(&mut ctx);
        }
    }

    /// Evaluates a compiled combinational component: computes the spec
    /// over the committed input values and applies the *identical*
    /// inertial-drive protocol as [`Ctx::drive`] — fault transform,
    /// no-op skip rules, epoch bump — except the in-flight drive is
    /// scheduled on the compiled calendar instead of the global queue.
    fn eval_compiled(&mut self, comp: ComponentId) {
        let compiled = self.compiled.as_mut().expect("caller checked membership");
        compiled.cone_evals += 1;
        let node = compiled.node(comp);
        let value = node.eval(&compiled.values, compiled.pool());
        let out = node.out;
        // Lane twin: advance every campaign lane through the same
        // function the carrier just evaluated. The inertial skip rules
        // below double as the per-lane divergence probes.
        let mut plane = self
            .kernel
            .sliced
            .as_ref()
            .map(|sl| node.eval_lanes(|s| sl.read_plane(s, &compiled.values), compiled.pool()));
        let kernel = &mut self.kernel;
        // Fault hook, identical to `Ctx::drive`: perturb the delay or
        // discard the drive entirely (stuck-at target).
        let delay = match &kernel.fault {
            None => node.delay,
            Some(fault) => match fault.transform(comp, out, kernel.now, node.delay) {
                Some(d) => d,
                None => return,
            },
        };
        let state = &mut kernel.signals[out.index()];
        debug_assert_eq!(
            state.driver,
            Some(comp),
            "compiled component {:?} drove signal '{}' without being its registered driver",
            comp,
            state.name
        );
        debug_assert_eq!(
            state.width,
            value.width(),
            "signal '{}' has width {} but was driven with width {}",
            state.name,
            state.width,
            value.width()
        );
        // The inertial no-op skip rules of `Ctx::drive`, verbatim.
        // When a sliced pass is active, each skip doubles as a probe:
        // lanes whose lane-parallel result differs from what the
        // carrier compared against would *not* have skipped in their
        // scalar run, and diverge.
        if state.pending {
            if state.pending_value == value {
                if let (Some(sl), Some(p)) = (kernel.sliced.as_mut(), &plane) {
                    sl.note_skip(out, p, true, &state.pending_value);
                }
                return;
            }
        } else if state.value == value {
            if let (Some(sl), Some(p)) = (kernel.sliced.as_mut(), &plane) {
                sl.note_skip(out, p, false, &state.value);
            }
            return;
        }
        if let Some(sl) = kernel.sliced.as_mut() {
            let superseded = if state.pending { Some(state.pending_value) } else { None };
            sl.note_drive(out, plane.take().expect("sliced pass computes planes"), superseded.as_ref());
        }
        state.drive_epoch += 1;
        state.pending = true;
        state.pending_value = value;
        let epoch = state.drive_epoch;
        let t = kernel.now + delay;
        compiled.push(t, out, epoch);
    }
}

/// Drives a fixed schedule of values onto one signal.
///
/// After the initial wake the stimulus is self-chaining: it sits in
/// its own signal's fanout, and each commit of an entry triggers the
/// delayed drive of the next one. A timer wake is only needed to hop
/// over entries that repeat the current value (their drive is a no-op
/// and produces no commit to chain from).
struct Stimulus {
    sig: SignalId,
    schedule: Vec<(Time, Value)>,
    next: usize,
    /// Value of the latest drive issued (committed or in flight); the
    /// signal itself starts all-X.
    cur: Value,
}

impl Stimulus {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Commit everything due now with zero delay. Several entries
        // at the same timestamp supersede each other through the
        // inertial epoch, so the last one wins, as before.
        let mut issued = false;
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= now {
            let (_, v) = self.schedule[self.next];
            self.next += 1;
            if v != self.cur {
                ctx.drive(self.sig, v, Time::ZERO);
                self.cur = v;
                issued = true;
            }
        }
        if issued {
            // The zero-delay commit calls `on_input`, continuing the
            // chain at this same timestamp.
            return;
        }
        let Some(&(t, v)) = self.schedule.get(self.next) else {
            return;
        };
        if v != self.cur {
            ctx.drive(self.sig, v, t - now);
            self.cur = v;
            self.next += 1;
        } else {
            ctx.wake_after(t - now);
        }
    }
}

impl Component for Stimulus {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        self.step(ctx);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.step(ctx);
    }
}

/// Calls a closure after each commit of a watched signal.
struct MonitorComp {
    sig: SignalId,
    callback: Box<dyn FnMut(Time, Value)>,
}

impl Component for MonitorComp {
    fn on_input(&mut self, ctx: &mut Ctx<'_>) {
        let v = ctx.read(self.sig);
        (self.callback)(ctx.now(), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Not {
        a: SignalId,
        y: SignalId,
        delay: Time,
    }

    impl Component for Not {
        fn on_input(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read(self.a).not();
            ctx.drive(self.y, v, self.delay);
        }
    }

    fn inverter(sim: &mut Simulator, a: SignalId, delay: Time) -> SignalId {
        let y = sim.add_signal("y", 1);
        let id = sim.add_component("not", Not { a, y, delay }, &[a]);
        sim.connect_driver(id, y).unwrap();
        y
    }

    #[test]
    fn stimulus_and_gate_propagation() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        sim.run_until(Time::from_ps(50)).unwrap();
        assert!(sim.value(y).is_high());
        sim.run_until(Time::from_ps(200)).unwrap();
        assert!(sim.value(y).is_low());
    }

    #[test]
    fn inertial_delay_filters_glitch() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(50));
        // 20 ps pulse, shorter than the 50 ps gate delay: must vanish.
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ps(200), Value::one(1)),
                (Time::from_ps(220), Value::zero(1)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_high());
        // One transition X->1 only; the glitch never reached y.
        assert_eq!(sim.toggles(y), 1);
    }

    #[test]
    fn toggle_and_energy_accounting() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        sim.set_signal_energy(a, 2.0);
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::from_u64(8, 0x00)),
                (Time::from_ps(10), Value::from_u64(8, 0xFF)),
                (Time::from_ps(20), Value::from_u64(8, 0x0F)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        // X->00 is 8 toggles, 00->FF is 8, FF->0F is 4.
        assert_eq!(sim.toggles(a), 20);
        let e = sim.subtree_energy_fj("");
        assert!((e - 40.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_sees_commits_in_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 4);
        sim.monitor("mon", a, move |t, v| {
            seen2.borrow_mut().push((t, v.to_u64().unwrap()));
        });
        sim.stimulus(
            a,
            &[
                (Time::from_ps(5), Value::from_u64(4, 1)),
                (Time::from_ps(15), Value::from_u64(4, 2)),
            ],
        );
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            &*seen.borrow(),
            &[(Time::from_ps(5), 1), (Time::from_ps(15), 2)]
        );
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = sim.add_signal("y", 1);
        let c1 = sim.add_component("n1", Not { a, y, delay: Time::from_ps(1) }, &[a]);
        let c2 = sim.add_component("n2", Not { a, y, delay: Time::from_ps(1) }, &[a]);
        sim.connect_driver(c1, y).unwrap();
        let err = sim.connect_driver(c2, y).unwrap_err();
        assert!(matches!(err, SimError::MultipleDrivers { .. }));
    }

    #[test]
    fn run_until_advances_time_even_when_quiet() {
        let mut sim = Simulator::new();
        let t = sim.run_until(Time::from_ns(5)).unwrap();
        assert_eq!(t, Time::from_ns(5));
        assert_eq!(sim.now(), Time::from_ns(5));
    }

    #[test]
    fn event_limit_catches_oscillation() {
        // s = or(r, kick); r = not(s). Once kick pulses high and falls
        // back, the loop oscillates forever with 1 ps gate delays.
        let mut sim = Simulator::with_config(SimConfig { max_events: 1000, trace: false });
        let kick = sim.add_signal("kick", 1);
        let s = sim.add_signal("s", 1);
        let r = sim.add_signal("r", 1);
        let g1 = sim.add_component("g1", Not { a: s, y: r, delay: Time::from_ps(1) }, &[s]);
        sim.connect_driver(g1, r).unwrap();
        let g2 = sim.add_component("g2", Or { a: r, b: kick, y: s }, &[r, kick]);
        sim.connect_driver(g2, s).unwrap();
        sim.stimulus(
            kick,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(10), Value::zero(1))],
        );
        let res = sim.run_until(Time::from_ns(100));
        assert!(matches!(res, Err(SimError::EventLimitExceeded { .. })));
    }

    struct Or {
        a: SignalId,
        b: SignalId,
        y: SignalId,
    }
    impl Component for Or {
        fn on_input(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read(self.a).or(&ctx.read(self.b));
            ctx.drive(self.y, v, Time::from_ps(1));
        }
    }

    #[test]
    fn scope_energy_rollup() {
        let mut sim = Simulator::new();
        sim.push_scope("blk");
        let a = sim.add_signal("a", 1);
        sim.set_signal_energy(a, 3.0);
        sim.pop_scope();
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(1), Value::one(1))]);
        sim.run_to_quiescence().unwrap();
        assert!((sim.subtree_energy_fj("blk") - 6.0).abs() < 1e-9);
        assert_eq!(sim.subtree_energy_fj("other"), 0.0);
    }

    #[test]
    fn signal_paths_and_lookup() {
        let mut sim = Simulator::new();
        sim.push_scope("top");
        sim.push_scope("sub");
        let a = sim.add_signal("data", 8);
        sim.pop_scope();
        sim.pop_scope();
        assert_eq!(sim.signal_info(a).path, "top.sub.data");
        assert_eq!(sim.signal_by_path("top.sub.data"), Some(a));
        assert_eq!(sim.signal_by_path("nope"), None);
    }

    #[test]
    fn empty_fault_plan_installs_nothing() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let _y = inverter(&mut sim, a, Time::from_ps(10));
        sim.apply_fault_plan(&FaultPlan::new(123)).unwrap();
        assert!(sim.kernel.fault.is_none());
    }

    #[test]
    fn unknown_fault_target_is_an_error() {
        let mut sim = Simulator::new();
        let _a = sim.add_signal("a", 1);
        let plan = FaultPlan::new(0).stuck_at("no.such.signal", false, Time::ZERO);
        let err = sim.apply_fault_plan(&plan).unwrap_err();
        assert!(matches!(err, SimError::UnknownFaultTarget { .. }));
        assert!(err.to_string().contains("no.such.signal"));
    }

    #[test]
    fn stuck_at_forces_value_and_discards_later_drives() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(1), Value::one(1)),
                (Time::from_ns(2), Value::zero(1)),
            ],
        );
        // y would settle high; stick it low from 500 ps instead.
        let plan = FaultPlan::new(0).stuck_at("y", false, Time::from_ps(500));
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_low());
        // The input kept moving; the stuck output never followed.
        assert_eq!(sim.value(a), Value::zero(1));
    }

    #[test]
    fn glitch_flips_and_restores() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.monitor("mon", a, move |t, v| {
            seen2.borrow_mut().push((t, v));
        });
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        let plan = FaultPlan::new(0).glitch("a", Time::from_ns(5), Time::from_ps(200), 1);
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            &*seen.borrow(),
            &[
                (Time::ZERO, Value::zero(1)),
                (Time::from_ns(5), Value::one(1)),
                (Time::from_ns(5) + Time::from_ps(200), Value::zero(1)),
            ]
        );
    }

    #[test]
    fn downstream_inertial_delay_filters_short_glitch() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let y = inverter(&mut sim, a, Time::from_ps(50));
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        // 20 ps SEU, shorter than the 50 ps gate delay: must vanish.
        let plan = FaultPlan::new(0).glitch("a", Time::from_ns(5), Time::from_ps(20), 1);
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.value(y).is_high());
        assert_eq!(sim.toggles(y), 1); // only the initial X -> 1
    }

    #[test]
    fn delay_scale_slows_gates() {
        let run = |scale: f64| {
            let mut sim = Simulator::new();
            let a = sim.add_signal("a", 1);
            let y = inverter(&mut sim, a, Time::from_ps(100));
            sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
            let plan = FaultPlan::new(0).with_delay_scale(scale);
            sim.apply_fault_plan(&plan).unwrap();
            sim.run_to_quiescence().unwrap();
            sim.signal_info(y).last_change
        };
        assert_eq!(run(1.0), Time::from_ps(100));
        assert_eq!(run(4.0), Time::from_ps(400));
    }

    #[test]
    fn skew_adds_extra_delay_on_matching_signals_only() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let data_y = inverter(&mut sim, a, Time::from_ps(100)); // named "y"
        sim.push_scope("req");
        let req_y = inverter(&mut sim, a, Time::from_ps(100)); // "req.y"
        sim.pop_scope();
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        let plan = FaultPlan::new(0).skew_matching("req.y", Time::from_ps(300));
        sim.apply_fault_plan(&plan).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.signal_info(data_y).last_change, Time::from_ps(100));
        assert_eq!(sim.signal_info(req_y).last_change, Time::from_ps(400));
    }

    #[test]
    fn sigma_runs_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulator::new();
            let a = sim.add_signal("a", 1);
            let mut y = a;
            for _ in 0..8 {
                y = inverter(&mut sim, y, Time::from_ps(37));
            }
            sim.stimulus(
                a,
                &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))],
            );
            let plan = FaultPlan::new(seed).with_delay_sigma(0.3);
            sim.apply_fault_plan(&plan).unwrap();
            sim.run_to_quiescence().unwrap();
            (sim.signal_info(y).last_change, sim.toggles(y), sim.events_processed())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn watchdog_reports_stalled_handshake() {
        // A req wire that rises and an ack wire that never answers —
        // the minimal stalled four-phase handshake.
        let mut sim = Simulator::new();
        sim.push_scope("hs");
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.pop_scope();
        let _listener = inverter(&mut sim, req, Time::from_ps(10));
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(1), Value::one(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("hs0", req, ack);
        sim.run_until(Time::from_ns(10)).unwrap();
        let report = sim.deadlock_report().expect("stall must be diagnosed");
        assert_eq!(report.first_label(), Some("hs0"));
        assert_eq!(report.stalled.len(), 1);
        let s = &report.stalled[0];
        assert_eq!(s.req_path, "hs.req");
        assert_eq!(s.ack_path, "hs.ack");
        assert_eq!(s.req_last_change, Time::from_ns(1));
        assert!(s.waiting.iter().any(|n| n == "not"));
    }

    #[test]
    fn watchdog_quiet_when_handshakes_at_rest() {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("hs0", req, ack);
        sim.run_to_quiescence().unwrap();
        assert!(sim.deadlock_report().is_none());
    }

    #[test]
    fn event_limit_error_carries_watchdog_diagnosis() {
        // The oscillation test's circuit, plus a watched pair that is
        // mid-protocol while the loop spins.
        let mut sim = Simulator::with_config(SimConfig { max_events: 1000, trace: false });
        let kick = sim.add_signal("kick", 1);
        let s = sim.add_signal("s", 1);
        let r = sim.add_signal("r", 1);
        let g1 = sim.add_component("g1", Not { a: s, y: r, delay: Time::from_ps(1) }, &[s]);
        sim.connect_driver(g1, r).unwrap();
        let g2 = sim.add_component("g2", Or { a: r, b: kick, y: s }, &[r, kick]);
        sim.connect_driver(g2, s).unwrap();
        let req = sim.add_signal("req", 1);
        let ack = sim.add_signal("ack", 1);
        sim.stimulus(req, &[(Time::ZERO, Value::one(1))]);
        sim.stimulus(ack, &[(Time::ZERO, Value::zero(1))]);
        sim.watch_handshake("stuck", req, ack);
        sim.stimulus(
            kick,
            &[(Time::ZERO, Value::one(1)), (Time::from_ps(10), Value::zero(1))],
        );
        let err = sim.run_until(Time::from_ns(100)).unwrap_err();
        let SimError::EventLimitExceeded { diagnosis: Some(report), .. } = err else {
            panic!("expected event-limit error with diagnosis, got {err:?}");
        };
        assert_eq!(report.first_label(), Some("stuck"));
    }

    #[test]
    fn trace_sink_sees_old_and_new_values() {
        use crate::trace::{MemoryTrace, TraceDump};
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 4);
        sim.stimulus(
            a,
            &[
                (Time::ZERO, Value::from_u64(4, 0b0011)),
                (Time::from_ps(10), Value::from_u64(4, 0b1100)),
            ],
        );
        sim.set_trace_sink(Box::new(MemoryTrace::new()));
        sim.run_to_quiescence().unwrap();
        let dump = TraceDump::capture(&sim).expect("sink retains records");
        assert_eq!(dump.records.len(), 2);
        assert_eq!(dump.records[0].old, Value::all_x(4));
        assert_eq!(dump.records[0].new, Value::from_u64(4, 0b0011));
        assert_eq!(dump.records[1].old, Value::from_u64(4, 0b0011));
        assert_eq!(dump.records[1].new, Value::from_u64(4, 0b1100));
        assert_eq!(dump.path(a), "a");
    }

    #[test]
    fn take_trace_sink_restores_untraced_path() {
        use crate::trace::MemoryTrace;
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.set_trace_sink(Box::new(MemoryTrace::new()));
        let sink = sim.take_trace_sink().expect("sink was installed");
        assert_eq!(sink.records().map(<[_]>::len), Some(0));
        assert!(sim.trace_sink().is_none());
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1))]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.kernel.trace.is_none());
    }

    #[test]
    fn profile_counts_commits_and_wakes() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let _y = inverter(&mut sim, a, Time::from_ps(10));
        sim.stimulus(
            a,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))],
        );
        sim.run_to_quiescence().unwrap();
        let p = sim.profile();
        // a: X->0, 0->1; y: X->1, 1->0.
        assert_eq!(p.commits, 4);
        assert!(p.wakes >= 1, "stimulus kick must be counted");
        assert_eq!(p.events, sim.events_processed());
        assert!(p.deltas > 0 && p.deltas <= p.events);
        assert!(p.queue_mean >= 0.0);
        assert_eq!(p.sim_time, sim.now());
    }

    #[test]
    fn reset_counters() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.set_signal_energy(a, 1.0);
        sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(1), Value::one(1))]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.toggles(a) > 0);
        sim.reset_toggles();
        sim.reset_energy();
        assert_eq!(sim.toggles(a), 0);
        assert_eq!(sim.subtree_energy_fj(""), 0.0);
    }
}
