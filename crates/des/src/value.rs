//! Multi-bit signal values with unknown (`X`) propagation.

use std::fmt;

/// A single-bit logic level: `0`, `1` or unknown.
///
/// The kernel uses three-state logic: every signal starts as [`Logic::X`]
/// until something drives it, and `X` propagates pessimistically through
/// combinational operators exactly as in an HDL simulator. There is no
/// high-impedance state because every net in the reproduced circuits has
/// exactly one driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    X,
}

impl Logic {
    /// Converts a boolean into a known logic level.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for known levels and `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the level is `0` or `1`.
    pub fn is_known(self) -> bool {
        !matches!(self, Logic::X)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic::Zero => write!(f, "0"),
            Logic::One => write!(f, "1"),
            Logic::X => write!(f, "x"),
        }
    }
}

/// A bit-vector value of width 1..=64 with a per-bit unknown mask.
///
/// Whole datapath buses are modelled as single signals carrying a
/// `Value`; transition counting works on bit toggles so activity-based
/// power estimation stays exact. Bits above `width` are always zero in
/// both `bits` and `x`.
///
/// # Examples
///
/// ```
/// use sal_des::Value;
/// let a = Value::from_u64(8, 0xA5);
/// let b = Value::from_u64(8, 0x5A);
/// assert_eq!(a.xor(&b), Value::from_u64(8, 0xFF));
/// assert_eq!(a.toggles_to(&b), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Value {
    width: u8,
    bits: u64,
    x: u64,
}

impl Value {
    /// Maximum supported bus width.
    pub const MAX_WIDTH: u8 = 64;

    /// The bit mask covering exactly `width` low bits — the invariant
    /// mask every [`Value`] keeps its `bits`/`x` words confined to.
    ///
    /// Exposed so lane-packing code (the bit-sliced campaign engine)
    /// and fault-plan resolution share one definition instead of
    /// re-deriving `(1 << width) - 1` with its own 64-bit edge case.
    #[inline]
    pub fn width_mask(width: u8) -> u64 {
        debug_assert!((1..=64).contains(&width));
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    #[inline]
    fn mask(width: u8) -> u64 {
        Self::width_mask(width)
    }

    /// An all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn zero(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: 0, x: 0 }
    }

    /// An all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn ones(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: Self::mask(width), x: 0 }
    }

    /// An all-unknown value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn all_x(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: 0, x: Self::mask(width) }
    }

    /// A single-bit `1`.
    pub fn one(width: u8) -> Value {
        Value::from_u64(width, 1)
    }

    /// A fully-known value from an integer; bits above `width` are
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn from_u64(width: u8, v: u64) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: v & Self::mask(width), x: 0 }
    }

    /// A single-bit value from a [`Logic`] level.
    pub fn from_logic(l: Logic) -> Value {
        match l {
            Logic::Zero => Value::zero(1),
            Logic::One => Value::ones(1),
            Logic::X => Value::all_x(1),
        }
    }

    /// A single-bit value from a boolean.
    pub fn from_bool(b: bool) -> Value {
        Value::from_logic(Logic::from_bool(b))
    }

    /// The declared width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The integer value if every bit is known, else `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.x == 0 {
            Some(self.bits)
        } else {
            None
        }
    }

    /// The raw known-bit pattern (unknown bits read as zero).
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// The unknown-bit mask.
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// True when no bit is `X`.
    pub fn is_fully_known(&self) -> bool {
        self.x == 0
    }

    /// The logic level of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u8) -> Logic {
        assert!(i < self.width, "bit index out of range");
        if self.x >> i & 1 == 1 {
            Logic::X
        } else if self.bits >> i & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// The value as a single logic level.
    ///
    /// # Panics
    ///
    /// Panics if the width is not 1.
    pub fn as_logic(&self) -> Logic {
        assert_eq!(self.width, 1, "as_logic requires a 1-bit value");
        self.bit(0)
    }

    /// True if this is a 1-bit known `1`.
    #[inline]
    pub fn is_high(&self) -> bool {
        self.width == 1 && self.x == 0 && self.bits == 1
    }

    /// True if this is a 1-bit known `0`.
    #[inline]
    pub fn is_low(&self) -> bool {
        self.width == 1 && self.x == 0 && self.bits == 0
    }

    /// Extracts bits `[lo, lo+width)` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds this value's width or `width` is 0.
    pub fn slice(&self, lo: u8, width: u8) -> Value {
        assert!(width >= 1, "slice width must be at least 1");
        assert!(
            lo.checked_add(width).is_some_and(|hi| hi <= self.width),
            "slice out of range"
        );
        let m = Self::mask(width);
        Value { width, bits: (self.bits >> lo) & m, x: (self.x >> lo) & m }
    }

    /// Concatenates `hi` above `self` (`self` occupies the low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(&self, hi: &Value) -> Value {
        let w = self
            .width
            .checked_add(hi.width)
            .filter(|&w| w <= 64)
            .expect("concatenated width exceeds 64");
        Value {
            width: w,
            bits: self.bits | (hi.bits << self.width),
            x: self.x | (hi.x << self.width),
        }
    }

    /// Bitwise NOT with X propagation.
    #[inline]
    pub fn not(&self) -> Value {
        let m = Self::mask(self.width);
        Value { width: self.width, bits: !self.bits & m & !self.x, x: self.x }
    }

    fn check_width(&self, other: &Value) {
        assert_eq!(self.width, other.width, "width mismatch in bitwise op");
    }

    /// Bitwise AND: a known `0` on either side dominates an `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn and(&self, other: &Value) -> Value {
        self.check_width(other);
        let zero_a = !self.bits & !self.x;
        let zero_b = !other.bits & !other.x;
        let m = Self::mask(self.width);
        let x = (self.x | other.x) & !(zero_a | zero_b) & m;
        Value { width: self.width, bits: self.bits & other.bits & !x, x }
    }

    /// Bitwise OR: a known `1` on either side dominates an `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn or(&self, other: &Value) -> Value {
        self.check_width(other);
        let one_a = self.bits & !self.x;
        let one_b = other.bits & !other.x;
        let x = (self.x | other.x) & !(one_a | one_b);
        Value { width: self.width, bits: (self.bits | other.bits | one_a | one_b) & !x, x }
    }

    /// Bitwise XOR: any `X` input makes the output bit `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn xor(&self, other: &Value) -> Value {
        self.check_width(other);
        let x = self.x | other.x;
        Value { width: self.width, bits: (self.bits ^ other.bits) & !x, x }
    }

    /// Two-way multiplexer with X-pessimism: an unknown select yields
    /// `X` wherever the two data inputs disagree or are unknown.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` widths differ or `sel` is not 1 bit wide.
    pub fn mux(sel: &Value, a: &Value, b: &Value) -> Value {
        a.check_width(b);
        assert_eq!(sel.width(), 1, "mux select must be 1 bit");
        match sel.as_logic() {
            Logic::Zero => *a,
            Logic::One => *b,
            Logic::X => {
                let agree = !(a.bits ^ b.bits) & !a.x & !b.x;
                let m = Self::mask(a.width);
                Value { width: a.width, bits: a.bits & agree, x: m & !agree }
            }
        }
    }

    /// The number of bit positions whose *known* level differs between
    /// `self` and `next`, i.e. the toggle count charged by the power
    /// model for a `self → next` commit. A bit entering or leaving the
    /// `X` state counts as one toggle (pessimistic but consistent).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn toggles_to(&self, next: &Value) -> u32 {
        self.check_width(next);
        let x_change = self.x ^ next.x;
        let both_known = !self.x & !next.x;
        (((self.bits ^ next.bits) & both_known) | x_change).count_ones()
    }

    /// Reduction OR over all bits (`1` if any bit is known `1`, `0` if
    /// all bits are known `0`, else `X`).
    pub fn reduce_or(&self) -> Logic {
        if self.bits & !self.x != 0 {
            Logic::One
        } else if self.x != 0 {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction AND over all bits.
    pub fn reduce_and(&self) -> Logic {
        let m = Self::mask(self.width);
        if (self.bits | self.x) & m != m {
            Logic::Zero
        } else if self.x != 0 {
            Logic::X
        } else {
            Logic::One
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl From<Logic> for Value {
    fn from(l: Logic) -> Value {
        Value::from_logic(l)
    }
}

/// Up to 64 independent lane values of one signal, stored *bit-sliced*:
/// plane `b` holds bit `b` of every lane, one lane per plane bit. This
/// is the storage layout of the bit-sliced campaign engine — a bitwise
/// gate evaluated once per plane advances all lanes in parallel.
///
/// Planes mirror the [`Value`] invariant: only the low [`LaneValues::lanes`]
/// bits of each plane word are meaningful, and [`LaneValues::unpack`]
/// re-masks through [`Value`] constructors so garbage can never leak
/// out of dead lanes or out of bits above the signal width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneValues {
    /// Known-one planes: `ones[b]` bit `k` set iff lane `k` bit `b` is 1.
    ones: Vec<u64>,
    /// Unknown planes: `xs[b]` bit `k` set iff lane `k` bit `b` is X.
    xs: Vec<u64>,
    width: u8,
    lanes: u8,
}

impl LaneValues {
    /// Maximum number of lanes (one per plane bit).
    pub const MAX_LANES: u8 = 64;

    /// All lanes carrying the same value (the carrier broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 64.
    pub fn broadcast(v: &Value, lanes: u8) -> LaneValues {
        assert!((1..=64).contains(&lanes), "lanes must be 1..=64");
        let lane_mask = Value::width_mask(lanes);
        let width = v.width();
        let mut ones = vec![0u64; width as usize];
        let mut xs = vec![0u64; width as usize];
        for b in 0..width {
            if v.raw_bits() >> b & 1 == 1 {
                ones[b as usize] = lane_mask;
            }
            if v.x_mask() >> b & 1 == 1 {
                xs[b as usize] = lane_mask;
            }
        }
        LaneValues { ones, xs, width, lanes }
    }

    /// Packs one [`Value`] per lane into planes. All values must share
    /// one width; `values.len()` sets the lane count.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, longer than 64, or mixes widths.
    pub fn pack(values: &[Value]) -> LaneValues {
        assert!(
            (1..=64).contains(&values.len()),
            "lane count must be 1..=64, got {}",
            values.len()
        );
        let width = values[0].width();
        let mut lv = LaneValues::broadcast(&Value::zero(width), values.len() as u8);
        for (k, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {k} width mismatch");
            lv.set_lane(k as u8, v);
        }
        lv
    }

    /// The signal width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The number of packed lanes.
    pub fn lanes(&self) -> u8 {
        self.lanes
    }

    /// Extracts lane `k` back into a [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= lanes`.
    pub fn unpack(&self, k: u8) -> Value {
        assert!(k < self.lanes, "lane {k} out of {}", self.lanes);
        let mut bits = 0u64;
        let mut x = 0u64;
        for b in 0..self.width {
            bits |= (self.ones[b as usize] >> k & 1) << b;
            x |= (self.xs[b as usize] >> k & 1) << b;
        }
        // Re-mask on the way out: an X bit is never simultaneously a
        // known 1, and nothing survives above the width.
        let m = Value::width_mask(self.width);
        let x = x & m;
        Value { width: self.width, bits: bits & m & !x, x }
    }

    /// Overwrites lane `k` with `v` (same width as the planes).
    ///
    /// # Panics
    ///
    /// Panics if `k >= lanes` or widths mismatch.
    pub fn set_lane(&mut self, k: u8, v: &Value) {
        assert!(k < self.lanes, "lane {k} out of {}", self.lanes);
        assert_eq!(v.width(), self.width, "lane width mismatch");
        let bit = 1u64 << k;
        for b in 0..self.width {
            let one = v.raw_bits() >> b & 1 == 1;
            let x = v.x_mask() >> b & 1 == 1;
            set_plane_bit(&mut self.ones[b as usize], bit, one && !x);
            set_plane_bit(&mut self.xs[b as usize], bit, x);
        }
    }

    /// XORs `mask` into the known bits of the lanes selected by
    /// `lane_sel` (bit `k` of `lane_sel` selects lane `k`); X bits stay
    /// X. This is the per-lane glitch-injection primitive.
    pub fn xor_lanes(&mut self, mask: u64, lane_sel: u64) {
        let lane_sel = lane_sel & Value::width_mask(self.lanes);
        let mask = mask & Value::width_mask(self.width);
        for b in 0..self.width {
            if mask >> b & 1 == 1 {
                // Flip only where the bit is known.
                self.ones[b as usize] ^= lane_sel & !self.xs[b as usize];
            }
        }
    }

    /// True when every lane holds the same value (bitwise, X included).
    pub fn all_equal(&self) -> bool {
        let lane_mask = Value::width_mask(self.lanes);
        for b in 0..self.width {
            for plane in [self.ones[b as usize], self.xs[b as usize]] {
                let p = plane & lane_mask;
                if p != 0 && p != lane_mask {
                    return false;
                }
            }
        }
        true
    }

    /// The set of lanes (as a bit mask) whose value differs from lane
    /// `k`'s — the divergence probe of the sliced campaign engine.
    pub fn lanes_differing_from(&self, k: u8) -> u64 {
        assert!(k < self.lanes, "lane {k} out of {}", self.lanes);
        let lane_mask = Value::width_mask(self.lanes);
        let mut diff = 0u64;
        for b in 0..self.width {
            for plane in [self.ones[b as usize], self.xs[b as usize]] {
                let refbit = if plane >> k & 1 == 1 { lane_mask } else { 0 };
                diff |= (plane ^ refbit) & lane_mask;
            }
        }
        diff
    }

    /// Read-only plane access for lane-parallel gate evaluation:
    /// `(ones, xs)` of bit `b`.
    pub fn plane(&self, b: u8) -> (u64, u64) {
        (self.ones[b as usize], self.xs[b as usize])
    }

    /// Builds lane planes directly from per-bit `(ones, xs)` plane
    /// words (the output path of lane-parallel gate evaluation). Plane
    /// words are masked to the lane count; an X plane bit clears the
    /// corresponding ones bit, preserving the "X is never also a
    /// known 1" invariant.
    ///
    /// # Panics
    ///
    /// Panics if the plane slices are empty, longer than 64 or of
    /// unequal length, or `lanes` is out of range.
    pub fn from_planes(ones: &[u64], xs: &[u64], lanes: u8) -> LaneValues {
        assert!((1..=64).contains(&ones.len()), "width must be 1..=64");
        assert_eq!(ones.len(), xs.len(), "plane slices must match");
        assert!((1..=64).contains(&lanes), "lanes must be 1..=64");
        let lane_mask = Value::width_mask(lanes);
        let width = ones.len() as u8;
        let mut o = Vec::with_capacity(ones.len());
        let mut x = Vec::with_capacity(xs.len());
        for (&pb, &px) in ones.iter().zip(xs) {
            let px = px & lane_mask;
            o.push(pb & lane_mask & !px);
            x.push(px);
        }
        LaneValues { ones: o, xs: x, width, lanes }
    }
}

/// Lane-parallel mirrors of the scalar [`Value`] operators. Each
/// method computes, for every lane `k`, exactly what the scalar op
/// would produce from that lane's unpacked values — the formulas are
/// the [`Value`] ones applied per bit-plane, with the *lane* mask
/// playing the role the *width* mask plays in the scalar algebra
/// (a plane word indexes lanes where a value word indexes bits).
/// `unpack(op_lanes(..), k) == op(unpack(.., k), ..)` is the
/// equivalence the sliced campaign engine rests on, and is what the
/// tests below check.
impl LaneValues {
    fn check_like(&self, other: &LaneValues) {
        assert_eq!(self.width, other.width, "width mismatch in lane op");
        assert_eq!(self.lanes, other.lanes, "lane count mismatch in lane op");
    }

    /// Lane-parallel [`Value::not`].
    pub fn not(&self) -> LaneValues {
        let lm = Value::width_mask(self.lanes);
        let mut out = self.clone();
        for b in 0..self.width as usize {
            out.ones[b] = !self.ones[b] & lm & !self.xs[b];
            out.xs[b] = self.xs[b] & lm;
        }
        out
    }

    /// Lane-parallel [`Value::and`].
    ///
    /// # Panics
    ///
    /// Panics on width or lane-count mismatch.
    pub fn and(&self, other: &LaneValues) -> LaneValues {
        self.check_like(other);
        let lm = Value::width_mask(self.lanes);
        let mut out = self.clone();
        for b in 0..self.width as usize {
            let (oa, xa) = (self.ones[b], self.xs[b]);
            let (ob, xb) = (other.ones[b], other.xs[b]);
            let zero_a = !oa & !xa;
            let zero_b = !ob & !xb;
            let x = (xa | xb) & !(zero_a | zero_b) & lm;
            out.ones[b] = oa & ob & !x;
            out.xs[b] = x;
        }
        out
    }

    /// Lane-parallel [`Value::or`].
    ///
    /// # Panics
    ///
    /// Panics on width or lane-count mismatch.
    pub fn or(&self, other: &LaneValues) -> LaneValues {
        self.check_like(other);
        let lm = Value::width_mask(self.lanes);
        let mut out = self.clone();
        for b in 0..self.width as usize {
            let (oa, xa) = (self.ones[b], self.xs[b]);
            let (ob, xb) = (other.ones[b], other.xs[b]);
            let one_a = oa & !xa;
            let one_b = ob & !xb;
            let x = (xa | xb) & !(one_a | one_b) & lm;
            out.ones[b] = (oa | ob | one_a | one_b) & !x & lm;
            out.xs[b] = x;
        }
        out
    }

    /// Lane-parallel [`Value::xor`].
    ///
    /// # Panics
    ///
    /// Panics on width or lane-count mismatch.
    pub fn xor(&self, other: &LaneValues) -> LaneValues {
        self.check_like(other);
        let lm = Value::width_mask(self.lanes);
        let mut out = self.clone();
        for b in 0..self.width as usize {
            let x = (self.xs[b] | other.xs[b]) & lm;
            out.ones[b] = (self.ones[b] ^ other.ones[b]) & !x & lm;
            out.xs[b] = x;
        }
        out
    }

    /// Lane-parallel [`Value::mux`]: each lane selects with *its own*
    /// select bit, so lanes with known selects pass data through while
    /// lanes with an X select get the X-pessimistic merge.
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` differ in shape or `sel` is not 1 bit wide.
    pub fn mux(sel: &LaneValues, a: &LaneValues, b: &LaneValues) -> LaneValues {
        a.check_like(b);
        assert_eq!(sel.width, 1, "mux select must be 1 bit");
        assert_eq!(sel.lanes, a.lanes, "lane count mismatch in lane op");
        let lm = Value::width_mask(a.lanes);
        let sel1 = sel.ones[0] & !sel.xs[0];
        let sel0 = !sel.ones[0] & !sel.xs[0];
        let selx = sel.xs[0];
        let mut out = a.clone();
        for bit in 0..a.width as usize {
            let (oa, xa) = (a.ones[bit], a.xs[bit]);
            let (ob, xb) = (b.ones[bit], b.xs[bit]);
            let agree = !(oa ^ ob) & !xa & !xb;
            let x = ((xa & sel0) | (xb & sel1) | (selx & !agree)) & lm;
            out.ones[bit] = ((oa & sel0) | (ob & sel1) | (selx & agree & oa)) & !x & lm;
            out.xs[bit] = x;
        }
        out
    }

    /// Lane-parallel [`Value::slice`].
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds this value's width or `width` is 0.
    pub fn slice(&self, lo: u8, width: u8) -> LaneValues {
        assert!(width >= 1, "slice width must be at least 1");
        assert!(
            lo.checked_add(width).is_some_and(|hi| hi <= self.width),
            "slice out of range"
        );
        let lo = lo as usize;
        let hi = lo + width as usize;
        LaneValues {
            ones: self.ones[lo..hi].to_vec(),
            xs: self.xs[lo..hi].to_vec(),
            width,
            lanes: self.lanes,
        }
    }

    /// Lane-parallel [`Value::concat`] (`self` occupies the low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 or lane counts differ.
    pub fn concat(&self, hi: &LaneValues) -> LaneValues {
        assert_eq!(self.lanes, hi.lanes, "lane count mismatch in lane op");
        let w = self
            .width
            .checked_add(hi.width)
            .filter(|&w| w <= 64)
            .expect("concatenated width exceeds 64");
        let mut ones = Vec::with_capacity(w as usize);
        let mut xs = Vec::with_capacity(w as usize);
        ones.extend_from_slice(&self.ones);
        ones.extend_from_slice(&hi.ones);
        xs.extend_from_slice(&self.xs);
        xs.extend_from_slice(&hi.xs);
        LaneValues { ones, xs, width: w, lanes: self.lanes }
    }

    /// Spreads a 1-bit lane set across `width` bits — the
    /// lane-parallel analogue of the interpreted gate's 1-bit-to-word
    /// input broadcast (a lane's known 0 becomes all-zeros, known 1
    /// all-ones, X all-X).
    ///
    /// # Panics
    ///
    /// Panics if this value is not 1 bit wide.
    pub fn broadcast_to(&self, width: u8) -> LaneValues {
        assert_eq!(self.width, 1, "broadcast_to requires a 1-bit lane set");
        LaneValues {
            ones: vec![self.ones[0]; width as usize],
            xs: vec![self.xs[0]; width as usize],
            width,
            lanes: self.lanes,
        }
    }

    /// The set of lanes (as a bit mask) whose value differs between
    /// `self` and `other`, bitwise with X included.
    ///
    /// # Panics
    ///
    /// Panics on width or lane-count mismatch.
    pub fn lanes_ne(&self, other: &LaneValues) -> u64 {
        self.check_like(other);
        let mut diff = 0u64;
        for b in 0..self.width as usize {
            diff |= (self.ones[b] ^ other.ones[b]) | (self.xs[b] ^ other.xs[b]);
        }
        diff & Value::width_mask(self.lanes)
    }

    /// The set of lanes whose value differs from the scalar `v` — the
    /// cheap form of [`LaneValues::lanes_ne`] against a broadcast.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lanes_ne_value(&self, v: &Value) -> u64 {
        assert_eq!(v.width(), self.width, "width mismatch in lane op");
        let lm = Value::width_mask(self.lanes);
        let mut diff = 0u64;
        for b in 0..self.width {
            let refo = if v.raw_bits() >> b & 1 == 1 { lm } else { 0 };
            let refx = if v.x_mask() >> b & 1 == 1 { lm } else { 0 };
            diff |= (self.ones[b as usize] ^ refo) | (self.xs[b as usize] ^ refx);
        }
        diff & lm
    }
}

#[inline]
fn set_plane_bit(plane: &mut u64, bit: u64, on: bool) {
    if on {
        *plane |= bit;
    } else {
        *plane &= !bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masking() {
        let v = Value::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
        assert_eq!(Value::zero(64).width(), 64);
        assert_eq!(Value::ones(64).to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_rejected() {
        let _ = Value::zero(0);
    }

    #[test]
    fn bit_access() {
        let v = Value::from_u64(4, 0b1010);
        assert_eq!(v.bit(0), Logic::Zero);
        assert_eq!(v.bit(1), Logic::One);
        assert_eq!(v.bit(3), Logic::One);
        assert!(Value::all_x(4).bit(2) == Logic::X);
    }

    #[test]
    fn not_with_x() {
        let v = Value::from_u64(2, 0b01);
        assert_eq!(v.not().to_u64(), Some(0b10));
        let x = Value::all_x(2);
        assert_eq!(x.not().x_mask(), 0b11);
    }

    #[test]
    fn and_dominant_zero() {
        let zero = Value::zero(1);
        let x = Value::all_x(1);
        assert!(zero.and(&x).is_low());
        assert_eq!(x.and(&Value::ones(1)).as_logic(), Logic::X);
    }

    #[test]
    fn or_dominant_one() {
        let one = Value::ones(1);
        let x = Value::all_x(1);
        assert!(one.or(&x).is_high());
        assert_eq!(x.or(&Value::zero(1)).as_logic(), Logic::X);
    }

    #[test]
    fn xor_propagates_x() {
        let x = Value::all_x(1);
        assert_eq!(x.xor(&Value::zero(1)).as_logic(), Logic::X);
        let a = Value::from_u64(8, 0xA5);
        let b = Value::from_u64(8, 0x5A);
        assert_eq!(a.xor(&b).to_u64(), Some(0xFF));
    }

    #[test]
    fn mux_known_and_unknown_select() {
        let a = Value::from_u64(4, 0b1100);
        let b = Value::from_u64(4, 0b1010);
        let s0 = Value::zero(1);
        let s1 = Value::ones(1);
        let sx = Value::all_x(1);
        assert_eq!(Value::mux(&s0, &a, &b), a);
        assert_eq!(Value::mux(&s1, &a, &b), b);
        let m = Value::mux(&sx, &a, &b);
        // bits 3 and 1 agree (1 and 1? 1100 vs 1010: bit3 1/1 agree, bit2 1/0
        // differ, bit1 0/1 differ, bit0 0/0 agree)
        assert_eq!(m.bit(3), Logic::One);
        assert_eq!(m.bit(0), Logic::Zero);
        assert_eq!(m.bit(2), Logic::X);
        assert_eq!(m.bit(1), Logic::X);
    }

    #[test]
    fn toggle_counting() {
        let a = Value::from_u64(8, 0xA5);
        let b = Value::from_u64(8, 0x5A);
        assert_eq!(a.toggles_to(&b), 8);
        assert_eq!(a.toggles_to(&a), 0);
        // X transitions count once per bit.
        assert_eq!(Value::all_x(8).toggles_to(&a), 8);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let v = Value::from_u64(32, 0xDEAD_BEEF);
        let lo = v.slice(0, 16);
        let hi = v.slice(16, 16);
        assert_eq!(lo.to_u64(), Some(0xBEEF));
        assert_eq!(hi.to_u64(), Some(0xDEAD));
        assert_eq!(lo.concat(&hi), v);
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::from_u64(4, 0b0010).reduce_or(), Logic::One);
        assert_eq!(Value::zero(4).reduce_or(), Logic::Zero);
        assert_eq!(Value::all_x(4).reduce_or(), Logic::X);
        assert_eq!(Value::ones(4).reduce_and(), Logic::One);
        assert_eq!(Value::from_u64(4, 0b0111).reduce_and(), Logic::Zero);
    }

    #[test]
    fn display_binary() {
        assert_eq!(Value::from_u64(4, 0b1010).to_string(), "1010");
        assert_eq!(Value::all_x(2).to_string(), "xx");
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_out_of_range_panics() {
        let _ = Value::from_u64(8, 0).slice(4, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn concat_overflow_panics() {
        let _ = Value::zero(40).concat(&Value::zero(40));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn and_width_mismatch_panics() {
        let _ = Value::zero(4).and(&Value::zero(8));
    }

    #[test]
    #[should_panic(expected = "1 bit")]
    fn mux_wide_select_panics() {
        let s = Value::zero(2);
        let _ = Value::mux(&s, &Value::zero(4), &Value::zero(4));
    }

    #[test]
    fn logic_conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_known() && !Logic::X.is_known());
        assert_eq!(Logic::X.to_string(), "x");
    }

    #[test]
    fn is_high_low_only_for_one_bit() {
        assert!(Value::one(1).is_high());
        assert!(!Value::from_u64(2, 0b01).is_high());
        assert!(Value::zero(1).is_low());
        assert!(!Value::zero(2).is_low());
        assert!(!Value::all_x(1).is_low());
    }

    #[test]
    fn from_logic_round_trip() {
        for l in [Logic::Zero, Logic::One, Logic::X] {
            assert_eq!(Value::from_logic(l).as_logic(), l);
            let v: Value = l.into();
            assert_eq!(v.as_logic(), l);
        }
    }

    #[test]
    fn width_mask_edge_widths() {
        assert_eq!(Value::width_mask(1), 0b1);
        assert_eq!(Value::width_mask(63), u64::MAX >> 1);
        assert_eq!(Value::width_mask(64), u64::MAX);
    }

    /// Forces bit `b` of `v` to X (tests live inside the module, so
    /// they may poke the planes directly).
    fn set_x(v: &mut Value, b: u8) {
        v.x |= 1u64 << b;
        v.bits &= !(1u64 << b);
    }

    /// A deterministic per-lane value mixing known and X bits, with
    /// deliberate garbage above the width that the constructors strip.
    fn lane_sample(width: u8, k: u64) -> Value {
        let bits = k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left((k % 63) as u32);
        let x = k.wrapping_mul(0xBF58_476D_1CE4_E5B9) & bits >> 1;
        let mut v = Value::from_u64(width, bits);
        for b in 0..width {
            if x >> b & 1 == 1 {
                set_x(&mut v, b);
            }
        }
        v
    }

    #[test]
    fn lane_pack_unpack_round_trips_at_edge_widths() {
        for width in [1u8, 63, 64] {
            for lanes in [1usize, 63, 64] {
                let vals: Vec<Value> =
                    (0..lanes as u64).map(|k| lane_sample(width, k)).collect();
                let lv = LaneValues::pack(&vals);
                assert_eq!(lv.width(), width);
                assert_eq!(lv.lanes(), lanes as u8);
                for (k, v) in vals.iter().enumerate() {
                    let u = lv.unpack(k as u8);
                    assert_eq!(&u, v, "width {width}, lanes {lanes}, lane {k}");
                    // The masking invariant: nothing above the width,
                    // no bit both X and known-1.
                    assert_eq!(u.raw_bits() & !Value::width_mask(width), 0);
                    assert_eq!(u.x_mask() & !Value::width_mask(width), 0);
                    assert_eq!(u.raw_bits() & u.x_mask(), 0);
                }
            }
        }
    }

    #[test]
    fn lane_broadcast_equalizes_and_set_lane_diverges() {
        let v = lane_sample(63, 7);
        let mut lv = LaneValues::broadcast(&v, 64);
        assert!(lv.all_equal());
        assert_eq!(lv.lanes_differing_from(0), 0);
        assert_eq!(lv.unpack(63), v);
        let w = lane_sample(63, 8);
        assert_ne!(w, v);
        lv.set_lane(5, &w);
        assert!(!lv.all_equal());
        assert_eq!(lv.lanes_differing_from(0), 1 << 5);
        assert_eq!(lv.lanes_differing_from(5), !(1u64 << 5));
        assert_eq!(lv.unpack(5), w);
        assert_eq!(lv.unpack(4), v);
    }

    #[test]
    fn lane_xor_flips_only_selected_known_bits() {
        // Width 64, a known-zero value with one X bit: the xor must
        // flip selected lanes' known bits and leave the X bit X.
        let mut v = Value::zero(64);
        set_x(&mut v, 63);
        let mut lv = LaneValues::broadcast(&v, 64);
        lv.xor_lanes(u64::MAX, 0b1010);
        for k in [1u8, 3] {
            let u = lv.unpack(k);
            assert_eq!(u.raw_bits(), u64::MAX >> 1, "lane {k} known bits flip");
            assert_eq!(u.x_mask(), 1 << 63, "lane {k} X stays X");
        }
        for k in [0u8, 2, 4, 63] {
            assert_eq!(lv.unpack(k), v, "unselected lane {k} untouched");
        }
    }

    /// A packed lane set of `lanes` deterministic sample values.
    fn lane_set(width: u8, lanes: u8, salt: u64) -> LaneValues {
        let vals: Vec<Value> =
            (0..lanes).map(|k| lane_sample(width, salt ^ (k as u64 + 1))).collect();
        LaneValues::pack(&vals)
    }

    #[test]
    fn lane_ops_match_scalar_ops_per_lane() {
        // The sliced engine's foundation: every lane-parallel operator
        // must agree with the scalar Value op applied to each unpacked
        // lane, X semantics included.
        for &(width, lanes) in &[(1u8, 1u8), (1, 64), (7, 5), (32, 63), (64, 64)] {
            let a = lane_set(width, lanes, 0x1111);
            let b = lane_set(width, lanes, 0x2222);
            for k in 0..lanes {
                let (ak, bk) = (a.unpack(k), b.unpack(k));
                assert_eq!(a.not().unpack(k), ak.not(), "not w{width} l{k}");
                assert_eq!(a.and(&b).unpack(k), ak.and(&bk), "and w{width} l{k}");
                assert_eq!(a.or(&b).unpack(k), ak.or(&bk), "or w{width} l{k}");
                assert_eq!(a.xor(&b).unpack(k), ak.xor(&bk), "xor w{width} l{k}");
            }
        }
    }

    #[test]
    fn lane_mux_selects_per_lane() {
        // Lanes 0..: sel known-0, known-1, X — each lane must follow
        // its own select, including the X-pessimistic merge.
        let sels = [
            Value::zero(1),
            Value::one(1),
            Value::all_x(1),
            Value::one(1),
            Value::all_x(1),
        ];
        let sel = LaneValues::pack(&sels);
        let a = lane_set(16, 5, 0xAAAA);
        let b = lane_set(16, 5, 0xBBBB);
        let m = LaneValues::mux(&sel, &a, &b);
        for k in 0..5 {
            assert_eq!(
                m.unpack(k),
                Value::mux(&sels[k as usize], &a.unpack(k), &b.unpack(k)),
                "mux lane {k}"
            );
        }
    }

    #[test]
    fn lane_slice_concat_broadcast_match_scalar() {
        let a = lane_set(24, 9, 0x3333);
        let b = lane_set(8, 9, 0x4444);
        for k in 0..9 {
            assert_eq!(a.slice(5, 13).unpack(k), a.unpack(k).slice(5, 13));
            assert_eq!(a.concat(&b).unpack(k), a.unpack(k).concat(&b.unpack(k)));
        }
        let bit = LaneValues::pack(&[Value::zero(1), Value::one(1), Value::all_x(1)]);
        let wide = bit.broadcast_to(11);
        assert_eq!(wide.unpack(0), Value::zero(11));
        assert_eq!(wide.unpack(1), Value::ones(11));
        assert_eq!(wide.unpack(2), Value::all_x(11));
    }

    #[test]
    fn lanes_ne_and_ne_value_find_divergent_lanes() {
        let v = lane_sample(16, 3);
        let mut lv = LaneValues::broadcast(&v, 8);
        assert_eq!(lv.lanes_ne(&lv.clone()), 0);
        assert_eq!(lv.lanes_ne_value(&v), 0);
        let w = lane_sample(16, 4);
        lv.set_lane(6, &w);
        assert_eq!(lv.lanes_ne_value(&v), 1 << 6);
        let other = LaneValues::broadcast(&v, 8);
        assert_eq!(lv.lanes_ne(&other), 1 << 6);
        assert_eq!(other.lanes_ne(&lv), 1 << 6);
    }

    #[test]
    fn lane_garbage_above_width_never_leaks() {
        // from_planes with plane words full of garbage above the lane
        // count: unpacked values must still honour the Value invariant
        // (this is the masked-lane-garbage audit of the energy/toggle
        // path — toggles_to on unpacked values must count real bits
        // only).
        for width in [1u8, 63, 64] {
            let ones = vec![u64::MAX; width as usize];
            let xs = vec![0xAAAA_AAAA_AAAA_AAAA; width as usize];
            let lv = LaneValues::from_planes(&ones, &xs, 3);
            for k in 0..3 {
                let u = lv.unpack(k);
                assert_eq!(u.raw_bits() & u.x_mask(), 0);
                assert_eq!(u.raw_bits() & !Value::width_mask(width), 0);
                let toggles = Value::zero(width).toggles_to(&u);
                assert!(
                    toggles <= width as u32,
                    "width {width} lane {k}: {toggles} toggles from garbage"
                );
            }
        }
    }
}