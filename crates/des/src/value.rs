//! Multi-bit signal values with unknown (`X`) propagation.

use std::fmt;

/// A single-bit logic level: `0`, `1` or unknown.
///
/// The kernel uses three-state logic: every signal starts as [`Logic::X`]
/// until something drives it, and `X` propagates pessimistically through
/// combinational operators exactly as in an HDL simulator. There is no
/// high-impedance state because every net in the reproduced circuits has
/// exactly one driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    X,
}

impl Logic {
    /// Converts a boolean into a known logic level.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for known levels and `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the level is `0` or `1`.
    pub fn is_known(self) -> bool {
        !matches!(self, Logic::X)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic::Zero => write!(f, "0"),
            Logic::One => write!(f, "1"),
            Logic::X => write!(f, "x"),
        }
    }
}

/// A bit-vector value of width 1..=64 with a per-bit unknown mask.
///
/// Whole datapath buses are modelled as single signals carrying a
/// `Value`; transition counting works on bit toggles so activity-based
/// power estimation stays exact. Bits above `width` are always zero in
/// both `bits` and `x`.
///
/// # Examples
///
/// ```
/// use sal_des::Value;
/// let a = Value::from_u64(8, 0xA5);
/// let b = Value::from_u64(8, 0x5A);
/// assert_eq!(a.xor(&b), Value::from_u64(8, 0xFF));
/// assert_eq!(a.toggles_to(&b), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Value {
    width: u8,
    bits: u64,
    x: u64,
}

impl Value {
    /// Maximum supported bus width.
    pub const MAX_WIDTH: u8 = 64;

    fn mask(width: u8) -> u64 {
        debug_assert!((1..=64).contains(&width));
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// An all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn zero(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: 0, x: 0 }
    }

    /// An all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn ones(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: Self::mask(width), x: 0 }
    }

    /// An all-unknown value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn all_x(width: u8) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: 0, x: Self::mask(width) }
    }

    /// A single-bit `1`.
    pub fn one(width: u8) -> Value {
        Value::from_u64(width, 1)
    }

    /// A fully-known value from an integer; bits above `width` are
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn from_u64(width: u8, v: u64) -> Value {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        Value { width, bits: v & Self::mask(width), x: 0 }
    }

    /// A single-bit value from a [`Logic`] level.
    pub fn from_logic(l: Logic) -> Value {
        match l {
            Logic::Zero => Value::zero(1),
            Logic::One => Value::ones(1),
            Logic::X => Value::all_x(1),
        }
    }

    /// A single-bit value from a boolean.
    pub fn from_bool(b: bool) -> Value {
        Value::from_logic(Logic::from_bool(b))
    }

    /// The declared width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The integer value if every bit is known, else `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.x == 0 {
            Some(self.bits)
        } else {
            None
        }
    }

    /// The raw known-bit pattern (unknown bits read as zero).
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// The unknown-bit mask.
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// True when no bit is `X`.
    pub fn is_fully_known(&self) -> bool {
        self.x == 0
    }

    /// The logic level of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u8) -> Logic {
        assert!(i < self.width, "bit index out of range");
        if self.x >> i & 1 == 1 {
            Logic::X
        } else if self.bits >> i & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// The value as a single logic level.
    ///
    /// # Panics
    ///
    /// Panics if the width is not 1.
    pub fn as_logic(&self) -> Logic {
        assert_eq!(self.width, 1, "as_logic requires a 1-bit value");
        self.bit(0)
    }

    /// True if this is a 1-bit known `1`.
    #[inline]
    pub fn is_high(&self) -> bool {
        self.width == 1 && self.x == 0 && self.bits == 1
    }

    /// True if this is a 1-bit known `0`.
    #[inline]
    pub fn is_low(&self) -> bool {
        self.width == 1 && self.x == 0 && self.bits == 0
    }

    /// Extracts bits `[lo, lo+width)` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds this value's width or `width` is 0.
    pub fn slice(&self, lo: u8, width: u8) -> Value {
        assert!(width >= 1, "slice width must be at least 1");
        assert!(
            lo.checked_add(width).is_some_and(|hi| hi <= self.width),
            "slice out of range"
        );
        let m = Self::mask(width);
        Value { width, bits: (self.bits >> lo) & m, x: (self.x >> lo) & m }
    }

    /// Concatenates `hi` above `self` (`self` occupies the low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(&self, hi: &Value) -> Value {
        let w = self
            .width
            .checked_add(hi.width)
            .filter(|&w| w <= 64)
            .expect("concatenated width exceeds 64");
        Value {
            width: w,
            bits: self.bits | (hi.bits << self.width),
            x: self.x | (hi.x << self.width),
        }
    }

    /// Bitwise NOT with X propagation.
    #[inline]
    pub fn not(&self) -> Value {
        let m = Self::mask(self.width);
        Value { width: self.width, bits: !self.bits & m & !self.x, x: self.x }
    }

    fn check_width(&self, other: &Value) {
        assert_eq!(self.width, other.width, "width mismatch in bitwise op");
    }

    /// Bitwise AND: a known `0` on either side dominates an `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn and(&self, other: &Value) -> Value {
        self.check_width(other);
        let zero_a = !self.bits & !self.x;
        let zero_b = !other.bits & !other.x;
        let m = Self::mask(self.width);
        let x = (self.x | other.x) & !(zero_a | zero_b) & m;
        Value { width: self.width, bits: self.bits & other.bits & !x, x }
    }

    /// Bitwise OR: a known `1` on either side dominates an `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn or(&self, other: &Value) -> Value {
        self.check_width(other);
        let one_a = self.bits & !self.x;
        let one_b = other.bits & !other.x;
        let x = (self.x | other.x) & !(one_a | one_b);
        Value { width: self.width, bits: (self.bits | other.bits | one_a | one_b) & !x, x }
    }

    /// Bitwise XOR: any `X` input makes the output bit `X`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn xor(&self, other: &Value) -> Value {
        self.check_width(other);
        let x = self.x | other.x;
        Value { width: self.width, bits: (self.bits ^ other.bits) & !x, x }
    }

    /// Two-way multiplexer with X-pessimism: an unknown select yields
    /// `X` wherever the two data inputs disagree or are unknown.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` widths differ or `sel` is not 1 bit wide.
    pub fn mux(sel: &Value, a: &Value, b: &Value) -> Value {
        a.check_width(b);
        assert_eq!(sel.width(), 1, "mux select must be 1 bit");
        match sel.as_logic() {
            Logic::Zero => *a,
            Logic::One => *b,
            Logic::X => {
                let agree = !(a.bits ^ b.bits) & !a.x & !b.x;
                let m = Self::mask(a.width);
                Value { width: a.width, bits: a.bits & agree, x: m & !agree }
            }
        }
    }

    /// The number of bit positions whose *known* level differs between
    /// `self` and `next`, i.e. the toggle count charged by the power
    /// model for a `self → next` commit. A bit entering or leaving the
    /// `X` state counts as one toggle (pessimistic but consistent).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn toggles_to(&self, next: &Value) -> u32 {
        self.check_width(next);
        let x_change = self.x ^ next.x;
        let both_known = !self.x & !next.x;
        (((self.bits ^ next.bits) & both_known) | x_change).count_ones()
    }

    /// Reduction OR over all bits (`1` if any bit is known `1`, `0` if
    /// all bits are known `0`, else `X`).
    pub fn reduce_or(&self) -> Logic {
        if self.bits & !self.x != 0 {
            Logic::One
        } else if self.x != 0 {
            Logic::X
        } else {
            Logic::Zero
        }
    }

    /// Reduction AND over all bits.
    pub fn reduce_and(&self) -> Logic {
        let m = Self::mask(self.width);
        if (self.bits | self.x) & m != m {
            Logic::Zero
        } else if self.x != 0 {
            Logic::X
        } else {
            Logic::One
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl From<Logic> for Value {
    fn from(l: Logic) -> Value {
        Value::from_logic(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masking() {
        let v = Value::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
        assert_eq!(Value::zero(64).width(), 64);
        assert_eq!(Value::ones(64).to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_rejected() {
        let _ = Value::zero(0);
    }

    #[test]
    fn bit_access() {
        let v = Value::from_u64(4, 0b1010);
        assert_eq!(v.bit(0), Logic::Zero);
        assert_eq!(v.bit(1), Logic::One);
        assert_eq!(v.bit(3), Logic::One);
        assert!(Value::all_x(4).bit(2) == Logic::X);
    }

    #[test]
    fn not_with_x() {
        let v = Value::from_u64(2, 0b01);
        assert_eq!(v.not().to_u64(), Some(0b10));
        let x = Value::all_x(2);
        assert_eq!(x.not().x_mask(), 0b11);
    }

    #[test]
    fn and_dominant_zero() {
        let zero = Value::zero(1);
        let x = Value::all_x(1);
        assert!(zero.and(&x).is_low());
        assert_eq!(x.and(&Value::ones(1)).as_logic(), Logic::X);
    }

    #[test]
    fn or_dominant_one() {
        let one = Value::ones(1);
        let x = Value::all_x(1);
        assert!(one.or(&x).is_high());
        assert_eq!(x.or(&Value::zero(1)).as_logic(), Logic::X);
    }

    #[test]
    fn xor_propagates_x() {
        let x = Value::all_x(1);
        assert_eq!(x.xor(&Value::zero(1)).as_logic(), Logic::X);
        let a = Value::from_u64(8, 0xA5);
        let b = Value::from_u64(8, 0x5A);
        assert_eq!(a.xor(&b).to_u64(), Some(0xFF));
    }

    #[test]
    fn mux_known_and_unknown_select() {
        let a = Value::from_u64(4, 0b1100);
        let b = Value::from_u64(4, 0b1010);
        let s0 = Value::zero(1);
        let s1 = Value::ones(1);
        let sx = Value::all_x(1);
        assert_eq!(Value::mux(&s0, &a, &b), a);
        assert_eq!(Value::mux(&s1, &a, &b), b);
        let m = Value::mux(&sx, &a, &b);
        // bits 3 and 1 agree (1 and 1? 1100 vs 1010: bit3 1/1 agree, bit2 1/0
        // differ, bit1 0/1 differ, bit0 0/0 agree)
        assert_eq!(m.bit(3), Logic::One);
        assert_eq!(m.bit(0), Logic::Zero);
        assert_eq!(m.bit(2), Logic::X);
        assert_eq!(m.bit(1), Logic::X);
    }

    #[test]
    fn toggle_counting() {
        let a = Value::from_u64(8, 0xA5);
        let b = Value::from_u64(8, 0x5A);
        assert_eq!(a.toggles_to(&b), 8);
        assert_eq!(a.toggles_to(&a), 0);
        // X transitions count once per bit.
        assert_eq!(Value::all_x(8).toggles_to(&a), 8);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let v = Value::from_u64(32, 0xDEAD_BEEF);
        let lo = v.slice(0, 16);
        let hi = v.slice(16, 16);
        assert_eq!(lo.to_u64(), Some(0xBEEF));
        assert_eq!(hi.to_u64(), Some(0xDEAD));
        assert_eq!(lo.concat(&hi), v);
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::from_u64(4, 0b0010).reduce_or(), Logic::One);
        assert_eq!(Value::zero(4).reduce_or(), Logic::Zero);
        assert_eq!(Value::all_x(4).reduce_or(), Logic::X);
        assert_eq!(Value::ones(4).reduce_and(), Logic::One);
        assert_eq!(Value::from_u64(4, 0b0111).reduce_and(), Logic::Zero);
    }

    #[test]
    fn display_binary() {
        assert_eq!(Value::from_u64(4, 0b1010).to_string(), "1010");
        assert_eq!(Value::all_x(2).to_string(), "xx");
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_out_of_range_panics() {
        let _ = Value::from_u64(8, 0).slice(4, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn concat_overflow_panics() {
        let _ = Value::zero(40).concat(&Value::zero(40));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn and_width_mismatch_panics() {
        let _ = Value::zero(4).and(&Value::zero(8));
    }

    #[test]
    #[should_panic(expected = "1 bit")]
    fn mux_wide_select_panics() {
        let s = Value::zero(2);
        let _ = Value::mux(&s, &Value::zero(4), &Value::zero(4));
    }

    #[test]
    fn logic_conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_known() && !Logic::X.is_known());
        assert_eq!(Logic::X.to_string(), "x");
    }

    #[test]
    fn is_high_low_only_for_one_bit() {
        assert!(Value::one(1).is_high());
        assert!(!Value::from_u64(2, 0b01).is_high());
        assert!(Value::zero(1).is_low());
        assert!(!Value::zero(2).is_low());
        assert!(!Value::all_x(1).is_low());
    }

    #[test]
    fn from_logic_round_trip() {
        for l in [Logic::Zero, Logic::One, Logic::X] {
            assert_eq!(Value::from_logic(l).as_logic(), l);
            let v: Value = l.into();
            assert_eq!(v.as_logic(), l);
        }
    }
}