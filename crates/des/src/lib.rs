//! # sal-des — discrete-event simulation kernel
//!
//! An event-driven, gate-level digital simulator in the spirit of a
//! classic HDL simulation kernel. It is the software substitute for the
//! Cadence Spectre runs used in *Serialized Asynchronous Links for NoC*
//! (Ogg et al., DATE 2008): circuits are netlists of cells with
//! technology-derived delays, and switching activity is recorded per
//! signal so that a calibrated energy model can turn activity into
//! power numbers.
//!
//! ## Model
//!
//! * [`Time`] is an absolute femtosecond timestamp; gate delays are
//!   femtosecond durations.
//! * [`Value`] is a bit-vector of up to 64 bits with an unknown (`X`)
//!   mask, so both single wires and whole datapath buses are single
//!   signals. Transition counts are *bit-toggle* counts, which is what
//!   an activity-based power model needs.
//! * A [`Component`] is anything that reacts to input-signal changes
//!   (combinational and sequential cells, stimulus generators,
//!   monitors). Components drive their output signals through the
//!   scheduler with *inertial* delay semantics: re-driving an output
//!   cancels a still-pending older drive, so pulses shorter than a
//!   cell's delay are filtered exactly like in an HDL simulator.
//! * The [`Simulator`] owns the netlist, the event wheel and all
//!   statistics, and is fully deterministic: simultaneous events are
//!   processed in schedule order.
//!
//! ## Quick example
//!
//! Build an inverter driven by a stimulus and watch it switch:
//!
//! ```
//! use sal_des::{Simulator, Time, Value, Component, Ctx};
//!
//! struct Inv { a: sal_des::SignalId, y: sal_des::SignalId }
//! impl Component for Inv {
//!     fn on_input(&mut self, ctx: &mut Ctx<'_>) {
//!         let v = ctx.read(self.a).not();
//!         ctx.drive(self.y, v, Time::from_ps(20));
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let a = sim.add_signal("a", 1);
//! let y = sim.add_signal("y", 1);
//! let inv = sim.add_component("inv", Inv { a, y }, &[a]);
//! sim.connect_driver(inv, y);
//! sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
//! sim.run_until(Time::from_ns(1)).unwrap();
//! assert_eq!(sim.value(y).to_u64(), Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Behavioural revision of the simulation engine.
///
/// Bump whenever a change can alter *observable* simulation results —
/// event ordering, delay or energy models, fault semantics — i.e.
/// whenever the golden replay fixture has to be regenerated. Cached
/// measurement stores (the `sal-bench` Pareto campaign) key their
/// entries on this revision so stale results are re-measured instead
/// of replayed.
pub const ENGINE_REV: &str = "sal-des-r1";

mod compile;
mod component;
mod error;
mod event;
mod fault;
mod netgraph;
mod scope;
mod signal;
mod sim;
mod slice;
mod stats;
mod time;
pub mod trace;
mod value;
pub mod vcd;
mod watchdog;

pub use compile::{CombFunc, CombSpec, SpecOp};
pub use component::{Component, ComponentId, Ctx};
pub use error::{SimError, SimResult};
pub use fault::{FaultPlan, Glitch, SkewRule, StuckAt};
pub use netgraph::{
    BundleParams, CellClass, NetBundle, NetCapture, NetComponent, NetGraph, NetSignal, NetWatch,
};
pub use scope::{ScopeId, ScopePath};
pub use signal::{SignalId, SignalInfo};
pub use sim::{SimConfig, Simulator};
pub use trace::{
    JsonlSink, MemoryTrace, RingTrace, TraceDump, TraceRecord, TraceSignalMeta, TraceSink,
};
pub use watchdog::{DeadlockReport, StalledHandshake};
pub use stats::{ActivityReport, EnergyReport, ScopeEnergy, SimProfile};
pub use time::Time;
pub use value::{LaneValues, Logic, Value};
