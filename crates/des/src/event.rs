//! The event wheel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{ComponentId, SignalId, Time, Value};

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    /// Commit `value` to `signal` if `epoch` is still current.
    Drive { signal: SignalId, value: Value, epoch: u64 },
    /// Call `on_wake` on the component.
    Wake { comp: ComponentId },
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop earliest (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events ordered by (time, insertion
/// sequence). Two events at the same timestamp pop in the order they
/// were scheduled, which makes whole simulations reproducible.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(c: u32) -> EventKind {
        EventKind::Wake { comp: ComponentId(c) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), wake(0));
        q.push(Time::from_ps(10), wake(1));
        q.push(Time::from_ps(20), wake(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![Time::from_ps(10), Time::from_ps(20), Time::from_ps(30)]);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Time::from_ps(7), wake(i));
        }
        let seqs: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(2), wake(0));
        q.push(Time::from_ns(1), wake(1));
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        assert_eq!(q.len(), 2);
    }
}
