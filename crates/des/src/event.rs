//! The event wheel: a three-tier queue tuned for gate-level activity
//! (current-timestamp FIFO ring, append-only near-future lane, binary
//! heap for everything else).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::{ComponentId, SignalId, Time};

/// Width of the near-future lane. Events scheduled further than this
/// past the current timestamp go to the heap: they are rare (stimulus
/// schedules, long timeouts) and letting one of them park at the back
/// of the append-only lane would force every later gate-delay push
/// onto the heap's slow path.
const NEAR_WINDOW_FS: u64 = 1_000_000_000; // 1 µs

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    /// Commit the signal's pending value if `epoch` is still current.
    /// The value itself lives in the signal's `pending_value` slot —
    /// carrying it here too would grow every event by 24 bytes, and
    /// queue traffic is the kernel's dominant cost.
    Drive { signal: SignalId, epoch: u64 },
    /// Call `on_wake` on the component.
    Wake { comp: ComponentId },
    /// Execute the fault action at this index of the installed
    /// [`crate::fault::FaultState`] action table (stuck-at activation,
    /// glitch injection or glitch restore). Only ever queued when a
    /// non-empty fault plan was applied.
    Fault { action: u32 },
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl Event {
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop earliest (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events ordered by (time, insertion
/// sequence). Two events at the same timestamp pop in the order they
/// were scheduled, which makes whole simulations reproducible.
///
/// # Three-tier structure
///
/// A single binary heap pays `O(log n)` sift costs — on 64-byte
/// events — for *every* push and pop, yet gate-level schedules are
/// overwhelmingly benign: a committed edge fans out into events at the
/// same timestamp or a gate delay ahead of everything already queued.
/// The queue exploits that shape with three lanes:
///
/// * `ring` — events at the current timestamp (`ring_time`), FIFO.
///   Zero-delay churn pushes and pops here at `O(1)`.
/// * `near` — future events in ascending (time, seq), **append
///   only**: a push whose key is ≥ the lane's back and within
///   [`NEAR_WINDOW_FS`] of `ring_time` is an `O(1)` append. This is
///   the common case — gate delays almost always land past the back
///   of the lane.
/// * `far` — everything else (out-of-order pushes, events beyond the
///   window) in a binary heap. Correctness never depends on which
///   lane an event landed in: pops always take the global minimum.
///
/// # Invariants
///
/// * Every ring event has `time == ring_time`, in ascending `seq`.
/// * `near` is sorted ascending by (time, seq) — guaranteed by the
///   append-only admission rule — and holds no event at `ring_time`.
/// * After a timestamp migration the heap holds no event at
///   `ring_time` either, so (time, seq) pop order is identical to a
///   plain-heap implementation, event for event.
/// * Pushes earlier than `ring_time` are impossible: `ring_time`
///   trails the simulator's `now`, and delays are non-negative.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    ring: VecDeque<Event>,
    near: VecDeque<Event>,
    far: BinaryHeap<Event>,
    ring_time: Time,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            ring: VecDeque::new(),
            near: VecDeque::new(),
            far: BinaryHeap::new(),
            ring_time: Time::ZERO,
            next_seq: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, time: Time, kind: EventKind) {
        debug_assert!(
            time >= self.ring_time,
            "event scheduled in the past: {time:?} < {:?}",
            self.ring_time
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { time, seq, kind };
        if time == self.ring_time {
            self.ring.push_back(ev);
        } else if time.as_fs() - self.ring_time.as_fs() <= NEAR_WINDOW_FS {
            if self.near.back().is_none_or(|b| b.key() < (time, seq)) {
                self.near.push_back(ev);
            } else {
                // Out-of-order within the window: sorted insert. The
                // offending key is typically close to one end (mixed
                // femtosecond wire and picosecond gate delays), and
                // `VecDeque::insert` shifts whichever side is
                // shorter, so this stays cheap.
                let pos = self.near.partition_point(|e| e.key() < (time, seq));
                self.near.insert(pos, ev);
            }
        } else {
            self.far.push(ev);
        }
    }

    /// Unconditional pop; the simulator itself goes through
    /// [`EventQueue::pop_at_or_before`], which fuses the horizon check.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<Event> {
        if let Some(ev) = self.ring.pop_front() {
            return Some(ev);
        }
        if let Some(ev) = self.pop_lone_near() {
            return Some(ev);
        }
        self.advance_ring()?;
        self.ring.pop_front()
    }

    /// Fast path for the dominant schedule shape: the earliest near
    /// event is the *only* event at its timestamp (strictly earlier
    /// than the rest of the near lane and all of the heap). Popping it
    /// directly skips the migrate-into-ring round trip. Call only with
    /// an empty ring.
    #[cfg(test)]
    fn pop_lone_near(&mut self) -> Option<Event> {
        debug_assert!(self.ring.is_empty());
        let t = self.near.front()?.time;
        let far_later = self.far.peek().is_none_or(|f| f.time > t);
        let near_later = self.near.get(1).is_none_or(|n| n.time > t);
        if far_later && near_later {
            self.ring_time = t;
            self.near.pop_front()
        } else {
            None
        }
    }

    /// Migrates every event carrying the earliest queued timestamp
    /// from the near lane and the heap into the ring (merged by seq)
    /// and makes that timestamp the new `ring_time`. Returns `None` if
    /// the queue is empty.
    fn advance_ring(&mut self) -> Option<()> {
        let t = match (self.near.front(), self.far.peek()) {
            (Some(n), Some(f)) => n.time.min(f.time),
            (Some(n), None) => n.time,
            (None, Some(f)) => f.time,
            (None, None) => return None,
        };
        self.ring_time = t;
        // Both sources yield their time-`t` events in ascending seq;
        // merge the two runs so the ring stays seq-sorted.
        loop {
            let from_near = match (self.near.front(), self.far.peek()) {
                (Some(n), Some(f)) if n.time == t && f.time == t => n.seq < f.seq,
                (Some(n), _) if n.time == t => true,
                (_, Some(f)) if f.time == t => false,
                _ => break,
            };
            let ev = if from_near {
                self.near.pop_front().expect("checked above")
            } else {
                self.far.pop().expect("checked above")
            };
            self.ring.push_back(ev);
        }
        Some(())
    }

    /// Earliest queued timestamp across all three lanes. The compiled
    /// engine's calendar merge peeks here every loop iteration to
    /// decide which container owns the next delta.
    pub fn peek_time(&self) -> Option<Time> {
        if self.ring.front().is_some() {
            return Some(self.ring_time);
        }
        match (self.near.front(), self.far.peek()) {
            (Some(n), Some(f)) => Some(n.time.min(f.time)),
            (Some(n), None) => Some(n.time),
            (None, Some(f)) => Some(f.time),
            (None, None) => None,
        }
    }

    /// Pops the next event if its time is `<= horizon`. Equivalent to
    /// a `peek_time` check followed by `pop`, in one traversal — this
    /// is the simulator main-loop fast path.
    #[inline]
    pub fn pop_at_or_before(&mut self, horizon: Time) -> Option<Event> {
        if let Some(ev) = self.ring.front() {
            if ev.time > horizon {
                return None;
            }
            return self.ring.pop_front();
        }
        if let Some(n) = self.near.front() {
            let t = n.time;
            if self.far.peek().is_none_or(|f| f.time > t) {
                // The near front is the global minimum; if it is also
                // strictly earlier than the rest of its own lane it is
                // the *only* event at its timestamp and pops directly,
                // skipping the migrate-into-ring round trip (see
                // `pop_lone_near`). This is the dominant schedule
                // shape for gate-delay chains.
                if t > horizon {
                    return None;
                }
                if self.near.get(1).is_none_or(|x| x.time > t) {
                    self.ring_time = t;
                    return self.near.pop_front();
                }
            } else if self.far.peek().expect("checked above").time.min(t) > horizon {
                return None;
            }
        } else if self.far.peek()?.time > horizon {
            return None;
        }
        self.advance_ring()?;
        self.ring.pop_front()
    }

    /// The next event, if it is a `Drive` at the given time. Used by
    /// the simulator to batch-commit a burst of same-timestamp drives
    /// before evaluating their fanout once.
    #[inline]
    pub fn pop_drive_at(&mut self, time: Time) -> Option<Event> {
        // A same-time event always lives in the ring: the ring is
        // primed with every queued event of the current timestamp, and
        // later same-time pushes go straight to the ring.
        match self.ring.front() {
            Some(ev) if ev.time == time && matches!(ev.kind, EventKind::Drive { .. }) => {
                self.ring.pop_front()
            }
            _ => None,
        }
    }

    /// [`EventQueue::pop_drive_at`] for callers that did not reach
    /// `time` by popping this queue: primes the ring with the events
    /// of that timestamp first. The compiled calendar uses this when a
    /// calendar delta ties with queued drives — those drives must join
    /// the calendar commits' delta batch (all same-time commits land
    /// before any fanout evaluates), exactly as they would have shared
    /// one delta in the interpreted kernel. Without the priming, a
    /// due-now queue drive would stay buried in the near/far lanes,
    /// the fanout would evaluate against the stale value, and an
    /// inertial re-drive could cancel a commit that was already due.
    #[inline]
    pub fn pop_leading_drive_at(&mut self, time: Time) -> Option<Event> {
        if self.ring.front().is_none() {
            if self.peek_time() != Some(time) {
                return None;
            }
            self.advance_ring();
        }
        self.pop_drive_at(time)
    }

    /// Whether the next due event at `time` is a `Drive`. Primes the
    /// ring (the same migration a pop would do) so the answer reflects
    /// true seq order. The compiled calendar's tie-break consults this:
    /// at a time tie the calendar may only go first when the queue's
    /// due event is a drive that can join the calendar's commit batch.
    /// A non-drive at the front (a wake or fault scheduled long ago,
    /// hence with an earlier seq) must run as its own delta *before*
    /// the drive batch, exactly as the interpreted loop orders it —
    /// otherwise the drives queued behind it sit out the batch, the
    /// fanout evaluates against stale values, and an inertial re-drive
    /// cancels commits that were already due.
    #[inline]
    pub fn due_is_drive(&mut self, time: Time) -> bool {
        if self.ring.front().is_none() {
            if self.peek_time() != Some(time) {
                return false;
            }
            self.advance_ring();
        }
        matches!(
            self.ring.front(),
            Some(ev) if ev.time == time && matches!(ev.kind, EventKind::Drive { .. })
        )
    }

    pub fn len(&self) -> usize {
        self.ring.len() + self.near.len() + self.far.len()
    }

    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.near.is_empty() && self.far.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(c: u32) -> EventKind {
        EventKind::Wake { comp: ComponentId(c) }
    }

    fn drive(s: u32) -> EventKind {
        EventKind::Drive { signal: SignalId(s), epoch: 0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), wake(0));
        q.push(Time::from_ps(10), wake(1));
        q.push(Time::from_ps(20), wake(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![Time::from_ps(10), Time::from_ps(20), Time::from_ps(30)]);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Time::from_ps(7), wake(i));
        }
        let seqs: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(2), wake(0));
        q.push(Time::from_ns(1), wake(1));
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_pushes_during_drain_keep_seq_order() {
        // Schedule a burst at t=10, start draining, then push more
        // t=10 events mid-drain: they must come out after the
        // original burst, still before anything at t=20.
        let mut q = EventQueue::new();
        q.push(Time::from_ps(20), wake(100));
        for i in 0..3 {
            q.push(Time::from_ps(10), wake(i));
        }
        let first = q.pop().unwrap();
        assert_eq!((first.time, first.seq), (Time::from_ps(10), 1));
        q.push(Time::from_ps(10), wake(50)); // mid-drain, same time
        let rest: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(
            rest,
            vec![
                (Time::from_ps(10), 2),
                (Time::from_ps(10), 3),
                (Time::from_ps(10), 4), // the mid-drain push
                (Time::from_ps(20), 0),
            ]
        );
    }

    #[test]
    fn pop_drive_at_takes_only_same_time_drives() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(5), drive(0));
        q.push(Time::from_ps(5), drive(1));
        q.push(Time::from_ps(5), wake(2));
        q.push(Time::from_ps(5), drive(3));

        let first = q.pop().unwrap();
        assert!(matches!(first.kind, EventKind::Drive { signal: SignalId(0), .. }));
        // Next is a drive at the same time: batched.
        let second = q.pop_drive_at(Time::from_ps(5)).unwrap();
        assert!(matches!(second.kind, EventKind::Drive { signal: SignalId(1), .. }));
        // A wake stops the batch even though more drives follow.
        assert!(q.pop_drive_at(Time::from_ps(5)).is_none());
        let third = q.pop().unwrap();
        assert!(matches!(third.kind, EventKind::Wake { .. }));
        let fourth = q.pop_drive_at(Time::from_ps(5)).unwrap();
        assert!(matches!(fourth.kind, EventKind::Drive { signal: SignalId(3), .. }));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_and_lanes_agree_with_reference_ordering() {
        // Mixed schedule with repeats: pop order must be (time, seq).
        let times = [7u64, 3, 7, 7, 1, 3, 9, 1, 7, 2];
        let mut q = EventQueue::new();
        let mut reference: Vec<(Time, u64)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ps(t), wake(i as u32));
            reference.push((Time::from_ps(t), i as u64));
        }
        reference.sort();
        let popped: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(popped, reference);
    }

    #[test]
    fn far_future_event_does_not_poison_near_lane() {
        // One event far past the window, then a stream of short-delay
        // pushes in ascending time: order must still be exact, and the
        // near lane must keep taking the short-delay events (checked
        // indirectly through ordering — poisoning is a perf bug, but
        // the merge correctness is what this guards).
        let mut q = EventQueue::new();
        q.push(Time::from_us(50), wake(999)); // far beyond the 1 µs window
        for i in 0..100u64 {
            q.push(Time::from_ps(10 * (i + 1)), wake(i as u32));
        }
        let mut last = (Time::ZERO, 0u64);
        let mut count = 0;
        while let Some(ev) = q.pop() {
            assert!((ev.time, ev.seq) > last || count == 0);
            last = (ev.time, ev.seq);
            count += 1;
        }
        assert_eq!(count, 101);
        assert_eq!(last.0, Time::from_us(50));
    }

    #[test]
    fn same_time_split_across_lanes_merges_by_seq() {
        // Force an equal-timestamp pair to live in different lanes:
        // seq 0 at t=100 goes to near; seq 1 at t=50 misses the
        // append rule (50 < back) and goes to the heap; seq 2 at
        // t=100 appends to near. Then another at t=50. Pop order must
        // be pure (time, seq).
        let mut q = EventQueue::new();
        q.push(Time::from_ps(100), wake(0)); // near
        q.push(Time::from_ps(50), wake(1)); // far (out of order)
        q.push(Time::from_ps(100), wake(2)); // near
        q.push(Time::from_ps(50), wake(3)); // far
        let popped: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(
            popped,
            vec![
                (Time::from_ps(50), 1),
                (Time::from_ps(50), 3),
                (Time::from_ps(100), 0),
                (Time::from_ps(100), 2),
            ]
        );
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), wake(0));
        q.push(Time::from_ps(20), wake(1));
        q.push(Time::from_ps(30), wake(2));
        assert_eq!(q.pop_at_or_before(Time::from_ps(5)).map(|e| e.seq), None);
        assert_eq!(q.pop_at_or_before(Time::from_ps(20)).map(|e| e.seq), Some(0));
        assert_eq!(q.pop_at_or_before(Time::from_ps(20)).map(|e| e.seq), Some(1));
        assert_eq!(q.pop_at_or_before(Time::from_ps(20)).map(|e| e.seq), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_at_or_before(Time::MAX).map(|e| e.seq), Some(2));
        assert!(q.is_empty());
    }
}
