//! Value-change-dump (VCD) export.
//!
//! A thin convenience wrapper over the trace subsystem: when the
//! simulator carries a record-retaining [`TraceSink`](crate::trace::TraceSink)
//! (installed by [`SimConfig::trace`](crate::SimConfig) or
//! [`Simulator::set_trace_sink`](crate::Simulator::set_trace_sink)),
//! [`write_vcd`] captures a [`TraceDump`](crate::trace::TraceDump) and
//! serialises it in the standard IEEE 1364 VCD format readable by
//! GTKWave and most EDA waveform viewers.

use std::io::{self, Write};

use crate::trace::TraceDump;
use crate::Simulator;

/// Writes the recorded trace of `sim` as a VCD document.
///
/// Scopes are flattened into one VCD module per hierarchical scope
/// path. The timescale is 1 fs, matching the kernel's resolution.
///
/// # Errors
///
/// Returns any I/O error from the writer. Returns
/// [`io::ErrorKind::InvalidInput`] if the simulator carries no trace
/// sink that retains records.
///
/// # Examples
///
/// ```
/// use sal_des::{SimConfig, Simulator, Time, Value};
/// let mut sim = Simulator::with_config(SimConfig { trace: true, ..Default::default() });
/// let a = sim.add_signal("a", 1);
/// sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(5), Value::one(1))]);
/// sim.run_to_quiescence()?;
/// let mut out = Vec::new();
/// sal_des::vcd::write_vcd(&sim, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$timescale 1 fs $end"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_vcd<W: Write>(sim: &Simulator, w: W) -> io::Result<()> {
    let dump = TraceDump::capture(sim).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "simulator carries no record-retaining trace sink \
             (enable SimConfig::trace or install a MemoryTrace/RingTrace)",
        )
    })?;
    dump.write_vcd(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::idcode;
    use crate::{SimConfig, Time, Value};

    #[test]
    fn idcodes_are_unique_and_printable() {
        let codes: Vec<String> = (0..500).map(idcode).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        assert!(codes.iter().all(|c| c.bytes().all(|b| (b'!'..=b'~').contains(&b))));
    }

    #[test]
    fn writes_header_and_changes() {
        let mut sim = Simulator::with_config(SimConfig { trace: true, ..Default::default() });
        sim.push_scope("blk");
        let a = sim.add_signal("a", 4);
        sim.pop_scope();
        sim.stimulus(
            a,
            &[(Time::ZERO, Value::from_u64(4, 0)), (Time::from_ps(3), Value::from_u64(4, 0b1010))],
        );
        sim.run_to_quiescence().unwrap();
        let mut out = Vec::new();
        write_vcd(&sim, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$scope module blk $end"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("#3000"));
        assert!(text.contains("b1010 "));
    }

    #[test]
    fn errors_without_trace() {
        let sim = Simulator::new();
        let mut out = Vec::new();
        let err = write_vcd(&sim, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
