//! Value-change-dump (VCD) export.
//!
//! When a [`Simulator`](crate::Simulator) is built with
//! [`SimConfig::trace`](crate::SimConfig) enabled, every committed
//! signal change is recorded; [`write_vcd`] serialises the recording in
//! the standard IEEE 1364 VCD format readable by GTKWave and most EDA
//! waveform viewers.

use std::io::{self, Write};

use crate::{SignalId, Simulator, Value};

fn idcode(mut n: usize) -> String {
    // Printable VCD identifier codes: '!'..='~'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn fmt_value(v: &Value) -> String {
    if v.width() == 1 {
        match v.bit(0) {
            crate::Logic::Zero => "0".to_string(),
            crate::Logic::One => "1".to_string(),
            crate::Logic::X => "x".to_string(),
        }
    } else {
        let mut s = String::from("b");
        for i in (0..v.width()).rev() {
            s.push(match v.bit(i) {
                crate::Logic::Zero => '0',
                crate::Logic::One => '1',
                crate::Logic::X => 'x',
            });
        }
        s.push(' ');
        s
    }
}

/// Writes the recorded trace of `sim` as a VCD document.
///
/// Scopes are flattened into one VCD module per hierarchical scope
/// path. The timescale is 1 fs, matching the kernel's resolution.
///
/// # Errors
///
/// Returns any I/O error from the writer. Returns
/// [`io::ErrorKind::InvalidInput`] if the simulator was built without
/// tracing enabled.
///
/// # Examples
///
/// ```
/// use sal_des::{SimConfig, Simulator, Time, Value};
/// let mut sim = Simulator::with_config(SimConfig { trace: true, ..Default::default() });
/// let a = sim.add_signal("a", 1);
/// sim.stimulus(a, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(5), Value::one(1))]);
/// sim.run_to_quiescence()?;
/// let mut out = Vec::new();
/// sal_des::vcd::write_vcd(&sim, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$timescale 1 fs $end"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_vcd<W: Write>(sim: &Simulator, mut w: W) -> io::Result<()> {
    let trace = sim.trace().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "simulator was not built with SimConfig::trace enabled",
        )
    })?;

    writeln!(w, "$date reproduction of Ogg et al. DATE 2008 $end")?;
    writeln!(w, "$version sal-des $end")?;
    writeln!(w, "$timescale 1 fs $end")?;

    // Group signals by scope path to emit VCD scopes.
    let mut by_scope: Vec<(String, Vec<SignalId>)> = Vec::new();
    for sig in sim.signal_ids() {
        let scope = sim.signal_scope_path(sig);
        match by_scope.iter_mut().find(|(s, _)| *s == scope) {
            Some((_, v)) => v.push(sig),
            None => by_scope.push((scope, vec![sig])),
        }
    }
    for (scope, sigs) in &by_scope {
        let name = if scope.is_empty() { "top" } else { scope.as_str() };
        // VCD module names cannot contain dots; replace them.
        writeln!(w, "$scope module {} $end", name.replace('.', "_"))?;
        for &sig in sigs {
            let (name, width) = sim.signal_state(sig);
            writeln!(w, "$var wire {} {} {} $end", width, idcode(sig.index()), name)?;
        }
        writeln!(w, "$upscope $end")?;
    }
    writeln!(w, "$enddefinitions $end")?;

    writeln!(w, "$dumpvars")?;
    for sig in sim.signal_ids() {
        let v = Value::all_x(sim.signal_state(sig).1);
        writeln!(w, "{}{}", fmt_value(&v), idcode(sig.index()))?;
    }
    writeln!(w, "$end")?;

    let mut last_time = None;
    for (t, sig, v) in trace {
        if last_time != Some(*t) {
            writeln!(w, "#{}", t.as_fs())?;
            last_time = Some(*t);
        }
        writeln!(w, "{}{}", fmt_value(v), idcode(sig.index()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Time};

    #[test]
    fn idcodes_are_unique_and_printable() {
        let codes: Vec<String> = (0..500).map(idcode).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        assert!(codes.iter().all(|c| c.bytes().all(|b| (b'!'..=b'~').contains(&b))));
    }

    #[test]
    fn writes_header_and_changes() {
        let mut sim = Simulator::with_config(SimConfig { trace: true, ..Default::default() });
        sim.push_scope("blk");
        let a = sim.add_signal("a", 4);
        sim.pop_scope();
        sim.stimulus(
            a,
            &[(Time::ZERO, Value::from_u64(4, 0)), (Time::from_ps(3), Value::from_u64(4, 0b1010))],
        );
        sim.run_to_quiescence().unwrap();
        let mut out = Vec::new();
        write_vcd(&sim, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$scope module blk $end"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("#3000"));
        assert!(text.contains("b1010 "));
    }

    #[test]
    fn errors_without_trace() {
        let sim = Simulator::new();
        let mut out = Vec::new();
        let err = write_vcd(&sim, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
