//! Simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp or a duration, in femtoseconds.
///
/// One `u64` of femtoseconds covers roughly five hours of simulated
/// time, far beyond anything the link experiments need (they run for
/// hundreds of nanoseconds). Gate delays in a 0.12 µm library are tens
/// of picoseconds, so femtosecond resolution leaves three decimal
/// digits of headroom below the smallest physical delay.
///
/// # Examples
///
/// ```
/// use sal_des::Time;
/// let t = Time::from_ns(1) + Time::from_ps(500);
/// assert_eq!(t.as_fs(), 1_500_000);
/// assert_eq!(t.as_ns(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Time(u64);

impl Time {
    /// The zero timestamp (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from femtoseconds.
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps * 1_000)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000_000)
    }

    /// Creates a time from a fractional number of nanoseconds,
    /// rounding to the nearest femtosecond. Negative inputs saturate
    /// to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        Time((ns * 1e6).round().max(0.0) as u64)
    }

    /// Creates a time from a fractional number of picoseconds,
    /// rounding to the nearest femtosecond. Negative inputs saturate
    /// to zero.
    pub fn from_ps_f64(ps: f64) -> Self {
        Time((ps * 1e3).round().max(0.0) as u64)
    }

    /// The raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// This time expressed in picoseconds (may be fractional).
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in nanoseconds (may be fractional).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e15
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns true if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The frequency whose period is this duration, in Hz.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    pub fn period_to_hz(self) -> f64 {
        assert!(self.0 > 0, "zero period has no frequency");
        1e15 / self.0 as f64
    }

    /// The period of a clock of the given frequency in Hz, rounded to
    /// the nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Time {
        assert!(hz > 0.0 && hz.is_finite(), "frequency must be positive");
        Time((1e15 / hz).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("simulation time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("simulation time overflow"))
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0s")
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}ns", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}ps", self.0 / 1_000)
        } else {
            write!(f, "{}fs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ps(1).as_fs(), 1_000);
        assert_eq!(Time::from_ns(1).as_fs(), 1_000_000);
        assert_eq!(Time::from_us(1).as_fs(), 1_000_000_000);
        assert_eq!(Time::from_ns(3), Time::from_ps(3_000));
    }

    #[test]
    fn float_constructors_round() {
        assert_eq!(Time::from_ns_f64(1.5).as_fs(), 1_500_000);
        assert_eq!(Time::from_ps_f64(0.4).as_fs(), 400);
        assert_eq!(Time::from_ns_f64(-2.0), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ps(10);
        let b = Time::from_ps(4);
        assert_eq!(a + b, Time::from_ps(14));
        assert_eq!(a - b, Time::from_ps(6));
        assert_eq!(a * 3, Time::from_ps(30));
        assert_eq!(a / 2, Time::from_ps(5));
        assert_eq!(a.saturating_sub(Time::from_ns(1)), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Time::from_ps(1) - Time::from_ps(2);
    }

    #[test]
    fn frequency_round_trip() {
        let t = Time::from_hz(100e6);
        assert_eq!(t, Time::from_ns(10));
        assert!((t.period_to_hz() - 100e6).abs() < 1.0);
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(Time::ZERO.to_string(), "0s");
        assert_eq!(Time::from_ns(5).to_string(), "5ns");
        assert_eq!(Time::from_ps(5).to_string(), "5ps");
        assert_eq!(Time::from_fs(5).to_string(), "5fs");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ps(1), Time::from_ps(2)].into_iter().sum();
        assert_eq!(total, Time::from_ps(3));
    }
}
