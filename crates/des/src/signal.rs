//! Signals (nets) in the netlist.

use crate::{ComponentId, ScopeId, Time, Value};

/// Identifier of a signal in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index of this signal in the netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Public, read-only view of a signal's metadata and statistics.
#[derive(Debug, Clone)]
pub struct SignalInfo {
    /// Local name within its scope.
    pub name: String,
    /// Full hierarchical name.
    pub path: String,
    /// Width in bits.
    pub width: u8,
    /// Current committed value.
    pub value: Value,
    /// Total bit toggles committed so far.
    pub toggles: u64,
    /// Time of the last committed change.
    pub last_change: Time,
    /// Energy charged per bit toggle, in femtojoules.
    pub energy_per_toggle_fj: f64,
}

#[derive(Debug)]
pub(crate) struct SignalState {
    pub name: String,
    pub width: u8,
    pub scope: ScopeId,
    pub value: Value,
    pub last_change: Time,
    pub toggles: u64,
    /// Components whose inputs include this signal.
    pub fanout: Vec<ComponentId>,
    /// The unique driving component, if attached.
    pub driver: Option<ComponentId>,
    /// Monotone counter used to cancel superseded (inertial) drives.
    pub drive_epoch: u64,
    /// True while a drive event for this signal is in the queue.
    pub pending: bool,
    /// The value the in-flight drive will commit (valid while
    /// `pending`); re-driving the same value keeps the earlier event.
    pub pending_value: Value,
    /// Energy charged per bit toggle (set by the technology annotator).
    pub energy_per_toggle_fj: f64,
    /// Toggle count at the last energy fold point: toggles accrued
    /// beyond this have not yet been converted into scope energy (the
    /// conversion happens lazily, off the commit hot path).
    pub toggles_energy_base: u64,
}

impl SignalState {
    pub fn new(name: String, width: u8, scope: ScopeId) -> Self {
        SignalState {
            name,
            width,
            scope,
            value: Value::all_x(width),
            last_change: Time::ZERO,
            toggles: 0,
            fanout: Vec::new(),
            driver: None,
            drive_epoch: 0,
            pending: false,
            pending_value: Value::all_x(width),
            energy_per_toggle_fj: 0.0,
            toggles_energy_base: 0,
        }
    }
}
