//! Bit-sliced multi-seed campaign engine.
//!
//! A glitch-robustness campaign runs the *same* netlist with the
//! *same* stimulus many times, varying only which bits each storm
//! flips. Those runs share almost everything: topology, delays,
//! handshake timing, the stimulus schedule. The sliced engine
//! exploits that by packing up to 64 campaign seeds ("lanes") into
//! the bit-planes of one **carrier** simulation:
//!
//! - the carrier executes the *union* of every lane's glitches, so
//!   every commit any lane would see exists in the carrier's event
//!   stream;
//! - every tracked signal additionally carries a [`LaneValues`]
//!   plane set, advanced lane-parallel through the compiled engine's
//!   `eval_lanes` — one bitwise operation per plane advances all 64
//!   lanes at once;
//! - glitch injection XORs each lane's own mask into that lane only,
//!   and state-cell outputs follow their registered capture rules
//!   (`q` inherits `d`'s planes when the carrier latched `d`
//!   through).
//!
//! The fidelity contract is *per-lane value equivalence at carrier
//! commit times*: as long as a lane's values only differ from the
//! carrier where the plane algebra can follow them, its committed
//! value trajectory is bit-identical to a scalar run seeded with that
//! lane's masks. Where timing itself would change — a lane whose
//! inertial skip decision differs from the carrier's, a capture whose
//! per-lane input cannot be inferred, a force cancelling an in-flight
//! drive only some lanes had — the affected lanes are **diverged**
//! and the campaign driver replays them scalar. Divergence detection
//! is conservative: a false positive costs one scalar replay, never a
//! wrong result.

use crate::{ComponentId, LaneValues, SignalId, Time, Value};

/// `rule_of`/`tap_of` sentinel: no entry.
const NONE: u32 = u32::MAX;

/// One registered glitch site: the per-lane masks of a shared
/// `(signal, at, width)` storm event.
#[derive(Debug)]
struct Site {
    signal: SignalId,
    at: Time,
    width: Time,
    /// XOR mask per lane (index = lane).
    masks: Vec<u64>,
    /// Lanes with a non-zero mask (they force in their scalar run).
    nonzero: u64,
    /// Planes captured just before the glitch was applied, restored
    /// by the paired restore force.
    saved: Option<LaneValues>,
}

/// One expected carrier force: a site's application or restoration.
#[derive(Debug, Clone, Copy)]
struct Expected {
    time: Time,
    site: u32,
    restore: bool,
    done: bool,
}

/// A state-cell capture rule `q <- d` with its launch snapshots: the
/// planes of `d` as of its last two commits. A passthrough capture
/// (`q` committing the value `d` held when the cell evaluated)
/// inherits the matching snapshot's planes; anything else demotes the
/// lanes whose `d` the carrier cannot vouch for.
#[derive(Debug)]
struct Capture {
    launched: Option<Launched>,
    prev: Option<Launched>,
}

/// One launch snapshot: `d`'s planes (`None` = all lanes equal the
/// carrier) and carrier value at a commit of `d`.
#[derive(Debug)]
struct Launched {
    plane: Option<LaneValues>,
    value: Value,
}

/// The active sliced campaign pass attached to a compiled simulator.
#[derive(Debug)]
pub(crate) struct Sliced {
    lanes: u8,
    /// Committed planes per signal; `None` = all lanes hold the
    /// carrier's committed value.
    committed: Vec<Option<LaneValues>>,
    /// In-flight planes of pending compiled drives.
    pending: Vec<Option<LaneValues>>,
    /// Capture-rule index per signal (`NONE` = no rule).
    rule_of: Vec<u32>,
    rules: Vec<Capture>,
    /// Capture rules fed by each signal (launch-snapshot refresh).
    rules_by_input: Vec<Vec<u32>>,
    /// Input signals read by each *non-member* component — the
    /// conservative divergence probe for commits and skips the plane
    /// algebra cannot follow. Empty for compiled members.
    reads: Vec<Vec<SignalId>>,
    sites: Vec<Site>,
    /// Expected carrier forces, sorted by time; `cursor` trails the
    /// carrier's commit stream.
    sched: Vec<Expected>,
    cursor: usize,
    /// Tap-log index per signal (`NONE` = untapped).
    tap_of: Vec<u32>,
    tap_logs: Vec<Vec<(Time, LaneValues)>>,
    /// Lanes demoted to scalar replay.
    pub diverged: u64,
}

impl Sliced {
    /// Builds a pass over `nsignals` signals, with the registered
    /// capture rules and the per-component non-member read lists.
    pub fn new(
        lanes: u8,
        nsignals: usize,
        capture_rules: &[(SignalId, SignalId)],
        reads: Vec<Vec<SignalId>>,
    ) -> Sliced {
        assert!((1..=64).contains(&lanes), "lanes must be 1..=64");
        let mut rule_of = vec![NONE; nsignals];
        let mut rules_by_input: Vec<Vec<u32>> = vec![Vec::new(); nsignals];
        let mut rules = Vec::with_capacity(capture_rules.len());
        for &(q, d) in capture_rules {
            let idx = rules.len() as u32;
            assert_eq!(rule_of[q.index()], NONE, "duplicate capture rule for one signal");
            rule_of[q.index()] = idx;
            rules_by_input[d.index()].push(idx);
            rules.push(Capture { launched: None, prev: None });
        }
        Sliced {
            lanes,
            committed: vec![None; nsignals],
            pending: vec![None; nsignals],
            rule_of,
            rules,
            rules_by_input,
            reads,
            sites: Vec::new(),
            sched: Vec::new(),
            cursor: 0,
            tap_of: vec![NONE; nsignals],
            tap_logs: Vec::new(),
            diverged: 0,
        }
    }

    fn lane_mask(&self) -> u64 {
        Value::width_mask(self.lanes)
    }

    /// Registers a glitch site: at `at`, XOR `masks[k]` into lane `k`
    /// of `signal` for `width`. The carrier must separately execute
    /// the union glitch at the same site (the simulator's
    /// `slice_glitch` wrapper schedules both halves).
    ///
    /// # Panics
    ///
    /// Panics if `masks` doesn't match the lane count, `width` is
    /// zero, or the site overlaps an earlier one on the same signal.
    pub fn add_glitch(&mut self, at: Time, signal: SignalId, width: Time, masks: &[u64]) {
        assert_eq!(masks.len(), self.lanes as usize, "one mask per lane");
        assert!(!width.is_zero(), "sliced glitch width must be non-zero");
        let end = at + width;
        for s in &self.sites {
            if s.signal == signal {
                let s_end = s.at + s.width;
                assert!(
                    end < s.at || s_end < at,
                    "sliced glitches on one signal must not overlap"
                );
            }
        }
        let nonzero = masks
            .iter()
            .enumerate()
            .fold(0u64, |acc, (k, &m)| if m != 0 { acc | 1 << k } else { acc });
        let site = self.sites.len() as u32;
        self.sites.push(Site { signal, at, width, masks: masks.to_vec(), nonzero, saved: None });
        for (time, restore) in [(at, false), (end, true)] {
            let e = Expected { time, site, restore, done: false };
            let i = self.sched.partition_point(|x| x.time <= time);
            self.sched.insert(i, e);
        }
    }

    /// Registers a tap on `signal`, seeding its log with the current
    /// planes so reconstruction has a value at every time.
    pub fn add_tap(&mut self, signal: SignalId, now: Time, current: &Value) {
        if self.tap_of[signal.index()] != NONE {
            return;
        }
        let idx = self.tap_logs.len() as u32;
        self.tap_of[signal.index()] = idx;
        let snap = self.effective(signal, current);
        self.tap_logs.push(vec![(now, snap)]);
    }

    /// The per-lane commit history of a tapped signal.
    pub fn tap_history(&self, signal: SignalId) -> Option<&[(Time, LaneValues)]> {
        match self.tap_of.get(signal.index()) {
            Some(&idx) if idx != NONE => Some(&self.tap_logs[idx as usize]),
            _ => None,
        }
    }

    /// The committed planes of `signal`, materialising the broadcast
    /// of the carrier value for untracked signals.
    pub fn effective(&self, signal: SignalId, carrier: &Value) -> LaneValues {
        match self.committed.get(signal.index()) {
            Some(Some(p)) => p.clone(),
            _ => LaneValues::broadcast(carrier, self.lanes),
        }
    }

    /// Reads a member input's planes over the compiled engine's dense
    /// committed-value shadow.
    pub fn read_plane(&self, signal: SignalId, values: &[Value]) -> LaneValues {
        self.effective(signal, &values[signal.index()])
    }

    /// Records a compiled drive push. `superseded` carries the old
    /// pending carrier value when the push cancelled an in-flight
    /// drive: lanes whose pending value already equals their new one
    /// would have *skipped* in their scalar run — kept the earlier
    /// landing time the carrier just rescheduled — so they diverge.
    pub fn note_drive(&mut self, out: SignalId, plane: LaneValues, superseded: Option<&Value>) {
        if let Some(old_pending) = superseded {
            let ne = match &self.pending[out.index()] {
                Some(p) => plane.lanes_ne(p),
                None => plane.lanes_ne_value(old_pending),
            };
            self.diverged |= !ne & self.lane_mask();
        }
        self.pending[out.index()] = Some(plane);
    }

    /// Records a skipped compiled drive: lanes whose computed value
    /// differs from what the carrier's skip compared against would
    /// *not* have skipped in their scalar run — they diverge.
    pub fn note_skip(
        &mut self,
        out: SignalId,
        plane: &LaneValues,
        against_pending: bool,
        carrier: &Value,
    ) {
        let tbl = if against_pending { &self.pending } else { &self.committed };
        let ne = match &tbl[out.index()] {
            Some(p) => plane.lanes_ne(p),
            None => plane.lanes_ne_value(carrier),
        };
        self.diverged |= ne;
    }

    /// Records a *dynamic* (interpreted) drive the inertial protocol
    /// skipped. For a capture-ruled output committing its launch
    /// snapshot through, the per-lane desired values are known: lanes
    /// whose captured `d` differs from their current `q` wanted an
    /// edge the carrier will not deliver. Anything else falls back to
    /// the conservative input probe.
    pub fn dyn_skip<F: Fn(SignalId) -> Value>(
        &mut self,
        comp: ComponentId,
        out: SignalId,
        v: &Value,
        read: F,
    ) {
        let r = self.rule_of.get(out.index()).copied().unwrap_or(NONE);
        if r != NONE {
            let rule = &self.rules[r as usize];
            if let Some(l) = &rule.launched {
                if l.value == *v {
                    let desired = match &l.plane {
                        Some(p) => p.clone(),
                        None => LaneValues::broadcast(v, self.lanes),
                    };
                    let cur_q = self.effective(out, &read(out));
                    self.diverged |= desired.lanes_ne(&cur_q);
                    return;
                }
            }
            self.diverge_rule_conservative(r as usize, out, &read);
            return;
        }
        self.diverge_reads(comp, &read);
    }

    /// Records a dynamic drive that superseded an in-flight one.
    /// Per-lane pending state isn't tracked for interpreted cells, so
    /// any lane the cell's output or inputs cannot vouch for demotes.
    pub fn dyn_supersede<F: Fn(SignalId) -> Value>(
        &mut self,
        comp: ComponentId,
        out: SignalId,
        read: F,
    ) {
        let r = self.rule_of.get(out.index()).copied().unwrap_or(NONE);
        if r != NONE {
            self.diverge_rule_conservative(r as usize, out, &read);
        } else {
            self.diverge_reads(comp, &read);
        }
    }

    /// Conservative demotion for a capture-ruled output: lanes whose
    /// tracked `q` or launch snapshots differ from the carrier.
    fn diverge_rule_conservative<F: Fn(SignalId) -> Value>(
        &mut self,
        rule: usize,
        out: SignalId,
        read: &F,
    ) {
        if let Some(p) = &self.committed[out.index()] {
            self.diverged |= p.lanes_ne_value(&read(out));
        }
        let r = &self.rules[rule];
        let mut ne = 0u64;
        for snap in [&r.launched, &r.prev].into_iter().flatten() {
            if let Some(p) = &snap.plane {
                ne |= p.lanes_ne_value(&snap.value);
            }
        }
        self.diverged |= ne;
    }

    /// Conservative demotion via a component's read list: lanes
    /// tracking a different value on any input cannot be followed.
    fn diverge_reads<F: Fn(SignalId) -> Value>(&mut self, comp: ComponentId, read: &F) {
        if let Some(ins) = self.reads.get(comp.index()) {
            let mut ne = 0u64;
            for &i in ins {
                if let Some(p) = &self.committed[i.index()] {
                    ne |= p.lanes_ne_value(&read(i));
                }
            }
            self.diverged |= ne;
        }
    }

    /// Advances the plane state across one carrier commit. `forced`
    /// is `Some(was_pending)` for force commits (fault actions) and
    /// `None` for driver commits; `driver` is the signal's registered
    /// driver; `read` yields any signal's committed carrier value.
    pub fn on_commit<F: Fn(SignalId) -> Value>(
        &mut self,
        time: Time,
        signal: SignalId,
        old: &Value,
        new: &Value,
        forced: Option<bool>,
        driver: Option<ComponentId>,
        read: F,
    ) {
        self.sweep(time, &read);
        let si = signal.index();
        if let Some(was_pending) = forced {
            // Any in-flight compiled drive was epoch-cancelled.
            self.pending[si] = None;
            match self.match_expected(time, signal) {
                Some(i) => self.apply_expected(i, old, was_pending),
                // A plain shared force: every lane takes the value.
                None => self.committed[si] = None,
            }
        } else if let Some(p) = self.pending[si].take() {
            // A compiled drive landing: the planes were computed
            // lane-exact at evaluation time. Collapse the ubiquitous
            // all-equal case back to the broadcast representation.
            debug_assert_eq!(p.unpack(0).width(), new.width());
            self.committed[si] = if p.all_equal() { None } else { Some(p) };
        } else if self.rule_of[si] != NONE {
            self.apply_capture(self.rule_of[si] as usize, si, new);
        } else {
            // A commit the plane algebra cannot follow (stimulus,
            // environment model, state cell without a capture rule):
            // all lanes take the carrier value, and lanes that were
            // tracking a different value on any input of the driving
            // cell can no longer be vouched for.
            if let Some(comp) = driver {
                self.diverge_reads(comp, &read);
            }
            self.committed[si] = None;
        }
        // Refresh launch snapshots of captures fed by this signal.
        if !self.rules_by_input[si].is_empty() {
            let snap_plane = self.committed[si].clone();
            for r in self.rules_by_input[si].clone() {
                let rule = &mut self.rules[r as usize];
                rule.prev = rule.launched.take();
                rule.launched = Some(Launched { plane: snap_plane.clone(), value: *new });
            }
        }
        if self.tap_of[si] != NONE {
            let snap = self.effective(signal, new);
            self.tap_logs[self.tap_of[si] as usize].push((time, snap));
        }
    }

    /// Finds the not-yet-done expected force matching this commit.
    fn match_expected(&mut self, time: Time, signal: SignalId) -> Option<usize> {
        let mut i = self.cursor;
        while i < self.sched.len() && self.sched[i].time <= time {
            let e = self.sched[i];
            if e.time == time && !e.done && self.sites[e.site as usize].signal == signal {
                self.sched[i].done = true;
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Applies a matched glitch force to the planes.
    fn apply_expected(&mut self, idx: usize, old: &Value, was_pending: bool) {
        let Expected { site, restore, .. } = self.sched[idx];
        let lanes = self.lanes;
        let lane_mask = self.lane_mask();
        let site = &mut self.sites[site as usize];
        let si = site.signal.index();
        if was_pending {
            // The carrier force cancelled an in-flight drive; lanes
            // that would not have forced here keep theirs.
            self.diverged |= !site.nonzero & lane_mask;
        }
        if !restore {
            let pre = self.committed[si]
                .take()
                .unwrap_or_else(|| LaneValues::broadcast(old, lanes));
            let mut post = pre.clone();
            for (k, &m) in site.masks.iter().enumerate() {
                if m != 0 {
                    post.xor_lanes(m, 1 << k);
                }
            }
            site.saved = Some(pre);
            self.committed[si] = Some(post);
        } else {
            match site.saved.take() {
                Some(saved) => {
                    // Lanes without their own restore force keep
                    // whatever a mid-glitch recommit left behind; if
                    // that differs from the restored value they
                    // cannot be followed.
                    let cur = self.committed[si]
                        .take()
                        .unwrap_or_else(|| LaneValues::broadcast(old, lanes));
                    self.diverged |= cur.lanes_ne(&saved) & !site.nonzero;
                    self.committed[si] = Some(saved);
                }
                None => {
                    self.diverged |= site.nonzero;
                    self.committed[si] = None;
                }
            }
        }
    }

    /// Processes expected forces the carrier never committed (the
    /// force found the value already equal): conservative divergence
    /// for the lanes whose scalar runs *would* have committed.
    fn sweep<F: Fn(SignalId) -> Value>(&mut self, now: Time, read: &F) {
        while self.cursor < self.sched.len() && self.sched[self.cursor].time < now {
            let e = self.sched[self.cursor];
            self.cursor += 1;
            if e.done {
                continue;
            }
            let site = &mut self.sites[e.site as usize];
            let si = site.signal.index();
            if !e.restore {
                self.diverged |= site.nonzero;
            } else if let Some(saved) = site.saved.take() {
                let ne = match &self.committed[si] {
                    Some(cur) => cur.lanes_ne(&saved),
                    None => saved.lanes_ne_value(&read(site.signal)),
                };
                self.diverged |= ne & site.nonzero;
            }
        }
    }

    /// Marks every remaining expected force as missed and returns the
    /// final diverged-lane mask. Call once the campaign run is over.
    pub fn seal<F: Fn(SignalId) -> Value>(&mut self, read: F) -> u64 {
        self.sweep(Time::MAX, &read);
        self.diverged & self.lane_mask()
    }

    /// Applies a capture rule at a state-cell output commit.
    fn apply_capture(&mut self, rule: usize, si: usize, new: &Value) {
        enum Outcome {
            Inherit(Option<LaneValues>),
            Demote(u64),
        }
        let r = &self.rules[rule];
        let outcome = match (&r.launched, &r.prev) {
            (Some(l), _) if l.value == *new => Outcome::Inherit(l.plane.clone()),
            (_, Some(p)) if p.value == *new => Outcome::Inherit(p.plane.clone()),
            (launched, prev) => {
                // A transformed or reset capture: all lanes take the
                // carrier value; lanes whose `d` differed from the
                // carrier's in either snapshot cannot be vouched for.
                let mut ne = 0u64;
                for snap in [launched, prev].into_iter().flatten() {
                    if let Some(p) = &snap.plane {
                        ne |= p.lanes_ne_value(&snap.value);
                    }
                }
                Outcome::Demote(ne)
            }
        };
        match outcome {
            Outcome::Inherit(plane) => {
                debug_assert!(
                    plane.as_ref().is_none_or(|p| p.unpack(0).width() == new.width()),
                    "capture rule width mismatch"
                );
                self.committed[si] = plane.filter(|p| !p.all_equal());
            }
            Outcome::Demote(ne) => {
                self.diverged |= ne;
                self.committed[si] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: u32) -> SignalId {
        SignalId(i)
    }

    #[test]
    fn glitch_apply_and_restore_round_trip() {
        let mut sl = Sliced::new(4, 3, &[], vec![]);
        let v = Value::from_u64(8, 0xA5);
        let read = |_: SignalId| Value::from_u64(8, 0xA5);
        sl.add_glitch(Time::from_ps(10), sig(1), Time::from_ps(5), &[0, 0x0F, 0xF0, 0]);
        // Carrier applies the union glitch at t=10.
        let glitched = v.xor(&Value::from_u64(8, 0xFF));
        sl.on_commit(Time::from_ps(10), sig(1), &v, &glitched, Some(false), None, read);
        let p = sl.committed[1].as_ref().expect("planes tracked");
        assert_eq!(p.unpack(0), v, "unglitched lane keeps its value");
        assert_eq!(p.unpack(1), v.xor(&Value::from_u64(8, 0x0F)));
        assert_eq!(p.unpack(2), v.xor(&Value::from_u64(8, 0xF0)));
        assert_eq!(sl.diverged, 0);
        // Restore force at t=15 brings every lane back.
        sl.on_commit(Time::from_ps(15), sig(1), &glitched, &v, Some(false), None, read);
        let p = sl.committed[1].as_ref().expect("restored planes");
        assert!(p.all_equal());
        assert_eq!(p.unpack(3), v);
        assert_eq!(sl.seal(read), 0, "clean round trip diverges nothing");
    }

    #[test]
    fn missed_apply_diverges_masked_lanes_only() {
        let mut sl = Sliced::new(3, 2, &[], vec![]);
        let read = |_: SignalId| Value::zero(4);
        sl.add_glitch(Time::from_ps(5), sig(0), Time::from_ps(2), &[0b01, 0, 0b10]);
        // No force ever committed; a later commit sweeps past both
        // expected events.
        sl.on_commit(Time::from_ps(20), sig(1), &Value::zero(4), &Value::ones(4), None, None, read);
        assert_eq!(sl.diverged, 0b101, "only lanes with a mask diverge");
    }

    #[test]
    fn force_cancelling_inflight_drive_diverges_unmasked_lanes() {
        let mut sl = Sliced::new(2, 1, &[], vec![]);
        let read = |_: SignalId| Value::zero(1);
        sl.add_glitch(Time::from_ps(5), sig(0), Time::from_ps(2), &[1, 0]);
        sl.on_commit(
            Time::from_ps(5),
            sig(0),
            &Value::zero(1),
            &Value::one(1),
            Some(true), // an in-flight drive was cancelled
            None,
            read,
        );
        assert_eq!(sl.diverged, 0b10, "the lane that would not force keeps its drive");
    }

    #[test]
    fn capture_rule_inherits_launch_planes() {
        let q = sig(0);
        let d = sig(1);
        let mut sl = Sliced::new(2, 2, &[(q, d)], vec![]);
        let read = |_: SignalId| Value::zero(4);
        // d commits with lane-divergent planes (e.g. downstream of a
        // glitch), landing them through the compiled-drive path: a
        // passthrough q commit inherits them.
        let dv = Value::from_u64(4, 0b0011);
        let mut p = LaneValues::broadcast(&dv, 2);
        p.set_lane(1, &Value::from_u64(4, 0b1100));
        sl.note_drive(d, p, None);
        sl.on_commit(Time::from_ps(1), d, &Value::zero(4), &dv, None, None, read);
        sl.on_commit(Time::from_ps(3), q, &Value::zero(4), &dv, None, None, read);
        let p = sl.committed[0].as_ref().expect("q inherits planes");
        assert_eq!(p.unpack(0), dv);
        assert_eq!(p.unpack(1), Value::from_u64(4, 0b1100));
        assert_eq!(sl.diverged, 0);
    }

    #[test]
    fn transformed_capture_demotes_differing_lanes() {
        let q = sig(0);
        let d = sig(1);
        let mut sl = Sliced::new(2, 2, &[(q, d)], vec![]);
        let read = |_: SignalId| Value::zero(4);
        let dv = Value::from_u64(4, 0b0011);
        let mut p = LaneValues::broadcast(&dv, 2);
        p.set_lane(1, &Value::from_u64(4, 0b1100));
        sl.note_drive(d, p, None);
        sl.on_commit(Time::from_ps(1), d, &Value::zero(4), &dv, None, None, read);
        // q commits something that is *not* d (reset, inversion…).
        sl.on_commit(Time::from_ps(3), q, &Value::zero(4), &Value::ones(4), None, None, read);
        assert!(sl.committed[0].is_none());
        assert_eq!(sl.diverged, 0b10, "the lane with different d demotes");
    }

    #[test]
    fn dyn_skip_on_passthrough_flags_lanes_wanting_an_edge() {
        let q = sig(0);
        let d = sig(1);
        let mut sl = Sliced::new(2, 2, &[(q, d)], vec![]);
        let dv = Value::one(1);
        let read = move |s: SignalId| if s == q { Value::one(1) } else { dv };
        // Lane 1's d differs from the carrier's when d commits.
        let mut p = LaneValues::broadcast(&dv, 2);
        p.set_lane(1, &Value::zero(1));
        sl.note_drive(d, p, None);
        sl.on_commit(Time::from_ps(1), d, &Value::zero(1), &dv, None, None, read);
        // The latch drives q = d = 1 but the carrier q is already 1 →
        // skip. Lane 1 wanted the edge to 0 and must demote.
        sl.dyn_skip(ComponentId(7), q, &dv, read);
        assert_eq!(sl.diverged, 0b10);
    }

    #[test]
    fn taps_log_plane_snapshots_at_commits() {
        let mut sl = Sliced::new(2, 1, &[], vec![]);
        let read = |_: SignalId| Value::zero(8);
        sl.add_tap(sig(0), Time::ZERO, &Value::zero(8));
        let v1 = Value::from_u64(8, 0x11);
        sl.on_commit(Time::from_ps(4), sig(0), &Value::zero(8), &v1, None, None, read);
        let h = sl.tap_history(sig(0)).expect("tapped");
        assert_eq!(h.len(), 2);
        assert_eq!(h[1].0, Time::from_ps(4));
        assert_eq!(h[1].1.unpack(1), v1);
        assert_eq!(sl.tap_history(sig(1)), None, "out-of-range signal is untapped");
    }
}
