//! Netlist compilation: spec-driven execution of combinational cells.
//!
//! The interpreted kernel routes *every* gate evaluation through the
//! global three-tier event queue and a `dyn Component` dispatch. For
//! the combinational regions between state cells that is pure
//! overhead: the cells are side-effect-free functions of their
//! committed inputs, their drives are inertial, and their fanout is
//! static. The compiler exploits this. Cell builders register a
//! [`CombSpec`] — a closed description of the cell's boolean function,
//! pins and nominal delay — alongside the component, and
//! [`Simulator::compile`](crate::Simulator::compile) then flips every
//! specced, transparent, non-loop-exempt component into *compiled*
//! execution:
//!
//! - evaluation reads the committed input values and computes the
//!   output directly from the spec (no box, no virtual call);
//! - the resulting inertial drive is scheduled on a small private
//!   **calendar** owned by the compiled engine instead of the global
//!   event queue, so the dominant gate-delay churn never touches the
//!   queue's near-lane insertion path;
//! - state cells (latches, flops, C-elements), matched-delay chains,
//!   handshake edges, environment models and the loop-closing inverter
//!   of a ring oscillator keep their event-queue semantics untouched —
//!   their *timing* is the design under test, not an implementation
//!   detail to optimise away.
//!
//! Equivalence contract: a compiled run commits the same per-signal
//! `(time, value)` sequences, toggle counts and energies as the
//! interpreted run. The proof obligation is local: a compiled
//! evaluation applies the *identical* inertial-drive skip rules and
//! epoch bumps as [`Ctx::drive`](crate::Ctx::drive), and calendar
//! entries are validated against the signal's drive epoch at pop time
//! exactly like queued drive events. Intra-timestamp *interleaving*
//! (delta boundaries, evaluation counts) may differ in designs with
//! same-femtosecond data/trigger races — the races the lint's timing
//! pass exists to flag.

use std::collections::VecDeque;

use crate::{ComponentId, LaneValues, SignalId, Time, Value};

/// The boolean function of a compiled gate. Mirrors the cell library's
/// `GateOp`, re-declared here because `sal-des` sits *below* the cell
/// crates in the dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecOp {
    /// Buffer (single input).
    Buf,
    /// Inverter (single input).
    Inv,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

/// The function a [`CombSpec`] computes, one variant per combinational
/// cell shape in the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombFunc {
    /// A word-wide gate; 1-bit inputs broadcast across the word.
    Gate {
        /// Boolean operation.
        op: SpecOp,
        /// Input signals (1, or 2..=4 depending on `op`).
        inputs: Vec<SignalId>,
        /// Output width in bits.
        width: u8,
        /// Nominal propagation delay.
        delay: Time,
    },
    /// A word-wide 2-way multiplexer: `out = if sel { b } else { a }`.
    Mux2 {
        /// 1-bit select.
        sel: SignalId,
        /// Selected when `sel` is low.
        a: SignalId,
        /// Selected when `sel` is high.
        b: SignalId,
        /// Nominal propagation delay.
        delay: Time,
    },
    /// Pure routing: a bit range of a bus on its own signal.
    Slice {
        /// Source bus.
        src: SignalId,
        /// Low bit of the extracted range.
        lo: u8,
        /// Width of the extracted range.
        width: u8,
    },
    /// Pure routing: buses concatenated low-bits-first.
    Concat {
        /// Source buses, first occupies the low bits.
        parts: Vec<SignalId>,
    },
}

/// A compiled description of one combinational component: its output
/// signal and the function that computes it. Registered by the cell
/// builders via
/// [`Simulator::set_comb_spec`](crate::Simulator::set_comb_spec);
/// inert until [`Simulator::compile`](crate::Simulator::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombSpec {
    out: SignalId,
    func: CombFunc,
}

impl CombSpec {
    /// Creates a spec computing `func` onto `out`.
    pub fn new(out: SignalId, func: CombFunc) -> CombSpec {
        CombSpec { out, func }
    }

    /// The output signal the spec drives.
    pub fn out(&self) -> SignalId {
        self.out
    }

    /// The spec's function.
    pub fn func(&self) -> &CombFunc {
        &self.func
    }

    /// The nominal drive delay — the wiring variants (`Slice`,
    /// `Concat`) use the same 1 fs token delay as their interpreted
    /// counterparts.
    pub fn delay(&self) -> Time {
        match &self.func {
            CombFunc::Gate { delay, .. } | CombFunc::Mux2 { delay, .. } => *delay,
            CombFunc::Slice { .. } | CombFunc::Concat { .. } => Time::from_fs(1),
        }
    }

    /// Visits every input signal the function reads.
    pub fn for_each_input(&self, mut f: impl FnMut(SignalId)) {
        match &self.func {
            CombFunc::Gate { inputs, .. } => inputs.iter().copied().for_each(&mut f),
            CombFunc::Mux2 { sel, a, b, .. } => [*sel, *a, *b].into_iter().for_each(&mut f),
            CombFunc::Slice { src, .. } => f(*src),
            CombFunc::Concat { parts } => parts.iter().copied().for_each(&mut f),
        }
    }

    /// Evaluates the function over a value reader, replicating the
    /// interpreted cells bit for bit (including the 1-bit-to-word
    /// broadcast and the X-pessimistic `Value` algebra).
    ///
    /// # Panics
    ///
    /// Panics if a gate input is neither 1 bit nor the gate width —
    /// the same construction bug the interpreted `Gate` rejects.
    pub fn eval_with<F: Fn(SignalId) -> Value>(&self, read: F) -> Value {
        match &self.func {
            CombFunc::Gate { op, inputs, width, .. } => {
                let w = *width;
                let n = inputs.len();
                let first = broadcast(read(inputs[0]), w);
                if n == 1 {
                    match op {
                        SpecOp::Buf => first,
                        SpecOp::Inv => first.not(),
                        _ => unreachable!("multi-input op with one input"),
                    }
                } else if n == 2 {
                    let b = broadcast(read(inputs[1]), w);
                    match op {
                        SpecOp::And => first.and(&b),
                        SpecOp::Or => first.or(&b),
                        SpecOp::Nand => first.and(&b).not(),
                        SpecOp::Nor => first.or(&b).not(),
                        SpecOp::Xor => first.xor(&b),
                        SpecOp::Xnor => first.xor(&b).not(),
                        SpecOp::Buf | SpecOp::Inv => unreachable!("1-input op with two inputs"),
                    }
                } else {
                    let it = inputs[1..].iter().map(|&s| broadcast(read(s), w));
                    match op {
                        SpecOp::And => it.fold(first, |a, b| a.and(&b)),
                        SpecOp::Or => it.fold(first, |a, b| a.or(&b)),
                        SpecOp::Nand => it.fold(first, |a, b| a.and(&b)).not(),
                        SpecOp::Nor => it.fold(first, |a, b| a.or(&b)).not(),
                        _ => unreachable!("op {op:?} cannot have {n} inputs"),
                    }
                }
            }
            CombFunc::Mux2 { sel, a, b, .. } => {
                Value::mux(&read(*sel), &read(*a), &read(*b))
            }
            CombFunc::Slice { src, lo, width } => read(*src).slice(*lo, *width),
            CombFunc::Concat { parts } => {
                let mut it = parts.iter();
                let first = read(*it.next().expect("concat of nothing"));
                it.fold(first, |acc, &s| acc.concat(&read(s)))
            }
        }
    }

}

/// Replicates the interpreted `Gate`'s input broadcast: a 1-bit input
/// spreads across the gate's word width.
fn broadcast(v: Value, width: u8) -> Value {
    if v.width() == width {
        v
    } else {
        assert_eq!(v.width(), 1, "gate input width must be 1 or the gate width");
        match v.as_logic() {
            crate::Logic::Zero => Value::zero(width),
            crate::Logic::One => Value::ones(width),
            crate::Logic::X => Value::all_x(width),
        }
    }
}

/// Lowered opcode of a [`LowNode`]: [`CombFunc`] flattened to a plain
/// selector for the hot evaluation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LowOp {
    Buf,
    Inv,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Mux2,
    Slice,
    Concat,
}

/// Number of input pins a [`LowNode`] stores inline; wider pin lists
/// (big concats) spill into the shared pool.
const INLINE_INS: usize = 4;

/// One member's [`CombSpec`] lowered into a flat, fixed-size record:
/// opcode, inline pin list, output and delay all in one ~40-byte copy
/// — no enum-with-`Vec` indirection on the hot path. Evaluation reads
/// input values from the engine's dense committed-value shadow, so a
/// two-input gate usually gathers both operands from a single cache
/// line instead of two scattered `SignalState` records.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LowNode {
    op: LowOp,
    /// Gate/slice output width (unused by `Mux2`/`Concat`, which take
    /// their width from their operands like the interpreted cells).
    width: u8,
    /// Slice low bit (`Slice` only).
    lo: u8,
    /// Number of input pins.
    n: u8,
    /// Start of the pin list in the pool when `n > INLINE_INS`.
    spill: u32,
    /// Output signal.
    pub out: SignalId,
    ins: [SignalId; INLINE_INS],
    /// Nominal propagation delay.
    pub delay: Time,
}

impl LowNode {
    /// Lowers a spec, spilling wide pin lists into `pool`.
    fn lower(spec: &CombSpec, pool: &mut Vec<SignalId>) -> LowNode {
        let mut node = LowNode {
            op: LowOp::Buf,
            width: 0,
            lo: 0,
            n: 0,
            spill: 0,
            out: spec.out(),
            ins: [SignalId(0); INLINE_INS],
            delay: spec.delay(),
        };
        let mut pins: Vec<SignalId> = Vec::new();
        spec.for_each_input(|s| pins.push(s));
        node.n = u8::try_from(pins.len()).expect("pin count fits u8");
        if pins.len() <= INLINE_INS {
            node.ins[..pins.len()].copy_from_slice(&pins);
        } else {
            node.spill = u32::try_from(pool.len()).expect("pool fits u32");
            pool.extend_from_slice(&pins);
        }
        match spec.func() {
            CombFunc::Gate { op, width, .. } => {
                node.width = *width;
                node.op = match op {
                    SpecOp::Buf => LowOp::Buf,
                    SpecOp::Inv => LowOp::Inv,
                    SpecOp::And => LowOp::And,
                    SpecOp::Or => LowOp::Or,
                    SpecOp::Nand => LowOp::Nand,
                    SpecOp::Nor => LowOp::Nor,
                    SpecOp::Xor => LowOp::Xor,
                    SpecOp::Xnor => LowOp::Xnor,
                };
            }
            CombFunc::Mux2 { .. } => node.op = LowOp::Mux2,
            CombFunc::Slice { lo, width, .. } => {
                node.op = LowOp::Slice;
                node.lo = *lo;
                node.width = *width;
            }
            CombFunc::Concat { .. } => node.op = LowOp::Concat,
        }
        node
    }

    /// The node's input pins.
    #[inline]
    fn inputs<'a>(&'a self, pool: &'a [SignalId]) -> &'a [SignalId] {
        let n = self.n as usize;
        if n <= INLINE_INS {
            &self.ins[..n]
        } else {
            &pool[self.spill as usize..self.spill as usize + n]
        }
    }

    /// Evaluates the node over the dense committed-value shadow.
    /// Bit-for-bit the same function as [`CombSpec::eval_with`] — the
    /// same `Value` algebra, broadcast rule and width panics — only
    /// the operand gathers and dispatch are flattened.
    #[inline]
    pub fn eval(&self, values: &[Value], pool: &[SignalId]) -> Value {
        let ins = self.inputs(pool);
        let read = |s: SignalId| values[s.index()];
        match self.op {
            LowOp::Mux2 => Value::mux(&read(ins[0]), &read(ins[1]), &read(ins[2])),
            LowOp::Slice => read(ins[0]).slice(self.lo, self.width),
            LowOp::Concat => {
                let first = read(ins[0]);
                ins[1..].iter().fold(first, |acc, &s| acc.concat(&read(s)))
            }
            op => {
                let w = self.width;
                let n = ins.len();
                let first = broadcast(read(ins[0]), w);
                if n == 1 {
                    match op {
                        LowOp::Buf => first,
                        LowOp::Inv => first.not(),
                        _ => unreachable!("multi-input op with one input"),
                    }
                } else if n == 2 {
                    let b = broadcast(read(ins[1]), w);
                    match op {
                        LowOp::And => first.and(&b),
                        LowOp::Or => first.or(&b),
                        LowOp::Nand => first.and(&b).not(),
                        LowOp::Nor => first.or(&b).not(),
                        LowOp::Xor => first.xor(&b),
                        LowOp::Xnor => first.xor(&b).not(),
                        _ => unreachable!("1-input op with two inputs"),
                    }
                } else {
                    let it = ins[1..].iter().map(|&s| broadcast(read(s), w));
                    match op {
                        LowOp::And => it.fold(first, |a, b| a.and(&b)),
                        LowOp::Or => it.fold(first, |a, b| a.or(&b)),
                        LowOp::Nand => it.fold(first, |a, b| a.and(&b)).not(),
                        LowOp::Nor => it.fold(first, |a, b| a.or(&b)).not(),
                        _ => unreachable!("op {op:?} cannot have {n} inputs"),
                    }
                }
            }
        }
    }

    /// Lane-parallel [`LowNode::eval`]: the identical function lifted
    /// over [`LaneValues`] planes. Lane `k`'s result is exactly what
    /// [`LowNode::eval`] would compute from lane `k`'s input values —
    /// the equivalence the sliced campaign engine rests on.
    pub fn eval_lanes<F: Fn(SignalId) -> LaneValues>(
        &self,
        read: F,
        pool: &[SignalId],
    ) -> LaneValues {
        let ins = self.inputs(pool);
        match self.op {
            LowOp::Mux2 => LaneValues::mux(&read(ins[0]), &read(ins[1]), &read(ins[2])),
            LowOp::Slice => read(ins[0]).slice(self.lo, self.width),
            LowOp::Concat => {
                let first = read(ins[0]);
                ins[1..].iter().fold(first, |acc, &s| acc.concat(&read(s)))
            }
            op => {
                let w = self.width;
                let n = ins.len();
                let first = spread(read(ins[0]), w);
                if n == 1 {
                    match op {
                        LowOp::Buf => first,
                        LowOp::Inv => first.not(),
                        _ => unreachable!("multi-input op with one input"),
                    }
                } else if n == 2 {
                    let b = spread(read(ins[1]), w);
                    match op {
                        LowOp::And => first.and(&b),
                        LowOp::Or => first.or(&b),
                        LowOp::Nand => first.and(&b).not(),
                        LowOp::Nor => first.or(&b).not(),
                        LowOp::Xor => first.xor(&b),
                        LowOp::Xnor => first.xor(&b).not(),
                        _ => unreachable!("1-input op with two inputs"),
                    }
                } else {
                    let it = ins[1..].iter().map(|&s| spread(read(s), w));
                    match op {
                        LowOp::And => it.fold(first, |a, b| a.and(&b)),
                        LowOp::Or => it.fold(first, |a, b| a.or(&b)),
                        LowOp::Nand => it.fold(first, |a, b| a.and(&b)).not(),
                        LowOp::Nor => it.fold(first, |a, b| a.or(&b)).not(),
                        _ => unreachable!("op {op:?} cannot have {n} inputs"),
                    }
                }
            }
        }
    }
}

/// Lane-parallel twin of [`broadcast`]: a 1-bit lane set spreads
/// across the gate's word width.
fn spread(v: LaneValues, width: u8) -> LaneValues {
    if v.width() == width {
        v
    } else {
        v.broadcast_to(width)
    }
}

/// One in-flight compiled drive on the calendar. Ordered by `(time,
/// seq)` so same-time entries commit in scheduling order, mirroring
/// the global queue's FIFO-within-timestamp contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CalEntry {
    pub time: Time,
    pub seq: u64,
    pub signal: SignalId,
    pub epoch: u64,
}

/// The active compiled engine: membership table, private calendar of
/// in-flight compiled drives, and profiling counters.
#[derive(Debug, Default)]
pub(crate) struct Compiled {
    /// `node_of[comp]` — index of the component's lowered node in
    /// `nodes`, or [`NO_NODE`] for non-members. One lookup answers
    /// both membership and dispatch.
    node_of: Vec<u32>,
    /// Lowered execution table, one record per member.
    nodes: Vec<LowNode>,
    /// Spilled pin lists for nodes wider than [`INLINE_INS`].
    pool: Vec<SignalId>,
    /// Dense shadow of every signal's committed value, maintained by
    /// the kernel's commit paths. Spec evaluation gathers operands
    /// here — 24-byte entries packed back to back — instead of walking
    /// the fat, scattered `SignalState` records.
    pub values: Vec<Value>,
    /// In-flight compiled drives, kept sorted by `(time, seq)`. The
    /// same nearly-sorted-append trick as the queue's near lane: gate
    /// delays push monotonically increasing timestamps, so the common
    /// push is an O(1) `push_back` and the occasional out-of-order one
    /// (a short delay scheduled after a long one in the same delta)
    /// pays a binary-searched insert into a handful of entries —
    /// cheaper than a binary heap's sift on both ends.
    calendar: VecDeque<CalEntry>,
    /// Monotone scheduling order for same-time calendar entries.
    seq: u64,
    /// Weakly-connected compiled regions found at `compile()` time.
    pub cones_built: u64,
    /// Spec evaluations performed.
    pub cone_evals: u64,
    /// Global-queue events avoided (calendar pushes).
    pub events_avoided: u64,
}

/// [`Compiled::node_of`] marker for components without a lowered node.
pub(crate) const NO_NODE: u32 = u32::MAX;

impl Compiled {
    /// Creates an engine from the lowered tables and a snapshot of the
    /// committed signal values, empty calendar.
    pub fn new(
        node_of: Vec<u32>,
        nodes: Vec<LowNode>,
        pool: Vec<SignalId>,
        values: Vec<Value>,
        cones_built: u64,
    ) -> Compiled {
        Compiled { node_of, nodes, pool, values, cones_built, ..Compiled::default() }
    }

    /// The lowered node of a member component.
    ///
    /// # Panics
    ///
    /// Panics if `comp` is not a member.
    #[inline]
    pub fn node(&self, comp: ComponentId) -> LowNode {
        self.nodes[self.node_of[comp.index()] as usize]
    }

    /// The spilled-pin pool backing wide nodes.
    #[inline]
    pub fn pool(&self) -> &[SignalId] {
        &self.pool
    }

    /// Earliest calendar timestamp, if any drive is in flight.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.calendar.front().map(|e| e.time)
    }

    /// Schedules a compiled inertial drive.
    #[inline]
    pub fn push(&mut self, time: Time, signal: SignalId, epoch: u64) {
        self.seq += 1;
        self.events_avoided += 1;
        let e = CalEntry { time, seq: self.seq, signal, epoch };
        if self.calendar.back().is_none_or(|b| *b <= e) {
            self.calendar.push_back(e);
        } else {
            let i = self.calendar.partition_point(|x| *x <= e);
            self.calendar.insert(i, e);
        }
    }

    /// Pops the next calendar entry if it is due at exactly `time`.
    #[inline]
    pub fn pop_at(&mut self, time: Time) -> Option<CalEntry> {
        match self.calendar.front() {
            Some(e) if e.time == time => self.calendar.pop_front(),
            _ => None,
        }
    }

    /// True when `comp` executes through its spec.
    #[inline]
    pub fn is_member(&self, comp: ComponentId) -> bool {
        self.node_of.get(comp.index()).is_some_and(|&n| n != NO_NODE)
    }

    /// Lowers one spec into the node table (compile-time only).
    pub fn add_node(&mut self, comp: ComponentId, spec: &CombSpec) {
        let idx = u32::try_from(self.nodes.len()).expect("node count fits u32");
        self.node_of[comp.index()] = idx;
        self.nodes.push(LowNode::lower(spec, &mut self.pool));
    }
}

/// Union-find over component indices, used to count the
/// weakly-connected compiled regions ("cones") at compile time.
pub(crate) struct ConeForest {
    parent: Vec<u32>,
}

impl ConeForest {
    pub fn new(n: usize) -> ConeForest {
        ConeForest { parent: (0..n as u32).collect() }
    }

    pub fn find(&mut self, i: u32) -> u32 {
        let mut root = i;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = i;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    pub fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_orders_by_time_then_seq() {
        let mut c = Compiled::default();
        let s = SignalId(0);
        c.push(Time::from_ps(5), s, 1);
        c.push(Time::from_ps(3), SignalId(1), 2);
        c.push(Time::from_ps(3), SignalId(2), 3);
        assert_eq!(c.peek_time(), Some(Time::from_ps(3)));
        let first = c.pop_at(Time::from_ps(3)).unwrap();
        assert_eq!(first.signal, SignalId(1), "same-time entries pop in push order");
        let second = c.pop_at(Time::from_ps(3)).unwrap();
        assert_eq!(second.signal, SignalId(2));
        assert_eq!(c.pop_at(Time::from_ps(3)), None, "remaining entry is later");
        assert_eq!(c.peek_time(), Some(Time::from_ps(5)));
        assert_eq!(c.events_avoided, 3);
    }

    #[test]
    fn cone_forest_counts_components() {
        let mut f = ConeForest::new(5);
        f.union(0, 1);
        f.union(3, 4);
        f.union(1, 3);
        assert_eq!(f.find(0), f.find(4));
        assert_ne!(f.find(2), f.find(0));
    }
}
