//! Kernel error types.

use std::fmt;

use crate::watchdog::DeadlockReport;
use crate::{ComponentId, SignalId, Time};

/// Result alias for kernel operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors reported by the simulation kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A second component tried to drive a signal that already has a
    /// driver. Every net in the kernel is single-driver.
    MultipleDrivers {
        /// The contested signal.
        signal: SignalId,
        /// The driver already registered.
        existing: ComponentId,
        /// The component that attempted to attach.
        attempted: ComponentId,
    },
    /// A drive was issued with a value whose width differs from the
    /// signal's declared width.
    WidthMismatch {
        /// The signal driven.
        signal: SignalId,
        /// Declared signal width.
        expected: u8,
        /// Width of the driven value.
        actual: u8,
    },
    /// The event limit configured in [`crate::SimConfig`] was exceeded,
    /// which almost always indicates an oscillating zero-delay loop or
    /// a runaway ring oscillator without a stop condition.
    EventLimitExceeded {
        /// The simulated time at which the limit tripped.
        at: Time,
        /// The configured limit.
        limit: u64,
        /// Watchdog diagnosis of the stall, when handshake watches
        /// were registered and at least one was caught mid-protocol.
        diagnosis: Option<Box<DeadlockReport>>,
    },
    /// A fault plan named a signal path that does not exist in the
    /// netlist.
    UnknownFaultTarget {
        /// The path that failed to resolve.
        path: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MultipleDrivers { signal, existing, attempted } => write!(
                f,
                "signal {signal:?} already driven by component {existing:?}; \
                 component {attempted:?} cannot also drive it"
            ),
            SimError::WidthMismatch { signal, expected, actual } => write!(
                f,
                "signal {signal:?} has width {expected} but was driven with width {actual}"
            ),
            SimError::EventLimitExceeded { at, limit, diagnosis } => {
                write!(
                    f,
                    "event limit of {limit} events exceeded at t={at}; \
                     possible oscillation or missing stop condition"
                )?;
                if let Some(report) = diagnosis {
                    write!(f, "\n{report}")?;
                }
                Ok(())
            }
            SimError::UnknownFaultTarget { path } => {
                write!(f, "fault plan targets unknown signal path '{path}'")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Time;

    #[test]
    fn error_messages_are_informative() {
        let e = SimError::MultipleDrivers {
            signal: SignalId(3),
            existing: ComponentId(1),
            attempted: ComponentId(2),
        };
        assert!(e.to_string().contains("already driven"));
        let e = SimError::WidthMismatch { signal: SignalId(0), expected: 8, actual: 4 };
        assert!(e.to_string().contains("width 8"));
        let e = SimError::EventLimitExceeded { at: Time::from_ns(5), limit: 100, diagnosis: None };
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains("5ns"));
        let e = SimError::UnknownFaultTarget { path: "link.nope".to_string() };
        assert!(e.to_string().contains("link.nope"));
    }

    #[test]
    fn event_limit_display_includes_diagnosis() {
        use crate::watchdog::{DeadlockReport, StalledHandshake};
        use crate::Value;
        let e = SimError::EventLimitExceeded {
            at: Time::from_ns(9),
            limit: 1000,
            diagnosis: Some(Box::new(DeadlockReport {
                at: Time::from_ns(9),
                stalled: vec![StalledHandshake {
                    label: "hs".to_string(),
                    req_path: "a.req".to_string(),
                    ack_path: "a.ack".to_string(),
                    req_value: Value::one(1),
                    ack_value: Value::zero(1),
                    req_last_change: Time::from_ns(1),
                    ack_last_change: Time::ZERO,
                    waiting: vec![],
                }],
            })),
        };
        let msg = e.to_string();
        assert!(msg.contains("stalled handshake"));
        assert!(msg.contains("a.req"));
    }
}
