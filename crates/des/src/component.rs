//! Components and their evaluation context.

use crate::event::EventKind;
use crate::sim::Kernel;
use crate::{SignalId, Time, Value};

/// Identifier of a component in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index of this component in the netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reactive element of the netlist: a logic cell, a stimulus source,
/// a clock generator or a monitor.
///
/// The kernel calls [`Component::on_input`] whenever any signal listed
/// as one of the component's inputs commits a new value, and
/// [`Component::on_wake`] when a self-scheduled wakeup (see
/// [`Ctx::wake_after`]) fires. Implementations react by reading inputs
/// and driving outputs through the [`Ctx`].
///
/// Cells must be *level-evaluating*: `on_input` may be invoked more
/// than once per timestamp (once per arriving input edge), and the
/// inertial-drive semantics of [`Ctx::drive`] guarantee that only the
/// final evaluation's schedule survives.
pub trait Component: 'static {
    /// Called when one of the component's input signals changes.
    fn on_input(&mut self, ctx: &mut Ctx<'_>);

    /// Called when a wakeup scheduled with [`Ctx::wake_after`] fires.
    /// The default implementation does nothing.
    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// The evaluation context handed to a [`Component`]: read signals,
/// drive outputs, schedule wakeups.
pub struct Ctx<'a> {
    pub(crate) kernel: &'a mut Kernel,
    pub(crate) comp: ComponentId,
}

impl Ctx<'_> {
    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.kernel.now
    }

    /// The id of the component being evaluated.
    pub fn component_id(&self) -> ComponentId {
        self.comp
    }

    /// The committed value of a signal.
    #[inline]
    pub fn read(&self, sig: SignalId) -> Value {
        self.kernel.signals[sig.index()].value
    }

    /// Convenience: read a 1-bit signal as a boolean, treating `X` as
    /// `false`. Use sparingly — mostly for monitors.
    pub fn read_bool(&self, sig: SignalId) -> bool {
        self.read(sig).is_high()
    }

    /// Schedules `value` onto `sig` after `delay`, with inertial
    /// semantics: any not-yet-committed drive of the same signal is
    /// cancelled, so glitches shorter than the delay are filtered.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this component is not the registered
    /// driver of `sig`, or if the value width does not match the
    /// signal width. Both are netlist construction bugs and both are
    /// deterministic — they cannot depend on simulation inputs — so
    /// release builds skip the checks in this hottest of paths.
    #[inline]
    pub fn drive(&mut self, sig: SignalId, value: Value, delay: Time) {
        // Fault hook: perturb the delay (derating, sigma, skew) or
        // discard the drive entirely (stuck-at target). `fault` is
        // `None` unless a non-empty plan was applied, so clean runs
        // pay one predictable branch and behave bit-identically.
        let delay = match &self.kernel.fault {
            None => delay,
            Some(fault) => match fault.transform(self.comp, sig, self.kernel.now, delay) {
                Some(d) => d,
                None => return,
            },
        };
        let state = &mut self.kernel.signals[sig.index()];
        debug_assert_eq!(
            state.driver,
            Some(self.comp),
            "component {:?} drove signal '{}' without being its registered driver",
            self.comp,
            state.name
        );
        debug_assert_eq!(
            state.width,
            value.width(),
            "signal '{}' has width {} but was driven with width {}",
            state.name,
            state.width,
            value.width()
        );
        // Skip no-op schedules: the target value is already committed
        // (nothing in flight), or an event carrying this same value is
        // already in flight — re-asserting an unchanged target must
        // NOT restart the delay, or input churn could postpone a
        // transition indefinitely.
        //
        // An active sliced campaign pass must hear about skipped and
        // superseded dynamic drives: a lane tracking different values
        // could have decided differently, and the pass demotes it.
        if state.pending {
            if state.pending_value == value {
                if self.kernel.sliced.is_some() {
                    self.kernel.slice_dyn_skip(self.comp, sig, &value);
                }
                return;
            }
        } else if state.value == value {
            if self.kernel.sliced.is_some() {
                self.kernel.slice_dyn_skip(self.comp, sig, &value);
            }
            return;
        }
        let superseded = state.pending;
        state.drive_epoch += 1;
        state.pending = true;
        state.pending_value = value;
        let epoch = state.drive_epoch;
        let t = self.kernel.now + delay;
        self.kernel.queue.push(t, EventKind::Drive { signal: sig, epoch });
        if superseded && self.kernel.sliced.is_some() {
            self.kernel.slice_dyn_supersede(self.comp, sig);
        }
    }

    /// When the installed fault plan enables setup-window checking for
    /// this component, returns its delay multiplier — the factor a
    /// sequential cell should stretch its nominal setup window by.
    /// `None` (the overwhelmingly common case) means no checking:
    /// either no fault plan is installed, checking is not enabled, or
    /// this component is outside the plan's scopes.
    #[inline]
    pub fn setup_scale(&self) -> Option<f64> {
        let fault = self.kernel.fault.as_ref()?;
        if fault.setup_check.get(self.comp.index()).copied().unwrap_or(false) {
            Some(fault.comp_scale.get(self.comp.index()).copied().unwrap_or(1.0))
        } else {
            None
        }
    }

    /// The declared name of a signal (without scope path). Useful in
    /// cell-side diagnostics.
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.kernel.signals[sig.index()].name
    }

    /// The time `sig` last committed a new value. Lets edge-triggered
    /// cells check setup-style timing constraints against inputs that
    /// are *not* in their sensitivity list (an unchanged clock level
    /// never wakes them on data activity).
    #[inline]
    pub fn last_change(&self, sig: SignalId) -> Time {
        self.kernel.signals[sig.index()].last_change
    }

    /// Schedules an [`Component::on_wake`] callback for this component
    /// after `delay`.
    pub fn wake_after(&mut self, delay: Time) {
        let t = self.kernel.now + delay;
        self.kernel.queue.push(t, EventKind::Wake { comp: self.comp });
    }

    /// Adds `fj` femtojoules of internal energy to this component's
    /// scope. Use for energy not captured by output-toggle accounting
    /// (e.g. internal short-circuit energy of complex cells).
    pub fn add_energy_fj(&mut self, fj: f64) {
        let scope = self.kernel.comp_scopes[self.comp.index()];
        self.kernel.scope_energy_fj[scope.0 as usize] += fj;
    }
}
