//! Structured transition tracing with pluggable sinks.
//!
//! The kernel's commit path carries an optional trace hook: when a
//! [`TraceSink`] is installed (via
//! [`Simulator::set_trace_sink`](crate::Simulator::set_trace_sink) or
//! [`SimConfig::trace`](crate::SimConfig)), every committed signal
//! change is reported as a [`TraceRecord`] — time, signal, old → new
//! value. When no sink is installed the hook is a single predictable
//! `None` branch, exactly like the fault hook, so untraced runs stay
//! allocation-free and bit-identical.
//!
//! Three sinks cover the common needs:
//!
//! * [`MemoryTrace`] — records everything in memory; the default
//!   behind `SimConfig::trace`, feeds VCD export and [`TraceDump`].
//! * [`RingTrace`] — keeps only the last *N* records (bounded memory
//!   for long runs and tests that only care about the tail).
//! * [`JsonlSink`] — streams each record as one JSON line to any
//!   writer, so giant traces can go straight to disk.
//!
//! A [`TraceDump`] decouples the recording from the `Simulator`'s
//! lifetime: it owns the signal table (paths, widths, per-toggle
//! energies) together with the records, and can serialise either VCD
//! (via [`TraceDump::write_vcd`]) or JSONL
//! ([`TraceDump::write_jsonl`]) long after the simulator is gone.

use std::io::{self, Write};

use crate::{Logic, SignalId, Simulator, Time, Value};

/// One committed signal transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Commit time.
    pub time: Time,
    /// The signal that changed.
    pub signal: SignalId,
    /// Committed value before the transition.
    pub old: Value,
    /// Committed value after the transition.
    pub new: Value,
}

/// Static description of one traced signal, captured at sink
/// installation (or dump capture) time, indexed by
/// [`SignalId::index`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSignalMeta {
    /// Full hierarchical path (`scope.name`).
    pub path: String,
    /// Width in bits.
    pub width: u8,
    /// Switching energy charged per bit toggle, femtojoules. Lets
    /// trace consumers attribute energy per transition without asking
    /// the simulator.
    pub energy_per_toggle_fj: f64,
}

/// A consumer of committed-transition records.
///
/// Install one with
/// [`Simulator::set_trace_sink`](crate::Simulator::set_trace_sink).
/// [`TraceSink::record`] runs on the kernel's commit path, so sinks
/// should do bounded work per call; anything expensive belongs in a
/// post-run pass over [`TraceSink::records`].
pub trait TraceSink: 'static {
    /// Called once when the sink is installed, with the signal table
    /// of the netlist as it exists at that moment. Install sinks
    /// *after* netlist construction so paths and energies are final.
    fn install(&mut self, signals: &[TraceSignalMeta]) {
        let _ = signals;
    }

    /// Called for every committed signal change.
    fn record(&mut self, rec: &TraceRecord);

    /// The retained records as a contiguous in-order slice, if this
    /// sink keeps them that way (streaming sinks return `None`).
    fn records(&self) -> Option<&[TraceRecord]> {
        None
    }

    /// The retained records in commit order, if this sink keeps any.
    /// The default clones [`TraceSink::records`]; ring sinks override
    /// it to unroll their buffer.
    fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        self.records().map(<[TraceRecord]>::to_vec)
    }
}

/// Unbounded in-memory sink: keeps every record, in commit order.
#[derive(Debug, Default)]
pub struct MemoryTrace {
    records: Vec<TraceRecord>,
}

impl MemoryTrace {
    /// Creates an empty memory sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemoryTrace {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(*rec);
    }

    fn records(&self) -> Option<&[TraceRecord]> {
        Some(&self.records)
    }
}

/// Bounded in-memory sink: keeps the most recent `capacity` records
/// and counts the ones it dropped. Useful for tests and for "what
/// happened just before the deadlock" forensics on long runs.
#[derive(Debug)]
pub struct RingTrace {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest retained record once the buffer wrapped.
    head: usize,
    dropped: u64,
}

impl RingTrace {
    /// Creates a ring keeping at most `capacity` records (≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingTrace { buf: Vec::new(), capacity: capacity.max(1), head: 0, dropped: 0 }
    }

    /// Number of records pushed out of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(*rec);
        } else {
            self.buf[self.head] = *rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        Some(out)
    }
}

/// Streaming sink: writes each record as one JSON line the moment it
/// commits. The first I/O error latches and silences the sink (the
/// simulation itself must not fail because a trace disk filled up).
pub struct JsonlSink<W: Write> {
    w: W,
    signals: Vec<TraceSignalMeta>,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink streaming to `w`.
    pub fn new(w: W) -> Self {
        JsonlSink { w, signals: Vec::new(), error: None }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("signals", &self.signals.len())
            .field("error", &self.error)
            .finish()
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn install(&mut self, signals: &[TraceSignalMeta]) {
        self.signals = signals.to_vec();
    }

    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = write_jsonl_record(&mut self.w, &self.signals, rec) {
            self.error = Some(e);
        }
    }
}

/// Formats a value as a fixed-width MSB-first bit string (`x` for
/// unknown bits).
pub fn fmt_bits(v: &Value) -> String {
    let mut s = String::with_capacity(v.width() as usize);
    for i in (0..v.width()).rev() {
        s.push(match v.bit(i) {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
        });
    }
    s
}

fn signal_path(signals: &[TraceSignalMeta], sig: SignalId) -> &str {
    signals.get(sig.index()).map_or("?", |m| m.path.as_str())
}

/// Writes one record as a JSON line:
/// `{"t_fs":N,"sig":"path","old":"bits","new":"bits"}`.
pub fn write_jsonl_record<W: Write>(
    w: &mut W,
    signals: &[TraceSignalMeta],
    rec: &TraceRecord,
) -> io::Result<()> {
    writeln!(
        w,
        "{{\"t_fs\":{},\"sig\":\"{}\",\"old\":\"{}\",\"new\":\"{}\"}}",
        rec.time.as_fs(),
        signal_path(signals, rec.signal),
        fmt_bits(&rec.old),
        fmt_bits(&rec.new),
    )
}

/// A self-contained trace: the signal table plus the recorded
/// transitions, detached from the `Simulator` that produced them.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Signal metadata, indexed by [`SignalId::index`].
    pub signals: Vec<TraceSignalMeta>,
    /// Recorded transitions, in commit order.
    pub records: Vec<TraceRecord>,
}

impl TraceDump {
    /// Captures the installed sink's retained records together with
    /// the simulator's signal table. Returns `None` if no sink is
    /// installed or the sink retains nothing (e.g. a streaming sink).
    pub fn capture(sim: &Simulator) -> Option<TraceDump> {
        let records = sim.trace_sink()?.snapshot()?;
        Some(TraceDump { signals: sim.trace_signal_metas(), records })
    }

    /// The full path of a recorded signal.
    pub fn path(&self, sig: SignalId) -> &str {
        signal_path(&self.signals, sig)
    }

    /// Writes the trace as JSON lines, one record per line.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for rec in &self.records {
            write_jsonl_record(&mut w, &self.signals, rec)?;
        }
        Ok(())
    }

    /// Writes the trace as an IEEE 1364 VCD document (timescale 1 fs),
    /// one VCD module per hierarchical scope path.
    pub fn write_vcd<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "$date reproduction of Ogg et al. DATE 2008 $end")?;
        writeln!(w, "$version sal-des $end")?;
        writeln!(w, "$timescale 1 fs $end")?;

        // Group signals by scope path (everything before the last dot)
        // to emit VCD scopes, preserving first-seen order.
        fn scope_of(path: &str) -> &str {
            match path.rfind('.') {
                Some(i) => &path[..i],
                None => "",
            }
        }
        let mut by_scope: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, meta) in self.signals.iter().enumerate() {
            let scope = scope_of(&meta.path);
            match by_scope.iter_mut().find(|(s, _)| *s == scope) {
                Some((_, v)) => v.push(i),
                None => by_scope.push((scope, vec![i])),
            }
        }
        for (scope, sigs) in &by_scope {
            let name = if scope.is_empty() { "top" } else { scope };
            // VCD module names cannot contain dots; replace them.
            writeln!(w, "$scope module {} $end", name.replace('.', "_"))?;
            for &i in sigs {
                let meta = &self.signals[i];
                let leaf = meta.path.rsplit('.').next().unwrap_or(&meta.path);
                writeln!(w, "$var wire {} {} {} $end", meta.width, idcode(i), leaf)?;
            }
            writeln!(w, "$upscope $end")?;
        }
        writeln!(w, "$enddefinitions $end")?;

        writeln!(w, "$dumpvars")?;
        for (i, meta) in self.signals.iter().enumerate() {
            let v = Value::all_x(meta.width);
            writeln!(w, "{}{}", fmt_vcd_value(&v), idcode(i))?;
        }
        writeln!(w, "$end")?;

        let mut last_time = None;
        for rec in &self.records {
            if last_time != Some(rec.time) {
                writeln!(w, "#{}", rec.time.as_fs())?;
                last_time = Some(rec.time);
            }
            writeln!(w, "{}{}", fmt_vcd_value(&rec.new), idcode(rec.signal.index()))?;
        }
        Ok(())
    }
}

pub(crate) fn idcode(mut n: usize) -> String {
    // Printable VCD identifier codes: '!'..='~'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

pub(crate) fn fmt_vcd_value(v: &Value) -> String {
    if v.width() == 1 {
        match v.bit(0) {
            Logic::Zero => "0".to_string(),
            Logic::One => "1".to_string(),
            Logic::X => "x".to_string(),
        }
    } else {
        let mut s = String::from("b");
        s.push_str(&fmt_bits(v));
        s.push(' ');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_fs: u64, idx: u32, old: u64, new: u64) -> TraceRecord {
        TraceRecord {
            time: Time::from_fs(t_fs),
            signal: SignalId(idx),
            old: Value::from_u64(4, old),
            new: Value::from_u64(4, new),
        }
    }

    fn metas() -> Vec<TraceSignalMeta> {
        vec![
            TraceSignalMeta { path: "a".into(), width: 4, energy_per_toggle_fj: 1.0 },
            TraceSignalMeta { path: "blk.b".into(), width: 4, energy_per_toggle_fj: 2.0 },
        ]
    }

    #[test]
    fn memory_trace_keeps_everything_in_order() {
        let mut sink = MemoryTrace::new();
        for i in 0..5 {
            sink.record(&rec(i, 0, i, i + 1));
        }
        let records = sink.records().unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[3].time, Time::from_fs(3));
        assert_eq!(sink.snapshot().unwrap(), records);
    }

    #[test]
    fn ring_trace_keeps_the_tail() {
        let mut sink = RingTrace::new(3);
        for i in 0..7 {
            sink.record(&rec(i, 0, i, i + 1));
        }
        assert_eq!(sink.dropped(), 4);
        let snap = sink.snapshot().unwrap();
        let times: Vec<u64> = snap.iter().map(|r| r.time.as_fs()).collect();
        assert_eq!(times, vec![4, 5, 6]);
    }

    #[test]
    fn jsonl_line_format() {
        let mut out = Vec::new();
        write_jsonl_record(&mut out, &metas(), &rec(1500, 1, 0b1010, 0b0101)).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "{\"t_fs\":1500,\"sig\":\"blk.b\",\"old\":\"1010\",\"new\":\"0101\"}\n"
        );
    }

    #[test]
    fn jsonl_sink_streams_and_finishes() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.install(&metas());
        sink.record(&rec(10, 0, 0, 1));
        sink.record(&rec(20, 1, 1, 2));
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"sig\":\"a\""));
        assert!(text.contains("\"sig\":\"blk.b\""));
    }

    #[test]
    fn dump_vcd_round_trip_structure() {
        let dump = TraceDump { signals: metas(), records: vec![rec(3000, 1, 0, 0b1010)] };
        let mut out = Vec::new();
        dump.write_vcd(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$scope module blk $end"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("#3000"));
        assert!(text.contains("b1010 "));
    }

    #[test]
    fn fmt_bits_marks_unknowns() {
        assert_eq!(fmt_bits(&Value::all_x(3)), "xxx");
        assert_eq!(fmt_bits(&Value::from_u64(4, 0b0110)), "0110");
    }
}
