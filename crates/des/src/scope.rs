//! Hierarchical design scopes.
//!
//! Circuits are built inside nested named scopes (like module instances
//! in an HDL). Scopes drive two things: hierarchical signal names in
//! waveform dumps, and per-block energy attribution — the paper's
//! Fig 14 power breakdown is a per-scope energy rollup.

use std::fmt;

/// Identifier of a scope in the design hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub(crate) u32);

impl ScopeId {
    /// The root scope that every simulator starts with.
    pub const ROOT: ScopeId = ScopeId(0);
}

/// A dotted hierarchical path such as `link.ser.dc0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScopePath(pub(crate) String);

impl ScopePath {
    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this path equals `prefix` or is nested beneath it.
    pub fn starts_with_scope(&self, prefix: &str) -> bool {
        self.0 == prefix || (self.0.starts_with(prefix) && self.0[prefix.len()..].starts_with('.'))
    }
}

impl fmt::Display for ScopePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug)]
pub(crate) struct ScopeTree {
    names: Vec<String>,
    parents: Vec<Option<ScopeId>>,
    paths: Vec<String>,
}

impl ScopeTree {
    pub fn new() -> Self {
        ScopeTree {
            names: vec![String::new()],
            parents: vec![None],
            paths: vec![String::new()],
        }
    }

    pub fn child(&mut self, parent: ScopeId, name: &str) -> ScopeId {
        let id = ScopeId(self.names.len() as u32);
        let path = if self.paths[parent.0 as usize].is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.paths[parent.0 as usize], name)
        };
        self.names.push(name.to_string());
        self.parents.push(Some(parent));
        self.paths.push(path);
        id
    }

    #[allow(dead_code)] // part of the tree's natural API; used in tests
    pub fn parent(&self, id: ScopeId) -> Option<ScopeId> {
        self.parents[id.0 as usize]
    }

    pub fn path(&self, id: ScopeId) -> ScopePath {
        ScopePath(self.paths[id.0 as usize].clone())
    }

    pub fn path_str(&self, id: ScopeId) -> &str {
        &self.paths[id.0 as usize]
    }

    /// All scope ids whose path is `prefix` or nested beneath it.
    pub fn subtree(&self, prefix: &str) -> Vec<ScopeId> {
        (0..self.names.len())
            .map(|i| ScopeId(i as u32))
            .filter(|id| ScopePath(self.paths[id.0 as usize].clone()).starts_with_scope(prefix))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_nest() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "link");
        let b = t.child(a, "ser");
        assert_eq!(t.path(a).as_str(), "link");
        assert_eq!(t.path(b).as_str(), "link.ser");
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.parent(ScopeId::ROOT), None);
    }

    #[test]
    fn starts_with_scope_is_component_wise() {
        let p = ScopePath("link.serde".to_string());
        assert!(!p.starts_with_scope("link.ser"));
        assert!(p.starts_with_scope("link"));
        assert!(p.starts_with_scope("link.serde"));
    }

    #[test]
    fn subtree_collects_descendants() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "link");
        let b = t.child(a, "ser");
        let _c = t.child(ScopeId::ROOT, "other");
        let sub = t.subtree("link");
        assert!(sub.contains(&a) && sub.contains(&b));
        assert_eq!(sub.len(), 2);
    }
}
