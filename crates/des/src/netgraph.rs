//! Static connectivity graph of a constructed netlist.
//!
//! The simulator records, next to the dynamic event machinery, a set
//! of *side tables* describing the netlist structure: which component
//! drives which signal, which signals each component is sensitive to
//! or reads, what kind of cell each component models, and which
//! signal pairs form bundled-data launch/capture relations or
//! four-phase handshakes. [`Simulator::netgraph`](crate::Simulator::netgraph)
//! snapshots those tables into a [`NetGraph`] — a plain, immutable
//! value that static-analysis passes (the `sal-lint` crate) can walk
//! without touching the simulator.
//!
//! Everything here is metadata only: registering classes, bundles or
//! captures never changes simulation results. The annotations are
//! written by `sal-cells::CircuitBuilder` and the `sal-link` block
//! constructors as the netlist is built.

use crate::component::ComponentId;
use crate::signal::SignalId;
use crate::time::Time;

/// Coarse behavioural class of a netlist component, used by static
/// analysis to decide how signals propagate through it.
///
/// The classes matter to the lint passes along three axes:
///
/// * **loop transparency** — [`Comb`](CellClass::Comb),
///   [`Wire`](CellClass::Wire) and [`Route`](CellClass::Route) forward
///   transitions combinationally, so a cycle made only of them is a
///   combinational loop; every other class breaks such a cycle.
/// * **timing traversal** — data and strobe cones pass through cells
///   differently per class (a latch is transparent to data via its
///   `d` pin, a flip-flop launches data from its clock pin, …).
/// * **exemption** — [`Source`](CellClass::Source),
///   [`Env`](CellClass::Env) and [`Monitor`](CellClass::Monitor)
///   model stimulus, testbench and observation; they are exempt from
///   width and connectivity rules that only make sense for silicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Combinational gate (AND, OR, inverter, mux, buffer, …).
    Comb,
    /// Routed-wire transport element: repeats its input after a wire
    /// delay. Combinationally transparent, like [`CellClass::Comb`],
    /// but carries no cell area.
    Wire,
    /// Pure wiring view (slice/concat): zero delay, zero energy.
    Route,
    /// Level-sensitive latch: transparent to data while enabled.
    Latch,
    /// Edge-triggered flip-flop: output launches from the clock pin.
    Dff,
    /// Muller C-element (async state-holding, hysteresis on inputs).
    CElement,
    /// David cell (async set/clear token element).
    DavidCell,
    /// Stimulus, tie or clock generator: originates transitions, has
    /// no netlist inputs worth tracing through.
    Source,
    /// Testbench machinery (producers, consumers, switch models).
    Env,
    /// Pure observer: reads signals, drives nothing.
    Monitor,
    /// Not annotated. Treated conservatively: opaque to loop and
    /// timing traversal, exempt from width checks.
    Unknown,
}

impl CellClass {
    /// Whether a combinational cycle through this cell is a real
    /// combinational loop (`true`) or is broken by state (`false`).
    pub fn is_transparent(self) -> bool {
        matches!(self, CellClass::Comb | CellClass::Wire | CellClass::Route)
    }

    /// Whether this class holds state across input changes.
    pub fn is_state_holding(self) -> bool {
        matches!(
            self,
            CellClass::Latch | CellClass::Dff | CellClass::CElement | CellClass::DavidCell
        )
    }

    /// Whether the width-consistency lint applies to this cell's
    /// reads (testbench/observer/source cells are exempt, as is
    /// pure routing, which reshapes widths by design).
    pub fn is_width_checked(self) -> bool {
        matches!(
            self,
            CellClass::Comb
                | CellClass::Wire
                | CellClass::Latch
                | CellClass::Dff
                | CellClass::CElement
                | CellClass::DavidCell
        )
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CellClass::Comb => "comb",
            CellClass::Wire => "wire",
            CellClass::Route => "route",
            CellClass::Latch => "latch",
            CellClass::Dff => "dff",
            CellClass::CElement => "celement",
            CellClass::DavidCell => "david",
            CellClass::Source => "source",
            CellClass::Env => "env",
            CellClass::Monitor => "monitor",
            CellClass::Unknown => "unknown",
        }
    }
}

/// One signal of the snapshot: identity, structure and annotations.
#[derive(Debug, Clone)]
pub struct NetSignal {
    /// The signal's id in the simulator that produced the snapshot.
    pub id: SignalId,
    /// Local name (within its scope).
    pub name: String,
    /// Full dotted hierarchical path.
    pub path: String,
    /// Width in bits.
    pub width: u8,
    /// Every component registered as driving this signal (the unique
    /// kernel driver plus any declared extra drivers).
    pub drivers: Vec<ComponentId>,
    /// Every component that reacts to or reads this signal
    /// (sensitivity fanout plus declared non-sensitized reads).
    pub readers: Vec<ComponentId>,
    /// Declared as a block port: expected to be driven externally
    /// (stimulus, another block), so "undriven" is not a defect.
    pub is_port: bool,
    /// Declared as legitimately multiply-driven (arbiter output).
    pub is_arbited: bool,
}

/// One component of the snapshot.
#[derive(Debug, Clone)]
pub struct NetComponent {
    /// The component's id in the simulator that produced the snapshot.
    pub id: ComponentId,
    /// Instance name.
    pub name: String,
    /// Dotted path of the scope the component lives in.
    pub scope_path: String,
    /// Behavioural class (see [`CellClass`]).
    pub class: CellClass,
    /// Nominal propagation delay, when annotated.
    pub delay: Option<Time>,
    /// Signals whose changes trigger evaluation (sensitivity list).
    pub inputs: Vec<SignalId>,
    /// Signals read without sensitization (e.g. a flip-flop's `d`
    /// pin, sampled only at the clock edge).
    pub reads: Vec<SignalId>,
    /// Signals this component drives.
    pub outputs: Vec<SignalId>,
    /// Data pins: inputs whose value flows to the output (a latch's
    /// `d`). Empty when the distinction was not annotated.
    pub data_pins: Vec<SignalId>,
    /// Trigger pins: inputs whose transitions launch the output (a
    /// flip-flop's clock, a latch's enable, a David cell's set/clear).
    /// Empty when the distinction was not annotated.
    pub trigger_pins: Vec<SignalId>,
    /// Member of an allowlisted intentional combinational loop (ring
    /// oscillator): cycles through it are reported as info, not error.
    pub loop_exempt: bool,
}

/// Generator parameters a bundled-data launch point was built with.
///
/// Attached by width/ratio-parameterized generators (the `LinkSpec`
/// machinery in `sal-link`) so lint reports and timing fixtures can
/// name the design point a bundle belongs to without re-deriving it
/// from the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleParams {
    /// Parallel word width the serializer carries, bits.
    pub word_width: u16,
    /// Serialization ratio (word width / slice width).
    pub serial_ratio: u16,
}

/// A bundled-data launch point: the event on `origin` that launches
/// both a data transition and the strobe that captures it.
#[derive(Debug, Clone)]
pub struct NetBundle {
    /// Human-readable label (block path).
    pub label: String,
    /// The signal whose transition constitutes the launch event; the
    /// static timing pass traces data and strobe cones back to it.
    pub origin: SignalId,
    /// Head start of the data over the strobe at the origin: the data
    /// event actually fired this much *before* the strobe event (e.g.
    /// the I3 serializer muxes the next slice on the previous
    /// half-period of its ring oscillator). Zero for same-event
    /// launches.
    pub data_lead: Time,
    /// Generator parameters, when the bundle came from a
    /// parameterized generator (`None` for hand-registered bundles).
    pub params: Option<BundleParams>,
}

/// A bundled-data capture point: `trigger` closes a storage element
/// over `data`, so the data must arrive (setup) before the trigger.
#[derive(Debug, Clone)]
pub struct NetCapture {
    /// The captured data signal (a latch or flip-flop data pin).
    pub data: SignalId,
    /// The capturing strobe signal (the enable or clock pin).
    pub trigger: SignalId,
}

/// A registered four-phase req/ack pair (from `watch_handshake`),
/// optionally extended to a req/nack/ack triple (from
/// `watch_handshake_nack`) on protected links.
#[derive(Debug, Clone)]
pub struct NetWatch {
    /// The label the pair was registered under.
    pub label: String,
    /// Request signal.
    pub req: SignalId,
    /// Acknowledge signal.
    pub ack: SignalId,
    /// Negative-acknowledge signal that can answer the same request
    /// (retransmission demand), when one was registered.
    pub nack: Option<SignalId>,
}

/// An immutable snapshot of the netlist's static structure, produced
/// by [`Simulator::netgraph`](crate::Simulator::netgraph).
///
/// Signals and components are indexed by their id (`signals[i]` has
/// `id == SignalId(i)`), so passes can use plain vectors for
/// per-node state.
#[derive(Debug, Clone)]
pub struct NetGraph {
    /// All signals, indexed by [`SignalId::index`].
    pub signals: Vec<NetSignal>,
    /// All components, indexed by [`ComponentId::index`].
    pub components: Vec<NetComponent>,
    /// Registered bundled-data launch points.
    pub bundles: Vec<NetBundle>,
    /// Registered bundled-data capture points.
    pub captures: Vec<NetCapture>,
    /// Registered handshake pairs.
    pub watches: Vec<NetWatch>,
}

impl NetGraph {
    /// The signal record for `id`.
    pub fn signal(&self, id: SignalId) -> &NetSignal {
        &self.signals[id.index()]
    }

    /// The component record for `id`.
    pub fn component(&self, id: ComponentId) -> &NetComponent {
        &self.components[id.index()]
    }
}

/// Annotation side tables accumulated during netlist construction.
/// Lives in the [`Simulator`](crate::Simulator) but is kept out of
/// the kernel: nothing here is touched by the event loop.
#[derive(Default)]
pub(crate) struct NetMeta {
    /// Behavioural class per component (lazily grown; missing entries
    /// read as [`CellClass::Unknown`]).
    pub classes: Vec<CellClass>,
    /// Nominal delay per component (lazily grown).
    pub delays: Vec<Option<Time>>,
    /// Loop-exemption flag per component (lazily grown).
    pub loop_exempt: Vec<bool>,
    /// Data-pin annotations, `(component, signal)`.
    pub data_pins: Vec<(ComponentId, SignalId)>,
    /// Trigger-pin annotations, `(component, signal)`.
    pub trigger_pins: Vec<(ComponentId, SignalId)>,
    /// Declared non-sensitized reads, `(component, signal)`.
    pub declared_reads: Vec<(ComponentId, SignalId)>,
    /// Signals declared as externally driven block ports.
    pub ports: Vec<SignalId>,
    /// Signals declared as legitimately multiply-driven.
    pub arbited: Vec<SignalId>,
    /// Extra drivers beyond the kernel's unique one, `(signal,
    /// component)`. Metadata only — the kernel still enforces a
    /// single dynamic driver.
    pub extra_drivers: Vec<(SignalId, ComponentId)>,
    /// Registered bundled-data launch points.
    pub bundles: Vec<NetBundle>,
    /// Registered bundled-data capture points.
    pub captures: Vec<NetCapture>,
}

impl NetMeta {
    fn grow(&mut self, comp: ComponentId) {
        let need = comp.index() + 1;
        if self.classes.len() < need {
            self.classes.resize(need, CellClass::Unknown);
            self.delays.resize(need, None);
            self.loop_exempt.resize(need, false);
        }
    }

    pub fn set_class(&mut self, comp: ComponentId, class: CellClass) {
        self.grow(comp);
        self.classes[comp.index()] = class;
    }

    pub fn class(&self, comp: ComponentId) -> CellClass {
        self.classes.get(comp.index()).copied().unwrap_or(CellClass::Unknown)
    }

    pub fn set_delay(&mut self, comp: ComponentId, delay: Time) {
        self.grow(comp);
        self.delays[comp.index()] = Some(delay);
    }

    pub fn set_loop_exempt(&mut self, comp: ComponentId) {
        self.grow(comp);
        self.loop_exempt[comp.index()] = true;
    }
}
