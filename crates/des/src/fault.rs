//! Fault injection and timing-margin perturbation.
//!
//! A [`FaultPlan`] describes how a netlist should be perturbed before
//! a run: per-component gate-delay derating (a global multiplier, a
//! seeded Gaussian sigma, or both), stuck-at faults and transient
//! glitches (SEUs) on named signals, and bundled-data *skew* — extra
//! delay added to data wires but not to the request/VALID wires they
//! are supposed to travel with. Plans are applied once via
//! [`crate::Simulator::apply_fault_plan`]; an empty plan installs no
//! state at all, so the fault hook is exactly zero-cost when unused
//! and a faulted run differs from a clean one only through the plan.
//!
//! All randomness is derived from the plan's seed with splitmix64, so
//! the same plan on the same netlist produces bit-identical runs —
//! Monte Carlo margin sweeps are reproducible point by point.

use crate::{SignalId, Time, Value};

/// Lower clamp for delay multipliers: a Gaussian sample far in the
/// left tail must not produce a zero or negative gate delay.
pub(crate) const MIN_DELAY_SCALE: f64 = 0.05;

/// A stuck-at fault: from `from` onward the signal is forced to
/// all-zeros or all-ones and every later drive of it is discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct StuckAt {
    /// Full hierarchical path of the target signal.
    pub path: String,
    /// `true` = stuck-at-1 (all bits), `false` = stuck-at-0.
    pub value: bool,
    /// Absolute time the fault takes effect.
    pub from: Time,
}

/// A transient glitch (single-event upset): at `at` the signal's
/// committed value has `mask` XORed into it; after `width` the
/// original value is restored. Downstream inertial delays filter the
/// pulse exactly as they would a real SEU.
#[derive(Debug, Clone, PartialEq)]
pub struct Glitch {
    /// Full hierarchical path of the target signal.
    pub path: String,
    /// Absolute time of the upset.
    pub at: Time,
    /// Pulse width before the original value is restored.
    pub width: Time,
    /// Bit mask XORed into the committed value (truncated to the
    /// signal width).
    pub mask: u64,
}

/// Bundled-data skew: every signal whose full path contains
/// `substring` has `extra` added to *all* of its drive delays. Aiming
/// this at the data wires of a bundled-data link (and not at its
/// req/VALID wires) models the data lagging its timing reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewRule {
    /// Substring matched against each signal's full hierarchical path.
    pub substring: String,
    /// Extra delay added to each drive of a matching signal.
    pub extra: Time,
}

/// A declarative description of every perturbation to apply to one
/// simulation run. Construct with [`FaultPlan::new`] and the builder
/// methods, then install with [`crate::Simulator::apply_fault_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all derived randomness (per-component Gaussian draws).
    pub seed: u64,
    /// Global gate-delay multiplier (derating). 1.0 = nominal.
    pub delay_scale: f64,
    /// Sigma of the per-component multiplicative Gaussian delay
    /// variation: each component's delays are scaled by an independent
    /// draw from `N(1, sigma)`, clamped positive. 0.0 disables it.
    pub delay_sigma: f64,
    /// Scope-path prefixes the delay perturbation is restricted to
    /// (e.g. `"link.wire"`). Empty = every component.
    pub scopes: Vec<String>,
    /// Enable flip-flop setup-window checking for in-scope components:
    /// a flip-flop whose data input changed within its setup window
    /// before the active clock edge captures `X` (metastability)
    /// instead of a clean value. The window scales with the same
    /// per-component delay multiplier as the cell's own delays, so a
    /// uniformly derated self-timed block keeps its relative margins
    /// while logic racing a *fixed* clock loses slack.
    pub setup_check: bool,
    /// Stuck-at faults to install.
    pub stuck: Vec<StuckAt>,
    /// Transient glitches to install.
    pub glitches: Vec<Glitch>,
    /// Bundled-data skew rules to install.
    pub skews: Vec<SkewRule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty (no-op) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_scale: 1.0,
            delay_sigma: 0.0,
            scopes: Vec::new(),
            setup_check: false,
            stuck: Vec::new(),
            glitches: Vec::new(),
            skews: Vec::new(),
        }
    }

    /// Sets the global delay derating multiplier.
    pub fn with_delay_scale(mut self, scale: f64) -> Self {
        self.delay_scale = scale;
        self
    }

    /// Sets the per-component Gaussian delay-variation sigma.
    pub fn with_delay_sigma(mut self, sigma: f64) -> Self {
        self.delay_sigma = sigma;
        self
    }

    /// Restricts the delay perturbation to components whose scope path
    /// equals `prefix` or starts with `prefix` followed by a dot. May
    /// be called repeatedly; matching any listed prefix qualifies.
    pub fn in_scope(mut self, prefix: &str) -> Self {
        self.scopes.push(prefix.to_string());
        self
    }

    /// Enables flip-flop setup-window checking for in-scope
    /// components (see [`FaultPlan::setup_check`]).
    pub fn with_setup_check(mut self) -> Self {
        self.setup_check = true;
        self
    }

    /// Adds a stuck-at fault on the signal at `path`.
    pub fn stuck_at(mut self, path: &str, value: bool, from: Time) -> Self {
        self.stuck.push(StuckAt { path: path.to_string(), value, from });
        self
    }

    /// Adds a transient glitch on the signal at `path`.
    pub fn glitch(mut self, path: &str, at: Time, width: Time, mask: u64) -> Self {
        self.glitches.push(Glitch { path: path.to_string(), at, width, mask });
        self
    }

    /// Adds a skew rule: extra drive delay on every signal whose path
    /// contains `substring`.
    pub fn skew_matching(mut self, substring: &str, extra: Time) -> Self {
        self.skews.push(SkewRule { substring: substring.to_string(), extra });
        self
    }

    /// True if the plan perturbs nothing; applying it is a no-op and
    /// installs no per-drive overhead.
    pub fn is_empty(&self) -> bool {
        self.delay_scale == 1.0
            && self.delay_sigma == 0.0
            && !self.setup_check
            && self.stuck.is_empty()
            && self.glitches.is_empty()
            && self.skews.is_empty()
    }

    /// Whether a component in the scope with path `path` is subject to
    /// the delay perturbation.
    pub(crate) fn scope_matches(&self, path: &str) -> bool {
        if self.scopes.is_empty() {
            return true;
        }
        self.scopes.iter().any(|p| {
            path == p || (path.len() > p.len() && path.starts_with(p.as_str()) && path.as_bytes()[p.len()] == b'.')
        })
    }

    /// The deterministic delay multiplier for component index `comp`.
    pub(crate) fn sample_scale(&self, comp: usize) -> f64 {
        let mut m = self.delay_scale;
        if self.delay_sigma > 0.0 {
            let g = gaussian(self.seed ^ (comp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            m *= (1.0 + self.delay_sigma * g).max(MIN_DELAY_SCALE);
        }
        m.max(MIN_DELAY_SCALE)
    }
}

/// A scheduled fault action, executed by the kernel as its own event.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FaultAction {
    /// Force-commit `value` onto the signal, cancelling in-flight
    /// drives.
    Force { signal: SignalId, value: Value },
    /// XOR `mask` into the committed value and schedule a restoring
    /// `Force` after `width`.
    Glitch { signal: SignalId, mask: u64, width: Time },
}

/// The resolved, per-netlist form of a [`FaultPlan`], installed in the
/// kernel. Only present when a non-empty plan was applied — the fast
/// path tests a single `Option`.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Delay multiplier per component index (1.0 = untouched).
    pub comp_scale: Vec<f64>,
    /// Extra drive delay per signal index, femtoseconds (skew).
    pub extra_delay_fs: Vec<u64>,
    /// Time from which each signal is stuck (`Time::MAX` = never).
    pub stuck_from: Vec<Time>,
    /// Per-component flag: flip-flops at these indices perform setup-
    /// window checking (capture `X` on a data change inside the
    /// window).
    pub setup_check: Vec<bool>,
    /// Scheduled fault actions, referenced by index from fault events.
    /// Grows when a glitch schedules its own restore.
    pub actions: Vec<FaultAction>,
}

impl FaultState {
    /// Transforms one drive according to the installed perturbations:
    /// returns the adjusted delay, or `None` if the drive targets a
    /// stuck signal and must be discarded.
    #[inline]
    pub fn transform(
        &self,
        comp: crate::ComponentId,
        sig: SignalId,
        now: Time,
        delay: Time,
    ) -> Option<Time> {
        // Components and signals added *after* the plan was applied
        // (testbench sources, monitors) are beyond the resolved tables
        // and run at nominal timing.
        if self.stuck_from.get(sig.index()).is_some_and(|&from| now >= from) {
            return None;
        }
        let scale = self.comp_scale.get(comp.index()).copied().unwrap_or(1.0);
        let extra = self.extra_delay_fs.get(sig.index()).copied().unwrap_or(0);
        if scale == 1.0 && extra == 0 {
            return Some(delay);
        }
        let fs = (delay.as_fs() as f64 * scale).round() as u64 + extra;
        Some(Time::from_fs(fs))
    }
}

/// splitmix64: the canonical 64-bit mixing function. Used to derive
/// independent per-component streams from one plan seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in (0, 1] from one splitmix64 output — never zero,
/// so it is safe under `ln`.
fn unit_open(x: u64) -> f64 {
    ((x >> 11) as f64 + 1.0) * (1.0 / 9_007_199_254_740_992.0)
}

/// One standard-normal draw via Box–Muller, fully determined by the
/// seed.
pub(crate) fn gaussian(seed: u64) -> f64 {
    let a = splitmix64(seed);
    let b = splitmix64(a);
    let u1 = unit_open(a);
    let u2 = unit_open(b);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(!FaultPlan::new(1).with_delay_scale(2.0).is_empty());
        assert!(!FaultPlan::new(1).with_delay_sigma(0.1).is_empty());
        assert!(!FaultPlan::new(1).stuck_at("a", false, Time::ZERO).is_empty());
        assert!(!FaultPlan::new(1)
            .glitch("a", Time::from_ns(1), Time::from_ps(100), 1)
            .is_empty());
        assert!(!FaultPlan::new(1).skew_matching("seg_d", Time::from_ps(50)).is_empty());
        // A scope filter alone perturbs nothing.
        assert!(FaultPlan::new(1).in_scope("link").is_empty());
    }

    #[test]
    fn scope_prefix_matching_is_component_wise() {
        let p = FaultPlan::new(0).in_scope("link.wire");
        assert!(p.scope_matches("link.wire"));
        assert!(p.scope_matches("link.wire.buf0"));
        assert!(!p.scope_matches("link.wires"));
        assert!(!p.scope_matches("link"));
        let all = FaultPlan::new(0);
        assert!(all.scope_matches("anything.at.all"));
    }

    #[test]
    fn gaussian_is_deterministic_and_plausible() {
        assert_eq!(gaussian(42), gaussian(42));
        assert_ne!(gaussian(42), gaussian(43));
        // Mean and sigma over a modest sample: loose sanity bounds.
        let n = 4096;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for i in 0..n {
            let g = gaussian(i);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_scale_clamps_and_scales() {
        let p = FaultPlan::new(7).with_delay_scale(2.0);
        assert_eq!(p.sample_scale(0), 2.0);
        // An absurd sigma cannot drive the multiplier non-positive.
        let p = FaultPlan::new(7).with_delay_sigma(100.0);
        for c in 0..64 {
            assert!(p.sample_scale(c) >= MIN_DELAY_SCALE);
        }
        // Same seed, same component: bit-identical.
        let a = FaultPlan::new(9).with_delay_sigma(0.2);
        let b = FaultPlan::new(9).with_delay_sigma(0.2);
        for c in 0..16 {
            assert_eq!(a.sample_scale(c).to_bits(), b.sample_scale(c).to_bits());
        }
    }
}
