//! Property test: the compiled netlist engine is bit-identical to the
//! interpreted event loop on randomly generated gate networks.
//!
//! The generator grows a random DAG of word-wide gates (INV/BUF/AND/
//! OR/NAND/XOR/MUX), 1-bit control logic, D flip-flops and transparent
//! latches, then drives it with random stimulus schedules. Both
//! engines run the identical netlist and the *entire* transition
//! trace — every `(time, signal, old, new)` commit in order — plus
//! per-signal toggle counters must match exactly.

use proptest::prelude::*;
use sal_bench::sliced::{scalar_run, sliced_campaign};
use sal_cells::{CircuitBuilder, UnitLibrary};
use sal_des::{MemoryTrace, SignalId, Simulator, Time, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick(&mut self, pool: &[SignalId]) -> SignalId {
        pool[self.below(pool.len() as u64) as usize]
    }
}

/// Builds one random gate network and runs it with a full transition
/// trace; returns the trace as comparable tuples plus the toggle sum
/// over all gate outputs.
fn run_random_net(seed: u64, compiled: bool) -> (Vec<(Time, SignalId, Value, Value)>, u64) {
    let mut rng = Rng::new(seed);
    let width = 1 + rng.below(16) as u8;
    let mut sim = Simulator::new();
    let lib = UnitLibrary;
    let mut b = CircuitBuilder::new(&mut sim, &lib);

    let clk = b.input("clk", 1);
    let rstn = b.input("rstn", 1);
    // Word-wide pool and 1-bit control pool; gates only reference
    // earlier entries, so the net is a DAG (no combinational loops).
    let mut wpool: Vec<SignalId> = (0..3).map(|i| b.input(&format!("in{i}"), width)).collect();
    let mut bpool: Vec<SignalId> = (0..2).map(|i| b.input(&format!("sel{i}"), 1)).collect();
    let inputs: Vec<(SignalId, u8)> = wpool
        .iter()
        .map(|&s| (s, width))
        .chain(bpool.iter().map(|&s| (s, 1)))
        .collect();

    let ngates = 12 + rng.below(28);
    for i in 0..ngates {
        let name = format!("g{i}");
        let word = rng.below(4) != 0; // 3:1 word-wide vs control
        let (pool_w, out) = if word {
            let a = rng.pick(&wpool);
            let c = rng.pick(&wpool);
            let out = match rng.below(7) {
                0 => b.inv(&name, a),
                1 => b.buf(&name, a),
                2 => b.and2(&name, a, c),
                3 => b.or2(&name, a, c),
                4 => b.nand2(&name, a, c),
                5 => b.xor2(&name, a, c),
                _ => {
                    let sel = rng.pick(&bpool);
                    b.mux2(&name, sel, a, c)
                }
            };
            (true, out)
        } else {
            let a = rng.pick(&bpool);
            let c = rng.pick(&bpool);
            let out = match rng.below(5) {
                0 => b.inv(&name, a),
                1 => b.and2(&name, a, c),
                2 => b.or2(&name, a, c),
                3 => b.nand2(&name, a, c),
                _ => b.xor2(&name, a, c),
            };
            (false, out)
        };
        if pool_w {
            wpool.push(out);
        } else {
            bpool.push(out);
        }
        // Sprinkle sequential cells so compiled cones feed and are fed
        // by dynamic components (the engine boundary under test).
        if i % 9 == 4 {
            let d = rng.pick(&wpool);
            let q = b.dff(&format!("r{i}"), d, clk, Some(rstn));
            wpool.push(q);
        }
        if i % 11 == 7 {
            let d = rng.pick(&wpool);
            let en = rng.pick(&bpool);
            let q = b.dlatch(&format!("l{i}"), d, en, Some(rstn));
            wpool.push(q);
        }
    }
    b.finish();
    if compiled {
        sim.compile();
    }

    // Clock: 1 ns period, 150 cycles. Reset released at 1.5 ns.
    let clk_sched: Vec<(Time, Value)> = (0..300u64)
        .map(|i| (Time::from_ps(500 * (i + 1)), Value::from_u64(1, (i + 1) % 2)))
        .collect();
    sim.stimulus(clk, &clk_sched);
    sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(1_500), Value::one(1))]);
    for (sig, w) in &inputs {
        let mask = if *w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let mut t = 2_000u64;
        let sched: Vec<(Time, Value)> = (0..40)
            .map(|_| {
                t += 200 + rng.below(3_500);
                (Time::from_ps(t), Value::from_u64(*w, rng.next() & mask))
            })
            .collect();
        sim.stimulus(*sig, &sched);
    }

    sim.set_trace_sink(Box::new(MemoryTrace::new()));
    sim.run_until(Time::from_ns(200)).expect("random net settles");
    let toggles: u64 = wpool.iter().chain(bpool.iter()).map(|&s| sim.toggles(s)).sum();
    let sink = sim.take_trace_sink().expect("sink installed");
    let mut trace: Vec<(Time, SignalId, Value, Value)> = sink
        .records()
        .expect("memory trace records")
        .iter()
        .map(|r| (r.time, r.signal, r.old, r.new))
        .collect();
    // Same-instant commits to *different* signals may interleave
    // differently between the engines (the compiled calendar drains in
    // cone order, the global queue in schedule order); both orders are
    // individually deterministic. The equivalence contract is the
    // per-signal waveform, so sort stably by (time, signal): each
    // signal's own series keeps its order, cross-signal transpositions
    // within one femtosecond collapse.
    trace.sort_by_key(|&(t, s, _, _)| (t, s));
    (trace, toggles)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// The compiled engine must replay the interpreted engine's
    /// transition history exactly — same commits, same order, same
    /// times, same values — on arbitrary gate networks.
    #[test]
    fn compiled_matches_interpreted(seed in 0u64..1_000_000) {
        let (interp_trace, interp_toggles) = run_random_net(seed, false);
        let (comp_trace, comp_toggles) = run_random_net(seed, true);
        prop_assert_eq!(interp_toggles, comp_toggles);
        prop_assert_eq!(interp_trace.len(), comp_trace.len());
        for (a, b) in interp_trace.iter().zip(comp_trace.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Sliced fidelity as a property: for arbitrary storm seeds at a
    /// modest lane count, every lane of the sliced campaign — healthy
    /// or replayed — matches its scalar ground truth byte for byte.
    #[test]
    fn sliced_campaign_matches_scalar(storm in 0u64..10_000) {
        let lanes = 4u8;
        let r = sliced_campaign(storm, lanes);
        for k in 0..lanes {
            let truth = scalar_run(storm, k, lanes);
            prop_assert_eq!(&r.flit_series[k as usize], &truth, "lane {} of storm {}", k, storm);
        }
    }
}
