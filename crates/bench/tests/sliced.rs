//! Sliced-campaign enforcement: every lane of a 64-seed bit-sliced
//! pass must be **byte-identical** to its scalar ground-truth run,
//! per-lane injection must be observable at the delivered flits, and
//! the pass must beat 64 scalar runs by at least 5x wall-clock.

use std::time::Instant;

use sal_bench::sliced::{scalar_run, sliced_campaign};

/// A storm whose sites straddle latch-capture windows without
/// catching a segment mid-transition: every masked lane corrupts its
/// own wire bit (observably different delivered flits) yet stays
/// converged, so only the zero-mask control lane is demoted — a
/// union-glitch force cancels an in-flight carrier drive that the
/// clean lane's own timeline would have kept.
const GOLDEN_STORM: u64 = 73;

/// A storm that catches segments mid-transition: conservative
/// divergence demotes every lane and the driver falls back to
/// scalar replays.
const STORMY: u64 = 3;

#[test]
fn sliced_lanes_are_byte_identical_to_scalar_and_5x_faster() {
    let lanes = 64u8;
    let r = sliced_campaign(GOLDEN_STORM, lanes);
    assert!(
        r.diverged.count_ones() <= 4,
        "golden storm should stay converged, demoted {:#x}",
        r.diverged
    );

    let t0 = Instant::now();
    let truth: Vec<_> = (0..lanes).map(|k| scalar_run(GOLDEN_STORM, k, lanes)).collect();
    let scalar_wall = t0.elapsed();

    for (k, lane_truth) in truth.iter().enumerate() {
        assert_eq!(
            &r.flit_series[k], lane_truth,
            "lane {k}: sliced delivery series differs from scalar ground truth"
        );
    }
    let distinct = (1..lanes as usize)
        .filter(|&k| r.flit_series[k] != r.flit_series[0])
        .count();
    assert!(
        distinct >= 32,
        "per-lane injection should corrupt most lanes observably, got {distinct}/63"
    );

    let sliced_wall = r.carrier_wall + r.replay_wall;
    let speedup = scalar_wall.as_secs_f64() / sliced_wall.as_secs_f64();
    assert!(
        speedup >= 5.0,
        "sliced campaign speedup {speedup:.1}x below the 5x floor \
         (carrier {:?} + replay {:?} vs scalar {:?})",
        r.carrier_wall,
        r.replay_wall,
        scalar_wall
    );

    // The carrier's profile reports the campaign shape: all 64 lanes
    // active, fallback count equal to the demoted-lane popcount, and
    // compiled cones doing the heavy lifting underneath.
    assert_eq!(r.profile.lanes_active, u64::from(lanes));
    assert_eq!(r.profile.scalar_fallbacks, u64::from(r.diverged.count_ones()));
    assert!(r.profile.cones_built > 0 && r.profile.events_avoided > 0);
}

#[test]
fn demoted_lanes_fall_back_to_faithful_scalar_replay() {
    let lanes = 8u8;
    let r = sliced_campaign(STORMY, lanes);
    assert_ne!(r.diverged, 0, "stormy seed should trip conservative divergence");
    for k in 0..lanes {
        assert_eq!(
            r.flit_series[k as usize],
            scalar_run(STORMY, k, lanes),
            "lane {k}: replay series differs from scalar ground truth"
        );
    }
}
