//! Corner-case coverage that used to live in the ad-hoc `dbg_corner`
//! debug binaries: an aggressively clocked I3 link across technology
//! corners. The contract is the one the unified entry point
//! guarantees — every corner either delivers all words or reports a
//! structured [`RunFailure`], never a panic.

use sal_des::Time;
use sal_link::measure::{run_spec, MeasureOptions, RunFailure};
use sal_link::{LinkConfig, LinkFamily, LinkSpec};
use sal_tech::{Corner, St012Library};

fn fast_clock_cfg() -> LinkConfig {
    LinkConfig { clk_period: Time::from_ps(1000), ..LinkConfig::default() }
}

fn words() -> Vec<u64> {
    (0..8).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect()
}

#[test]
fn i3_fast_clock_across_corners_never_panics() {
    for corner in [Corner::Fast, Corner::Typical, Corner::Slow] {
        let opts = MeasureOptions::default()
            .with_lib(St012Library::at_corner(corner))
            .with_timeout(Time::from_us(3));
        match run_spec(&LinkSpec::paper(LinkFamily::PerWord), &fast_clock_cfg(), &words(), &opts) {
            Ok(r) => {
                assert_eq!(r.received_words(), words(), "{corner:?} corrupted data");
                assert!(r.throughput_mflits() > 0.0, "{corner:?} throughput");
            }
            Err(RunFailure::Deadlock { delivered, expected, .. }) => {
                // A slow corner may legitimately wedge at this clock;
                // the failure must stay structured and partial.
                assert!(delivered < expected, "{corner:?} deadlock with full delivery");
            }
            Err(e) => panic!("{corner:?}: unexpected failure class: {e}"),
        }
    }
}

#[test]
fn i3_typical_corner_delivers_at_1ns_clock() {
    let opts = MeasureOptions::default()
        .with_lib(St012Library::at_corner(Corner::Typical))
        .with_timeout(Time::from_us(3));
    let r = run_spec(&LinkSpec::paper(LinkFamily::PerWord), &fast_clock_cfg(), &words(), &opts)
        .expect("typical corner delivers");
    assert_eq!(r.received_words(), words());
}

#[test]
fn i3_slow_corner_reports_structured_outcome_with_diagnosis() {
    let opts = MeasureOptions::default()
        .with_lib(St012Library::at_corner(Corner::Slow))
        .with_timeout(Time::from_us(3));
    match run_spec(&LinkSpec::paper(LinkFamily::PerWord), &fast_clock_cfg(), &words(), &opts) {
        Ok(r) => assert_eq!(r.received_words(), words()),
        Err(RunFailure::Deadlock { at, expected, .. }) => {
            assert_eq!(expected, words().len());
            assert!(at >= Time::from_us(3) || at > Time::ZERO);
        }
        Err(e) => panic!("unexpected failure class: {e}"),
    }
}
