//! Network chaos campaign for end-to-end flows (`--bin flows`).
//!
//! The flow layer's claim is falsifiable: windowed senders with AIMD
//! backoff over lossy channels must deliver every payload exactly
//! once — no silent corruption, no duplicates — or the progress
//! watchdog must *name* what starved. This module runs that claim as
//! a campaign over
//! {flow layout} × {error process} × {protection} × {error rate} ×
//! {seed} through [`sweep::parallel_map`], plus a set of
//! link-killer cells where channels fail permanently and the
//! watchdog's livelock diagnosis is the artifact under test.
//!
//! The headline is the goodput-collapse / fairness curve: per
//! `(layout, process, protection)` the aggregate goodput and Jain
//! index across error rates, with the integrity invariants
//! (`accepted_corrupt == 0`, `dup_delivered == 0`, zero unflagged
//! livelocks) asserted over *every* cell. Everything is seeded and
//! the JSON is bytewise deterministic — CI diffs `BENCH_flows.json`
//! against a committed fixture.

use sal_noc::{
    ChannelFaults, ChannelProtection, ErrorProcess, FlowConfig, FlowNetReport, FlowSpec,
    LinkModel, Mesh, Network, NetworkConfig, NodeId, WatchdogConfig,
};

use crate::sweep;

/// Flow layouts on the 4×4 mesh.
pub const LAYOUTS: [&str; 2] = ["corners", "hotspot"];

/// Error-process shapes (same mean rate, different clustering).
pub const PROCESSES: [&str; 2] = ["iid", "bursty"];

/// Link protections under test: CRC-8 detects-and-replays everything;
/// `off` delivers silent corruption that only the end-to-end check
/// can catch.
pub const PROTECTIONS: [ChannelProtection; 2] =
    [ChannelProtection::Crc8, ChannelProtection::Off];

/// Mean per-flit error rates swept (the goodput-collapse axis).
pub const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

/// Network seeds per cell (determinism is part of the contract).
pub const SEEDS: [u64; 2] = [29, 61];

/// Payload packets per flow.
pub const FLOW_PACKETS: u64 = 150;

/// Hard cycle budget per cell; a cell that neither completes nor
/// livelocks by then is reported as `progressing_at_cutoff`.
pub const MAX_CYCLES: u64 = 400_000;

/// One campaign cell's coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Flow layout name (see [`LAYOUTS`]).
    pub layout: &'static str,
    /// Error-process shape (see [`PROCESSES`]).
    pub process: &'static str,
    /// Link protection.
    pub protection: ChannelProtection,
    /// Mean per-flit error rate.
    pub rate: f64,
    /// Network seed.
    pub seed: u64,
    /// Link-killer variant: channels fail permanently after two
    /// resyncs on one flit (exercises the watchdog's naming).
    pub kill_links: bool,
}

/// One finished campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCell {
    /// Coordinates.
    pub spec: CellSpec,
    /// The full flow-mode run report.
    pub report: FlowNetReport,
}

impl FlowCell {
    /// Outcome tag for tables and JSON: `completed`, `livelocked`, or
    /// `progressing_at_cutoff`.
    pub fn outcome(&self) -> &'static str {
        if self.report.completed {
            "completed"
        } else if self.report.livelocked {
            "livelocked"
        } else {
            "progressing_at_cutoff"
        }
    }

    /// Aggregate goodput: payload packets delivered in order per
    /// cycle, summed over flows.
    pub fn agg_goodput(&self) -> f64 {
        self.report.flows.iter().map(|f| f.goodput_ppc).sum()
    }

    /// Corrupted payloads the receivers *accepted* — the campaign's
    /// most load-bearing zero.
    pub fn accepted_corrupt(&self) -> u64 {
        self.report.flows.iter().map(|f| f.counts.accepted_corrupt).sum()
    }

    /// Payloads delivered to an application more than once — the
    /// second load-bearing zero.
    pub fn dup_delivered(&self) -> u64 {
        self.report.flows.iter().map(|f| f.counts.dup_delivered).sum()
    }

    /// A stall the watchdog flagged but could not attribute: a hard
    /// livelock whose final report names no starved flow. Must never
    /// happen.
    pub fn unnamed_livelock(&self) -> bool {
        self.report.livelocked
            && !self.report.stalls.last().is_some_and(|s| s.hard && !s.starved.is_empty())
    }
}

/// The flow layout of a cell: `corners` is four disjoint long-haul
/// flows (fairness should stay near 1); `hotspot` aims four flows at
/// one core so the AIMD windows compete for the same ejection port.
pub fn layout_flows(layout: &str) -> Vec<FlowSpec> {
    let f = |src: u16, dst: u16| FlowSpec {
        src: NodeId(src),
        dst: NodeId(dst),
        packets: FLOW_PACKETS,
    };
    match layout {
        "corners" => vec![f(0, 15), f(3, 12), f(12, 3), f(15, 0)],
        "hotspot" => vec![f(0, 5), f(3, 5), f(12, 5), f(15, 5)],
        other => panic!("unknown layout {other}"),
    }
}

/// The error process of a cell: i.i.d. at the mean rate, or a
/// Gilbert–Elliott burst process with the same stationary mean whose
/// bad state errors at 60 % and persists ~20 flits.
pub fn cell_process(process: &str, rate: f64) -> ErrorProcess {
    match process {
        "iid" => ErrorProcess::Iid { p: rate },
        "bursty" if rate == 0.0 => ErrorProcess::Iid { p: 0.0 },
        "bursty" => ErrorProcess::bursty(rate, 0.6, 0.05),
        other => panic!("unknown process {other}"),
    }
}

fn cell_config(spec: CellSpec) -> (NetworkConfig, FlowConfig) {
    let mut faults = ChannelFaults::new(cell_process(spec.process, spec.rate), spec.protection);
    if spec.kill_links {
        faults = faults.with_permanent_failure(2);
    }
    let cfg = NetworkConfig {
        mesh: Mesh::new(4, 4),
        link: LinkModel::ideal(),
        input_queue_flits: 8,
        packet_len_flits: 4,
        faults: Some(faults),
        routing: sal_noc::RoutingMode::XyStatic,
        link_kills: Vec::new(),
    };
    let mut flows = FlowConfig::new(layout_flows(spec.layout));
    // The livelock horizon must exceed the worst legitimate silence
    // (a fully backed-off RTO plus a round trip), or a patient sender
    // gets misdiagnosed as livelocked.
    flows.watchdog = WatchdogConfig { interval: 4_096, hard_stall_checks: 8 };
    (cfg, flows)
}

/// Runs one cell.
pub fn run_cell(spec: CellSpec) -> FlowCell {
    let (cfg, flows) = cell_config(spec);
    let mut net = Network::with_flows(cfg, &flows, spec.seed);
    FlowCell { spec, report: net.run_flows(MAX_CYCLES) }
}

/// Everything `--bin flows` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowsReport {
    /// All cells: the full sweep first, then the link-killer cells.
    pub cells: Vec<FlowCell>,
}

/// Runs the full campaign. Deterministic: all randomness flows from
/// [`SEEDS`] through per-channel derived streams.
pub fn campaign() -> FlowsReport {
    let mut specs: Vec<CellSpec> = Vec::new();
    for layout in LAYOUTS {
        for process in PROCESSES {
            for protection in PROTECTIONS {
                for rate in RATES {
                    for seed in SEEDS {
                        specs.push(CellSpec {
                            layout,
                            process,
                            protection,
                            rate,
                            seed,
                            kill_links: false,
                        });
                    }
                }
            }
        }
    }
    // Link-killer cells: the harshest bursty storm with permanent
    // failure enabled — the watchdog's diagnosis is the artifact.
    for layout in LAYOUTS {
        for seed in SEEDS {
            specs.push(CellSpec {
                layout,
                process: "bursty",
                protection: ChannelProtection::Crc8,
                rate: 0.10,
                seed,
                kill_links: true,
            });
        }
    }
    let cells = sweep::parallel_map(specs, run_cell).expect("a flow cell panicked");
    FlowsReport { cells }
}

/// One point of the goodput-collapse curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveRow {
    /// Mean per-flit error rate.
    pub rate: f64,
    /// Aggregate goodput averaged over seeds, packets/cycle.
    pub goodput: f64,
    /// Jain fairness index averaged over seeds.
    pub jain: f64,
    /// Fraction of seeds whose cell completed.
    pub completed_frac: f64,
}

/// The goodput-collapse curve of one `(layout, process, protection)`
/// slice of the sweep (link-killer cells excluded).
pub fn curve(
    cells: &[FlowCell],
    layout: &str,
    process: &str,
    protection: ChannelProtection,
) -> Vec<CurveRow> {
    RATES
        .iter()
        .map(|&rate| {
            let slice: Vec<&FlowCell> = cells
                .iter()
                .filter(|c| {
                    !c.spec.kill_links
                        && c.spec.layout == layout
                        && c.spec.process == process
                        && c.spec.protection == protection
                        && c.spec.rate == rate
                })
                .collect();
            let n = slice.len().max(1) as f64;
            CurveRow {
                rate,
                goodput: slice.iter().map(|c| c.agg_goodput()).sum::<f64>() / n,
                jain: slice.iter().map(|c| c.report.jain).sum::<f64>() / n,
                completed_frac: slice.iter().filter(|c| c.report.completed).count() as f64 / n,
            }
        })
        .collect()
}

fn flow_json(f: &sal_noc::FlowStats) -> String {
    format!(
        "{{\"flow\": {}, \"src\": {}, \"dst\": {}, \"delivered\": {}, \"acked\": {}, \
         \"completed_at\": {}, \"goodput_ppc\": {:.6}, \"sent\": {}, \"retx\": {}, \
         \"timeouts\": {}, \"dup_rx\": {}, \"dup_delivered\": {}, \"corrupt_payloads\": {}, \
         \"corrupt_acks\": {}, \"accepted_corrupt\": {}}}",
        f.flow.0,
        f.spec.src.0,
        f.spec.dst.0,
        f.delivered,
        f.acked,
        f.completed_at.map_or_else(|| "null".to_string(), |c| c.to_string()),
        f.goodput_ppc,
        f.counts.sent,
        f.counts.retx,
        f.counts.timeouts,
        f.counts.dup_rx,
        f.counts.dup_delivered,
        f.counts.corrupt_payloads,
        f.counts.corrupt_acks,
        f.counts.accepted_corrupt,
    )
}

fn stalls_json(report: &FlowNetReport) -> String {
    let last = report.stalls.last().map_or_else(
        || "null".to_string(),
        |s| {
            let starved: Vec<String> = s
                .starved
                .iter()
                .map(|f| {
                    format!(
                        "{{\"flow\": {}, \"src\": {}, \"dst\": {}, \"cum_acked\": {}, \
                         \"packets\": {}, \"backoff\": {}, \"retx\": {}}}",
                        f.flow.0, f.src.0, f.dst.0, f.cum_acked, f.packets, f.backoff, f.retx
                    )
                })
                .collect();
            let channels: Vec<String> = s
                .stalled_channels
                .iter()
                .map(|c| {
                    format!(
                        "{{\"node\": {}, \"dir\": \"{:?}\", \"state\": \"{}\", \"queued\": {}}}",
                        c.from.0, c.dir, c.state, c.queued
                    )
                })
                .collect();
            format!(
                "{{\"cycle\": {}, \"hard\": {}, \"starved\": [{}], \"stalled_channels\": [{}]}}",
                s.cycle,
                s.hard,
                starved.join(", "),
                channels.join(", ")
            )
        },
    );
    format!("{{\"reports\": {}, \"last\": {last}}}", report.stalls.len())
}

fn cell_json(c: &FlowCell) -> String {
    let rec = &c.report.net.recovery;
    let flows: Vec<String> = c.report.flows.iter().map(flow_json).collect();
    format!(
        "{{\"layout\": \"{}\", \"process\": \"{}\", \"protection\": \"{}\", \"rate\": {:.3}, \
         \"seed\": {}, \"kill_links\": {}, \"outcome\": \"{}\", \"cycles\": {}, \
         \"agg_goodput\": {:.6}, \"jain\": {:.4}, \
         \"recovery\": {{\"errors\": {}, \"nacks\": {}, \"timeouts\": {}, \"replays\": {}, \
         \"resyncs\": {}, \"degrades\": {}, \"undetected\": {}, \"failed_links\": {}}}, \
         \"stalls\": {}, \"flows\": [{}]}}",
        c.spec.layout,
        c.spec.process,
        c.spec.protection.label(),
        c.spec.rate,
        c.spec.seed,
        c.spec.kill_links,
        c.outcome(),
        c.report.cycles,
        c.agg_goodput(),
        c.report.jain,
        rec.counts.errors,
        rec.counts.nacks,
        rec.counts.timeouts,
        rec.counts.replays,
        rec.counts.resyncs,
        rec.counts.degrades,
        rec.counts.undetected,
        rec.failed_links,
        stalls_json(&c.report),
        flows.join(", ")
    )
}

/// Serialises the report as the `BENCH_flows.json` artifact
/// (hand-rolled: the vendored serde is a no-op stub).
pub fn to_json(r: &FlowsReport) -> String {
    let accepted_corrupt: u64 = r.cells.iter().map(FlowCell::accepted_corrupt).sum();
    let dup_delivered: u64 = r.cells.iter().map(FlowCell::dup_delivered).sum();
    let unnamed = r.cells.iter().filter(|c| c.unnamed_livelock()).count();
    let mut curves = Vec::new();
    for layout in LAYOUTS {
        for process in PROCESSES {
            for protection in PROTECTIONS {
                let rows: Vec<String> = curve(&r.cells, layout, process, protection)
                    .iter()
                    .map(|p| {
                        format!(
                            "[{:.3}, {:.6}, {:.4}, {:.2}]",
                            p.rate, p.goodput, p.jain, p.completed_frac
                        )
                    })
                    .collect();
                curves.push(format!(
                    "    {{\"layout\": \"{layout}\", \"process\": \"{process}\", \
                     \"protection\": \"{}\", \"curve_rate_goodput_jain_completed\": [{}]}}",
                    protection.label(),
                    rows.join(", ")
                ));
            }
        }
    }
    let cells: Vec<String> = r.cells.iter().map(cell_json).collect();
    let seeds: Vec<String> = SEEDS.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"experiment\": \"flows\",\n  \"flow_packets\": {},\n  \"max_cycles\": {},\n  \
         \"seeds\": [{}],\n  \"invariants\": {{\"accepted_corrupt\": {accepted_corrupt}, \
         \"dup_delivered\": {dup_delivered}, \"unnamed_livelocks\": {unnamed}}},\n  \
         \"curves\": [\n{}\n  ],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        FLOW_PACKETS,
        MAX_CYCLES,
        seeds.join(", "),
        curves.join(",\n"),
        cells.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(protection: ChannelProtection, rate: f64) -> FlowCell {
        // A single small cell keeps the debug-profile test fast.
        run_cell(CellSpec {
            layout: "corners",
            process: "iid",
            protection,
            rate,
            seed: SEEDS[0],
            kill_links: false,
        })
    }

    #[test]
    fn clean_cell_completes_fairly() {
        let cell = tiny_cell(ChannelProtection::Crc8, 0.0);
        assert_eq!(cell.outcome(), "completed");
        assert!(cell.report.jain > 0.9, "jain {}", cell.report.jain);
        assert_eq!(cell.accepted_corrupt(), 0);
        assert_eq!(cell.dup_delivered(), 0);
        assert_eq!(cell.report.net.recovery.counts.errors, 0);
    }

    #[test]
    fn lossy_cell_holds_the_integrity_invariants() {
        let cell = tiny_cell(ChannelProtection::Off, 0.05);
        // Unprotected at 5 %: corruption must actually reach the
        // end-to-end check for the invariants to mean anything.
        assert!(cell.report.net.recovery.counts.undetected > 0);
        let caught: u64 =
            cell.report.flows.iter().map(|f| f.counts.corrupt_payloads).sum();
        assert!(caught > 0, "the e2e check never fired");
        assert_eq!(cell.accepted_corrupt(), 0, "corruption was accepted");
        assert_eq!(cell.dup_delivered(), 0, "duplicate delivery");
        assert!(!cell.unnamed_livelock());
    }

    #[test]
    fn cells_are_deterministic() {
        let a = tiny_cell(ChannelProtection::Crc8, 0.05);
        let b = tiny_cell(ChannelProtection::Crc8, 0.05);
        assert_eq!(a, b);
        assert_eq!(cell_json(&a), cell_json(&b));
    }

    #[test]
    fn link_killer_cell_is_named_not_hung() {
        let cell = run_cell(CellSpec {
            layout: "corners",
            process: "bursty",
            protection: ChannelProtection::Crc8,
            rate: 0.10,
            seed: SEEDS[0],
            kill_links: true,
        });
        if cell.outcome() == "livelocked" {
            assert!(!cell.unnamed_livelock(), "livelock must name its victims");
            let last = cell.report.stalls.last().unwrap();
            assert!(!last.starved.is_empty());
        }
        assert_eq!(cell.accepted_corrupt(), 0);
        assert_eq!(cell.dup_delivered(), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let cell = tiny_cell(ChannelProtection::Crc8, 0.0);
        let r = FlowsReport { cells: vec![cell] };
        let j = to_json(&r);
        assert!(j.contains("\"experiment\": \"flows\""), "{j}");
        assert!(j.contains("\"invariants\": {\"accepted_corrupt\": 0"), "{j}");
        assert!(j.contains("\"outcome\": \"completed\""), "{j}");
        assert!(j.contains("\"curve_rate_goodput_jain_completed\""), "{j}");
    }
}
