//! Regenerates the paper's headline claims (abstract / conclusions).

use sal_bench::experiments;

fn main() {
    let h = experiments::headline();
    println!("Headline claims (paper: 75% wires, 65% power, ~20% area overhead)\n");
    println!("wire reduction (serialized 32 -> 8):       {:.0}%", h.wire_reduction * 100.0);
    println!("power reduction I3 vs I1 @300MHz, 8 buf:   {:.0}%", h.power_reduction * 100.0);
    println!("cell-area overhead I2 vs I1:               {:.0}%", h.area_overhead * 100.0);
}
