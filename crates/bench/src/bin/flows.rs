//! Network chaos campaign for end-to-end flows: seeded error storms
//! (i.i.d. and bursty Gilbert–Elliott) against windowed AIMD senders
//! on the 4×4 mesh, plus link-killer cells exercising the progress
//! watchdog. Prints the goodput-collapse / fairness curves and the
//! integrity invariants, and writes the machine-readable
//! `BENCH_flows.json` (bytewise deterministic — CI diffs it against a
//! committed fixture).

use sal_bench::flows::{campaign, curve, to_json, LAYOUTS, PROCESSES, PROTECTIONS, SEEDS};

fn main() {
    let report = campaign();

    println!("== flow chaos campaign: {} seeds per cell ==", SEEDS.len());
    for layout in LAYOUTS {
        for process in PROCESSES {
            for protection in PROTECTIONS {
                println!("\n-- {layout} / {process} / {} --", protection.label());
                println!(
                    "{:>6} {:>12} {:>8} {:>10}",
                    "rate", "goodput", "jain", "completed"
                );
                for row in curve(&report.cells, layout, process, protection) {
                    println!(
                        "{:>6.3} {:>12.6} {:>8.4} {:>9.0}%",
                        row.rate,
                        row.goodput,
                        row.jain,
                        row.completed_frac * 100.0
                    );
                }
            }
        }
    }

    println!("\n== link-killer cells (watchdog under test) ==");
    for cell in report.cells.iter().filter(|c| c.spec.kill_links) {
        let named = cell
            .report
            .stalls
            .last()
            .map_or(0, |s| s.starved.len());
        println!(
            "{:<8} seed {:>3}: {:<22} cycles {:>8}  failed_links {:>2}  starved_named {}",
            cell.spec.layout,
            cell.spec.seed,
            cell.outcome(),
            cell.report.cycles,
            cell.report.net.recovery.failed_links,
            named
        );
    }

    let accepted: u64 = report.cells.iter().map(|c| c.accepted_corrupt()).sum();
    let dups: u64 = report.cells.iter().map(|c| c.dup_delivered()).sum();
    let unnamed = report.cells.iter().filter(|c| c.unnamed_livelock()).count();
    println!(
        "\ninvariants: accepted_corrupt={accepted} dup_delivered={dups} unnamed_livelocks={unnamed}"
    );
    assert_eq!(accepted, 0, "a receiver accepted corrupted payload");
    assert_eq!(dups, 0, "a payload was delivered twice");
    assert_eq!(unnamed, 0, "a livelock went unnamed");

    let json = to_json(&report);
    std::fs::write("BENCH_flows.json", &json).expect("write BENCH_flows.json");
    println!("wrote BENCH_flows.json ({} bytes)", json.len());
}
