//! Fault-tolerant-routing chaos campaign: scheduled and storm-driven
//! permanent link failures against static XY and adaptive rerouting
//! on the 4×4 mesh. Prints the goodput-vs-failed-links curves and the
//! per-cell reconfiguration story, asserts the acceptance surface
//! (adaptive completes what XY livelocks on, exactly-once throughout),
//! and writes the machine-readable `BENCH_reroute.json` (bytewise
//! deterministic — CI diffs the `--quick` subset against a committed
//! fixture).
//!
//! Flags:
//!   --quick       run the reduced CI subset instead of the full grid
//!   --out PATH    artifact location (default BENCH_reroute.json)

use sal_bench::reroute::{campaign, curve, full_grid, quick_grid, to_json, violations, MODES};
use std::path::PathBuf;

fn main() {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_reroute.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }

    let grid = if quick { quick_grid() } else { full_grid() };
    eprintln!(
        "== reroute campaign: {} grid, {} cells ==",
        if quick { "quick" } else { "full" },
        grid.len()
    );
    let report = campaign(grid);

    println!("== per-cell reconfiguration story ==");
    println!(
        "{:<7} {:<8} {:<9} {:>4} {:<22} {:>8} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8}",
        "scen", "layout", "mode", "seed", "outcome", "cycles", "failed", "epochs", "retrain",
        "stranded", "salvaged", "goodput"
    );
    for c in &report.cells {
        println!(
            "{:<7} {:<8} {:<9} {:>4} {:<22} {:>8} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8.5}",
            c.spec.scenario,
            c.spec.layout,
            c.spec.mode,
            c.spec.seed,
            c.outcome(),
            c.report.cycles,
            c.report.net.recovery.failed_links,
            c.report.net.reconfig_epochs,
            c.report.net.retrained_links,
            c.report.net.stranded_packets,
            c.report.net.salvaged_packets,
            c.agg_goodput(),
        );
    }

    println!("\n== goodput vs failed links ==");
    for mode in MODES {
        println!("-- {mode} --");
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>6}",
            "failed", "goodput", "delivered", "completed", "cells"
        );
        for row in curve(&report.cells, mode) {
            println!(
                "{:>6} {:>10.6} {:>9.0}% {:>9.0}% {:>6}",
                row.failed_links,
                row.goodput,
                row.delivered_frac * 100.0,
                row.completed_frac * 100.0,
                row.cells
            );
        }
    }

    let bad = violations(&report.cells);
    for v in &bad {
        eprintln!("VIOLATION: {v}");
    }
    assert!(bad.is_empty(), "{} acceptance violations", bad.len());
    println!("\ninvariants: all {} cells within the acceptance surface", report.cells.len());

    let json = to_json(&report, quick);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {} ({} bytes)", out.display(), json.len());
}
