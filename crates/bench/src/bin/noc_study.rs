//! Mesh-level study (extension): 4x4 NoC with each link model.

use sal_bench::{experiments, table};

fn main() {
    println!("NoC study — 4x4 mesh, uniform random, 4-flit packets\n");
    let rows: Vec<Vec<String>> = experiments::noc_study()
        .iter()
        .map(|r| {
            vec![
                r.family.label().to_string(),
                format!("{:.0}", r.clk_mhz),
                format!("{:.2}", r.offered),
                format!("{:.3}", r.accepted),
                format!("{:.1}", r.avg_latency),
                r.total_wires.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &["link", "clk(MHz)", "offered", "accepted(f/n/c)", "latency(cyc)", "mesh wires"],
            &rows
        )
    );
}
