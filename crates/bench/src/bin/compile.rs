//! Compiled-engine equivalence + sliced-campaign report. Prints the
//! engine-agreement table and writes the machine-readable
//! `BENCH_compile.json` (bytewise deterministic — CI diffs it against
//! a committed fixture).

use sal_bench::compile_report::{report, to_json};

fn main() {
    let r = report();

    println!("== compiled vs interpreted (integer behavioral counters) ==");
    println!(
        "{:<26} {:>9} {:>12} {:>12} {:>7} {:>10} {:>10}",
        "workload", "identical", "commits", "checksum", "cones", "cone_evals", "ev_avoided"
    );
    for w in &r.workloads {
        println!(
            "{:<26} {:>9} {:>12} {:>12x} {:>7} {:>10} {:>10}",
            w.name,
            w.identical(),
            w.compiled.commits,
            w.compiled.checksum,
            w.compiled.cones_built,
            w.compiled.cone_evals,
            w.compiled.events_avoided
        );
    }

    println!("\n== sliced campaigns (64 lanes) ==");
    println!(
        "{:<6} {:>8} {:>18} {:>9} {:>11}",
        "seed", "lanes", "diverged", "distinct", "mismatched"
    );
    for s in &r.sliced {
        println!(
            "{:<6} {:>8} {:>#18x} {:>9} {:>11}",
            s.seed, s.lanes, s.diverged, s.distinct_from_control, s.mismatched
        );
    }

    let json = to_json(&r);
    std::fs::write("BENCH_compile.json", &json).expect("write BENCH_compile.json");
    println!("\nwrote BENCH_compile.json ({} bytes)", json.len());
}
