//! Regenerates the paper's Fig 11: wiring area vs. wire length.

use sal_bench::{experiments, table};

fn main() {
    println!("Fig 11 — Wire Area (METAL6: MetW=0.44um, MetG=0.46um)\n");
    let rows: Vec<Vec<String>> = experiments::fig11()
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.length_um),
                format!("{:.0}", r.sync_area_um2),
                format!("{:.0}", r.async_area_um2),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["length(um)", "I1-Synch(um2)", "I2&I3-Asynch(um2)"], &rows)
    );
}
