//! Regenerates the paper's Table 2: breakdown of implementation I2.

use sal_bench::{experiments, table};

fn main() {
    println!("Table 2 — Breakdown of Implementation I2\n");
    let rows = experiments::table2();
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.module.to_string(), format!("{:.0}", r.area_um2), r.qty.to_string()]
        })
        .collect();
    let total: f64 = rows.iter().map(|r| r.area_um2 * r.qty as f64).sum();
    out.push(vec!["Total".into(), format!("{total:.0}"), String::new()]);
    print!("{}", table::render(&["Module", "Area (um2)", "Qty."], &out));
}
