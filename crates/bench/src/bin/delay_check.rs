//! Validates the paper's per-word delay equation against the
//! gate-level simulation (paper §V).

use sal_bench::experiments;

fn main() {
    let d = experiments::delay_check();
    println!("Per-word delay equation validation (paper SectionV)\n");
    println!("paper's example terms      -> {:>6.1} MFlit/s (paper quotes ~311)", d.paper_analytic_mflits);
    println!("our gate-level terms       -> {:>6.1} MFlit/s", d.our_analytic_mflits);
    println!("simulated I3 at saturation -> {:>6.1} MFlit/s", d.simulated_mflits);
    println!();
    println!("per-transfer (I2) equation  -> {:>6.1} MFlit/s", d.i2_analytic_mflits);
    println!("simulated I2 at saturation  -> {:>6.1} MFlit/s", d.i2_simulated_mflits);
}
