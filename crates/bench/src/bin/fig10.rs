//! Regenerates the paper's Fig 10: bandwidth vs. number of wires.

use sal_bench::{experiments, table};

fn main() {
    let f = experiments::fig10();
    println!("Fig 10 — Bandwidth vs. Wires (paper: Fig 10)");
    println!(
        "async self-timed upper bound: {:.0} MFlit/s (paper: ~311)\n",
        f.upper_bound_mflits
    );
    let rows: Vec<Vec<String>> = f
        .series
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.bandwidth_mflits),
                p.sync_100.to_string(),
                p.sync_200.to_string(),
                p.sync_300.to_string(),
                p.async_proposed.map_or("-".into(), |w| w.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &["MFlit/s", "I1@100MHz", "I1@200MHz", "I1@300MHz", "I3-async"],
            &rows
        )
    );
    println!("\nGate-level validation (measured I3 delivery rate):");
    for (mhz, meas) in &f.measured_i3_mflits {
        println!("  switch clock {mhz:>5.0} MHz -> {meas:>6.1} MFlit/s");
    }
}
