//! Timing-margin and fault-injection sweep (robustness extension):
//! derates the async core's gate delays, skews the bundled data wires
//! and applies seeded Gaussian delay variation until each link first
//! fails, then demonstrates the handshake deadlock watchdog on a
//! stuck acknowledge. Writes `BENCH_robustness.json`.

use sal_bench::robustness::{self, Outcome, Probe};
use sal_bench::table;
use sal_link::LinkFamily;

const FAMILIES: [LinkFamily; 3] = LinkFamily::ALL;

fn axis_table(title: &str, unit: &str, values: &[f64], probes: &[Probe]) {
    println!("{title}\n");
    let mut rows = Vec::new();
    for &v in values {
        let cell = |k: LinkFamily| {
            let hits: Vec<&Probe> =
                probes.iter().filter(|p| p.family == k && p.value == v).collect();
            if hits.is_empty() {
                return String::new();
            }
            let fails = hits.iter().filter(|p| p.outcome.is_failure()).count();
            if fails == 0 {
                "pass".to_string()
            } else if hits.len() > 1 {
                format!("fail {fails}/{}", hits.len())
            } else {
                match &hits[0].outcome {
                    Outcome::Corrupt { violations } => format!("corrupt({violations})"),
                    Outcome::Deadlock { .. } => "deadlock".to_string(),
                    Outcome::Error { .. } => "error".to_string(),
                    Outcome::Pass => unreachable!("counted as failure"),
                }
            }
        };
        rows.push(vec![
            format!("{v}"),
            cell(LinkFamily::Sync),
            cell(LinkFamily::PerTransfer),
            cell(LinkFamily::PerWord),
        ]);
    }
    print!("{}", table::render(&[unit, "I1-Synch", "I2-Asynch", "I3-Asynch"], &rows));
    let firsts: Vec<String> = FAMILIES
        .iter()
        .map(|&k| {
            let f = robustness::first_failure(probes, k).map_or_else(|| "never (survived sweep)".to_string(), |v| format!("{v}"));
            format!("  {}: first failure at {f}", k.label())
        })
        .collect();
    println!("{}\n", firsts.join("\n"));
}

fn main() {
    println!("Margins — timing-margin & fault-injection sweep (8 worst-case flits @ 100 MHz)\n");
    let report = robustness::margins();

    axis_table(
        "Delay derating of the link core (switch clock fixed)",
        "xdelay",
        &robustness::SCALE_AXIS,
        &report.scale,
    );
    axis_table(
        "Extra skew on data wires vs req/VALID (per segment)",
        "skew_ps",
        &robustness::SKEW_AXIS_PS.map(|v| v as f64),
        &report.skew,
    );
    axis_table(
        "Gaussian delay variation, 3 seeds per point",
        "sigma",
        &robustness::SIGMA_AXIS,
        &report.sigma,
    );

    println!("Deadlock watchdog demo — {} stuck at 0:", report.deadlock_demo.forced);
    match &report.deadlock_demo.stalled {
        Some(s) => println!("  first stalled handshake: {s}"),
        None => println!("  (no diagnosis!)"),
    }
    for line in report.deadlock_demo.report.lines() {
        println!("  | {line}");
    }

    let json = robustness::to_json(&report);
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    println!("\nwrote BENCH_robustness.json ({} bytes)", json.len());
}
