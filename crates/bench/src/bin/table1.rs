//! Regenerates the paper's Table 1: link area overhead.

use sal_bench::{experiments, table};

fn main() {
    println!("Table 1 — Area overhead of the synchronous and proposed links\n");
    let rows: Vec<Vec<String>> = experiments::table1()
        .iter()
        .map(|r| {
            let name = match r.family {
                sal_link::LinkFamily::Sync => "Synchronous (I1)",
                sal_link::LinkFamily::PerTransfer => "Asynchronous per-transfer ack. (I2)",
                sal_link::LinkFamily::PerWord => "Asynchronous per-word ack. (I3)",
            };
            vec![name.to_string(), format!("{:.0}", r.area_um2)]
        })
        .collect();
    print!("{}", table::render(&["Implementation", "Area (um2)"], &rows));
}
