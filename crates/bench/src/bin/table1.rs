//! Regenerates the paper's Table 1: link area overhead.

use sal_bench::{experiments, table};

fn main() {
    println!("Table 1 — Area overhead of the synchronous and proposed links\n");
    let rows: Vec<Vec<String>> = experiments::table1()
        .iter()
        .map(|r| {
            let name = match r.kind {
                sal_link::LinkKind::I1Sync => "Synchronous (I1)",
                sal_link::LinkKind::I2PerTransfer => "Asynchronous per-transfer ack. (I2)",
                sal_link::LinkKind::I3PerWord => "Asynchronous per-word ack. (I3)",
            };
            vec![name.to_string(), format!("{:.0}", r.area_um2)]
        })
        .collect();
    print!("{}", table::render(&["Implementation", "Area (um2)"], &rows));
}
