//! Regenerates the paper's Fig 13: power vs. buffers at 300 MHz.

use sal_bench::{experiments, table};

fn main() {
    println!("Fig 13 — Buffers vs. Power @ 300 MHz (windows carried over from 100 MHz, per the paper)\n");
    let rows = experiments::fig13();
    let mut out = Vec::new();
    for buffers in experiments::BUFFER_SWEEP {
        let p = |k: sal_link::LinkFamily| {
            rows.iter()
                .find(|r| r.family == k && r.buffers == buffers)
                .map(|r| format!("{:.0}", r.power_uw))
                .unwrap_or_default()
        };
        out.push(vec![
            buffers.to_string(),
            p(sal_link::LinkFamily::Sync),
            p(sal_link::LinkFamily::PerTransfer),
            p(sal_link::LinkFamily::PerWord),
        ]);
    }
    print!(
        "{}",
        table::render(&["buffers", "I1-Synch(uW)", "I2-Asynch(uW)", "I3-Asynch(uW)"], &out)
    );
}
