//! `sal-lint` — the repo's netlist gatekeeper: builds every link
//! implementation (I1/I2/I3) across the configuration corners the
//! sweeps exercise, runs the full static-analysis suite (connectivity,
//! loop classification, bundled-data timing, handshake protocol) on
//! each, prints a per-corner summary with the static timing margins,
//! and writes the machine-readable `BENCH_lint.json` (bytewise
//! deterministic — CI diffs it against a committed fixture).
//!
//! Exits non-zero if any corner produces an error-severity finding:
//! a clean tree must lint clean.

use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec, WordRxStyle};
use sal_lint::{run_all, timing_margins, LintReport, Severity, TimingMargin};
use sal_tech::St012Library;

/// The corners the robustness/power sweeps visit (keep in sync with
/// `crates/link/tests/lint_links.rs`).
fn corners() -> Vec<(&'static str, LinkConfig)> {
    let base = LinkConfig::default();
    vec![
        ("default", base.clone()),
        ("buffers=2", LinkConfig { buffers: 2, ..base.clone() }),
        ("buffers=8", LinkConfig { buffers: 8, ..base.clone() }),
        ("slice=16", LinkConfig { slice_width: 16, ..base.clone() }),
        ("slice=4", LinkConfig { slice_width: 4, ..base.clone() }),
        ("clk=300MHz", LinkConfig { clk_period: Time::from_ns_f64(10.0 / 3.0), ..base.clone() }),
        ("rx=demux", LinkConfig { word_rx_style: WordRxStyle::Demux, ..base.clone() }),
        ("early_ack", LinkConfig { early_word_ack: true, ..base }),
    ]
}

fn lint_corner(family: LinkFamily, cfg: &LinkConfig) -> (LintReport, Vec<TimingMargin>) {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let spec = LinkSpec::from_config(family, cfg)
        .unwrap_or_else(|e| panic!("{} corner is not a valid spec: {e}", family.label()));
    generate(&mut b, &spec, "link", cfg)
        .unwrap_or_else(|e| panic!("{} failed to build: {e}", family.label()));
    b.finish();
    let graph = sim.netgraph();
    (run_all(&graph), timing_margins(&graph))
}

fn margin_json(m: &TimingMargin) -> String {
    format!(
        "{{\"bundle\": \"{}\", \"capture\": \"{}\", \"trigger\": \"{}\", \
         \"data_ps\": {:.1}, \"strobe_ps\": {:.1}, \"lead_ps\": {:.1}, \"margin_ps\": {:.1}}}",
        m.bundle, m.capture_data, m.capture_trigger,
        m.data_max_ps, m.strobe_min_ps, m.data_lead_ps, m.margin_ps
    )
}

fn main() {
    println!("sal-lint — static netlist analysis over every link and corner\n");
    let mut entries: Vec<String> = Vec::new();
    let mut total_errors = 0usize;
    for family in [LinkFamily::Sync, LinkFamily::PerTransfer, LinkFamily::PerWord] {
        for (label, cfg) in corners() {
            let (report, margins) = lint_corner(family, &cfg);
            let errors = report.count(Severity::Error);
            let warnings = report.count(Severity::Warning);
            let infos = report.count(Severity::Info);
            total_errors += errors;
            let worst = margins
                .iter()
                .map(|m| m.margin_ps)
                .fold(f64::INFINITY, f64::min);
            println!(
                "{:<3} {:<12} errors {:>2}, warnings {:>2}, infos {:>3}, captures {:>3}{}",
                family.label(),
                label,
                errors,
                warnings,
                infos,
                margins.len(),
                if margins.is_empty() {
                    String::from("  (statically unconstrained)")
                } else {
                    format!(", worst margin {worst:+.1} ps")
                }
            );
            for f in report.errors() {
                println!("    ERROR [{}] {}: {}", f.pass, f.path, f.message);
            }
            if label == "default" {
                for f in report.findings.iter().filter(|f| f.severity == Severity::Warning) {
                    println!("    warn  [{}] {}: {}", f.pass, f.path, f.message);
                }
            }
            let margin_list: Vec<String> =
                margins.iter().map(|m| format!("      {}", margin_json(m))).collect();
            entries.push(format!(
                "    {{\"kind\": \"{}\", \"corner\": \"{}\", \"errors\": {}, \
                 \"warnings\": {}, \"infos\": {}, \"margins\": [{}{}]}}",
                family.label(),
                label,
                errors,
                warnings,
                infos,
                if margin_list.is_empty() { String::new() } else { format!("\n{}", margin_list.join(",\n")) },
                if margin_list.is_empty() { "" } else { "\n    " },
            ));
        }
    }

    let json = format!("{{\n  \"corners\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
    println!("\nwrote BENCH_lint.json ({} bytes)", json.len());

    assert_eq!(total_errors, 0, "lint errors found — the netlist is structurally broken");
    println!("all corners lint clean");
}
