//! Observability demo: one traced, fully metered run of each
//! serialized asynchronous link (I2 per-transfer, I3 per-word) at the
//! paper's operating point. Prints the derived handshake-latency,
//! block-energy, occupancy and burst-timing reports, reconciles the
//! trace-derived energy attribution against the power meter, and
//! writes the machine-readable `BENCH_observability.json` (bytewise
//! deterministic — CI diffs it against a committed fixture).

use sal_link::measure::{run_spec, MeasureOptions, TraceMode};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkMetrics, LinkSpec};

fn print_report(m: &LinkMetrics, family: LinkFamily) {
    println!("== {} ==", family.label());
    println!(
        "  occupancy: in-use {:.1} ns over a {:.1} ns window, busy fraction {:.3}",
        m.occupancy.in_use.as_ns(),
        m.occupancy.window.as_ns(),
        m.occupancy.busy_fraction,
    );
    println!(
        "  in-flight words: peak {}, time-weighted mean {:.3}",
        m.in_flight.max, m.in_flight.mean
    );
    if let Some(b) = &m.burst {
        println!(
            "  burst: {} slice strobes on {}, gap {:.3}/{:.3}/{:.3} ns (min/mean/max)",
            b.slices,
            b.strobe_path,
            b.gap.min_ns(),
            b.gap.mean_ns(),
            b.gap.max_ns(),
        );
    }
    let bl = &m.blocks;
    println!(
        "  power: conv {:.1} serdes {:.1} buffers {:.1} other {:.1} = {:.1} µW",
        bl.conv_uw, bl.serdes_uw, bl.buffers_uw, bl.other_uw, bl.total_uw
    );
    println!("  handshakes ({}):", m.handshakes.len());
    for h in &m.handshakes {
        println!(
            "    {:<22} {:>5} completed, latency {:.3}/{:.3}/{:.3} ns, cycle {:.3} ns{}",
            h.label,
            h.completed,
            h.latency.min_ns(),
            h.latency.mean_ns(),
            h.latency.max_ns(),
            h.cycle.mean_ns(),
            if h.open { "  [OPEN]" } else { "" },
        );
    }
}

fn main() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let opts = MeasureOptions::default().with_trace(TraceMode::Full).with_metrics();

    println!("Observability — traced worst-case 4-flit transfers @ 100 MHz\n");
    let mut sections: Vec<String> = Vec::new();
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let r = run_spec(&LinkSpec::paper(family), &cfg, &words, &opts)
            .unwrap_or_else(|e| panic!("{} run failed: {e}", family.label()));
        let m = r.metrics().expect("metrics requested");
        print_report(m, family);

        // Reconcile the trace-derived attribution against the power
        // meter: both count the same toggles, so they must agree to
        // numerical noise.
        let bp = r.block_power();
        let worst = [
            (m.blocks.conv_uw, bp.conv_uw),
            (m.blocks.serdes_uw, bp.serdes_uw),
            (m.blocks.buffers_uw, bp.buffers_uw),
            (m.blocks.total_uw, bp.total_uw),
        ]
        .iter()
        .map(|(a, b)| (a - b).abs() / b.abs().max(1e-9))
        .fold(0.0f64, f64::max);
        println!("  meter reconciliation: worst relative error {:.2e}", worst);
        assert!(worst < 1e-3, "trace attribution drifted from the power meter");

        let p = &r.profile;
        println!(
            "  kernel: {} events, {} commits, {} deltas, queue peak {} mean {:.1}\n",
            p.events, p.commits, p.deltas, p.queue_peak, p.queue_mean
        );
        sections.push(format!(
            "\"{}\": {}",
            family.label(),
            m.to_json().trim_end()
        ));
    }

    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    std::fs::write("BENCH_observability.json", &json).expect("write BENCH_observability.json");
    println!("wrote BENCH_observability.json ({} bytes)", json.len());
}
