//! Load/latency curves for the mesh with each link model (extension):
//! the standard NoC evaluation fed by the paper's link parameters.

use sal_bench::{experiments, table};

fn main() {
    println!("NoC load/latency curves — 4x4 mesh, uniform random, 600 MHz switch clock\n");
    let rows: Vec<Vec<String>> = experiments::noc_curves()
        .iter()
        .map(|p| {
            vec![
                p.family.label().to_string(),
                format!("{:.2}", p.offered),
                format!("{:.3}", p.accepted),
                format!("{:.1}", p.avg_latency),
                p.p95_latency.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &["link", "offered", "accepted(f/n/c)", "avg lat(cyc)", "p95"],
            &rows
        )
    );
    println!(
        "\nBeyond the per-word link's self-timed upper bound the serialized\n\
         mesh saturates first; below it, all three meshes behave alike while\n\
         the serialized ones use 10 instead of 33 wires per channel."
    );
}
