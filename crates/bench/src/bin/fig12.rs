//! Regenerates the paper's Fig 12: power vs. buffers at 100 MHz.

use sal_bench::{experiments, table};

fn main() {
    println!("Fig 12 — Number of Buffers vs. Power @ 100 MHz (50% usage)\n");
    print_power(&experiments::fig12());
}

pub(crate) fn print_power(rows: &[experiments::PowerRow]) {
    let mut out = Vec::new();
    for buffers in experiments::BUFFER_SWEEP {
        let p = |k: sal_link::LinkFamily| {
            rows.iter()
                .find(|r| r.family == k && r.buffers == buffers)
                .map(|r| format!("{:.0}", r.power_uw))
                .unwrap_or_default()
        };
        out.push(vec![
            buffers.to_string(),
            p(sal_link::LinkFamily::Sync),
            p(sal_link::LinkFamily::PerTransfer),
            p(sal_link::LinkFamily::PerWord),
        ]);
    }
    print!(
        "{}",
        table::render(&["buffers", "I1-Synch(uW)", "I2-Asynch(uW)", "I3-Asynch(uW)"], &out)
    );
}
