use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time, Value};
use sal_link::testbench::*;
use sal_link::{build_i3, LinkConfig};
use sal_tech::{Corner, St012Library};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let cfg = LinkConfig { clk_period: Time::from_ps(1000), ..LinkConfig::default() };
    let mut sim = Simulator::new();
    let lib = St012Library::at_corner(Corner::Slow);
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let h = build_i3(&mut b, "link", &cfg).expect("link builds");
    b.finish();
    sim.stimulus(h.rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(300), Value::one(1))]);
    let words: Vec<u64> = (0..8).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect();
    let (src, sent) = SyncFlitSource::new(h.clk, h.stall_out, h.flit_in, h.valid_in, 32, words.clone());
    let src = src.with_rstn(h.rstn);
    attach_sync_source(&mut sim, "src", src, Time::ZERO);
    let (snk, rx) = SyncFlitSink::new(h.clk, h.valid_out, h.flit_out, h.stall_in);
    attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
    let count = |sim: &mut Simulator, path: &str| -> Rc<RefCell<u64>> {
        let c = Rc::new(RefCell::new(0u64));
        let c2 = c.clone();
        let sig = sim.signal_by_path(path).unwrap();
        sim.monitor(path, sig, move |_, v| { if v.is_high() { *c2.borrow_mut() += 1; } });
        c
    };
    let tx_req = count(&mut sim, "link.tx_if.req_dly_4");
    let valid = count(&mut sim, "link.ser.valid");
    let wdes_req = count(&mut sim, "link.des.reqout");
    let rx_ack = count(&mut sim, "link.rx_if.ack_dly_1");
    let ab = count(&mut sim, "link.ack_back_heard");
    for p in ["link.ser.burst", "link.ser.start", "link.ser.done", "link.ser.ndone", "link.tx_if.req_dly_4", "link.tx_if.req_core", "link.tx_if.nack", "link.ack_word_tx", "link.ser.ackout", "link.ack_back_heard"] {
        if let Some(sig) = sim.signal_by_path(p) {
            let name = p.to_string();
            sim.monitor(&name.clone(), sig, move |t, v| {
                if t < Time::from_ns(12) { println!("{:8.2} {} -> {}", t.as_ns(), name, v); }
            });
        } else { println!("{p} missing"); }
    }
    sim.run_until(Time::from_ns(200)).unwrap();
    println!("sent={} rx={} tx_req={} valid={} wdes_req={} rx_ack={} ack_back={}",
        sent.borrow().len(), rx.borrow().len(), tx_req.borrow(), valid.borrow(), wdes_req.borrow(), rx_ack.borrow(), ab.borrow());
    for p in ["link.ser.done", "link.ser.burst", "link.tx_if.stall_pre", "link.des.p_3", "link.rx_if.cell0.flag"] {
        println!("{p} = {}", sim.value(sim.signal_by_path(p).unwrap()));
    }
}
