//! Design-space Pareto campaign over the declarative `LinkSpec`
//! lattice. Sweeps family × width × ratio × depth × protection,
//! measures every valid cell at gate level (memoized through a
//! content-addressed JSONL store), extracts per-family Pareto fronts
//! over (energy-per-word, latency, cells), and writes the bytewise
//! deterministic `BENCH_pareto.json`.
//!
//! Flags:
//!   --quick         sweep the reduced CI subset instead of the full grid
//!   --cache PATH    store location (default target/pareto-cache.jsonl)
//!   --out PATH      artifact location (default BENCH_pareto.json)
//!   --expect-warm   fail unless every cell was a store hit

use sal_bench::pareto::{campaign, full_grid, pareto_front, quick_grid, to_json};
use sal_link::LinkFamily;
use std::path::PathBuf;

fn main() {
    let mut quick = false;
    let mut expect_warm = false;
    let mut cache = PathBuf::from("target/pareto-cache.jsonl");
    let mut out = PathBuf::from("BENCH_pareto.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--expect-warm" => expect_warm = true,
            "--cache" => cache = PathBuf::from(args.next().expect("--cache needs a path")),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }

    let grid = if quick { quick_grid() } else { full_grid() };
    eprintln!(
        "== pareto campaign: {} grid, {} cells, store {} ==",
        if quick { "quick" } else { "full" },
        grid.len(),
        cache.display()
    );
    let report = campaign(&grid, &cache);
    eprintln!("store: {} hits, {} misses", report.stats.hits, report.stats.misses);
    if expect_warm && report.stats.misses != 0 {
        eprintln!(
            "--expect-warm: {} cells missed the store; the cache is not warm",
            report.stats.misses
        );
        std::process::exit(1);
    }

    println!(
        "{:<4} {:>5} {:>5} {:>5} {:>7} {:>6} {:>12} {:>10} {:>7}",
        "link", "width", "ratio", "depth", "protect", "wires", "energy/word", "latency", "cells"
    );
    for cell in &report.cells {
        let s = &cell.spec;
        println!(
            "{:<4} {:>5} {:>5} {:>5} {:>7} {:>6} {:>9.3} pJ {:>7.3} ns {:>7}",
            s.family().label(),
            s.word_width(),
            s.serial_ratio(),
            s.buffer_depth(),
            s.protection().label(),
            s.wires(),
            cell.energy_per_word_pj,
            cell.latency_ns,
            cell.cells
        );
    }
    println!("\n== pareto fronts (energy-per-word, latency, cells) ==");
    for family in LinkFamily::ALL {
        let front = pareto_front(&report.cells, family);
        println!("{}: {} of {} cells on the front", family.label(), front.len(), {
            report.cells.iter().filter(|c| c.spec.family() == family).count()
        });
    }

    let json = to_json(&report, quick);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("\nwrote {} ({} bytes)", out.display(), json.len());
}
