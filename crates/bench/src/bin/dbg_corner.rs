use sal_des::Time;
use sal_link::measure::{run_flits, MeasureOptions};
use sal_link::{LinkConfig, LinkKind};
use sal_tech::{Corner, St012Library};

fn main() {
    for corner in [Corner::Fast, Corner::Typical, Corner::Slow] {
        let lib = St012Library::at_corner(corner);
        let opts = MeasureOptions { lib: lib.clone(), timeout: Time::from_us(3), ..MeasureOptions::default() };
        let cfg = LinkConfig { clk_period: Time::from_ps(1000), ..LinkConfig::default() };
        let words: Vec<u64> = (0..8).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect();
        let r = std::panic::catch_unwind(|| {
            run_flits(LinkKind::I3PerWord, &cfg, &words, &opts).throughput_mflits()
        });
        println!("{corner:?}: {:?}", r.ok());
    }
}
