//! Regenerates the paper's Fig 14: average power breakdown at 50% usage.

use sal_bench::{experiments, table};

fn main() {
    println!("Fig 14 — Average Power for 50% usage (100 MHz, 4 buffers)\n");
    let rows: Vec<Vec<String>> = experiments::fig14()
        .iter()
        .map(|r| {
            vec![
                r.family.label().to_string(),
                format!("{:.0}", r.blocks.serdes_uw),
                format!("{:.0}", r.blocks.buffers_uw),
                format!("{:.0}", r.blocks.conv_uw),
                format!("{:.0}", r.blocks.other_uw),
                format!("{:.0}", r.blocks.total_uw),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &["link", "Ser/Des(uW)", "Buffers(uW)", "Conv(uW)", "Other(uW)", "Total(uW)"],
            &rows
        )
    );
}
