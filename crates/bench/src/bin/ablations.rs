//! Ablation studies: the design-choice experiments DESIGN.md §6 lists.

use sal_bench::{ablations, table};

fn main() {
    println!("Ablation 1 — early word acknowledgement (paper future work)\n");
    let rows: Vec<Vec<String>> = ablations::early_ack()
        .iter()
        .map(|r| {
            vec![
                r.buffers.to_string(),
                format!("{:.0}", r.baseline_mflits),
                format!("{:.0}", r.early_mflits),
                format!("{:+.0}%", (r.early_mflits / r.baseline_mflits - 1.0) * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["buffers", "I3 (MFlit/s)", "I3 early-ack", "gain"], &rows)
    );

    println!("\nAblation 2 — slice width (wires vs throughput vs power)\n");
    let rows: Vec<Vec<String>> = ablations::slice_width()
        .iter()
        .map(|r| {
            vec![
                format!("32->{}", r.slice_width),
                r.wires.to_string(),
                format!("{:.0}", r.saturation_mflits),
                format!("{:.0}", r.power_uw),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["serialization", "wires", "saturation (MFlit/s)", "power(uW)"], &rows)
    );

    println!("\nAblation 3 — receiver style (paper Fig 14 discussion)\n");
    let rows: Vec<Vec<String>> = ablations::rx_style()
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.style),
                format!("{:.1}", r.des_power_uw),
                format!("{:.0}", r.total_power_uw),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["style", "deserializer power(uW)", "link power(uW)"], &rows)
    );

    println!("\nAblation 4 — technology corners\n");
    let rows: Vec<Vec<String>> = ablations::corners()
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.corner),
                format!("{:.0}", r.i3_saturation_mflits),
                format!("{:.0}", r.i1_mflits),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["corner", "I3 self-timed (MFlit/s)", "I1 @300MHz clock"], &rows)
    );
    println!(
        "\nThe self-timed link tracks the silicon corner; the synchronous link\n\
         is pinned to its clock at every corner (and at the slow corner its\n\
         clock margin would have to be re-validated)."
    );
}
