//! Chaos-soak recovery campaign: seeded glitch storms against
//! {I2, I3} × {off, parity, crc}, classified by the data-integrity
//! scoreboard and the recovery counters. Prints the campaign table
//! and the protection energy tax, and writes the machine-readable
//! `BENCH_recovery.json` (bytewise deterministic — CI diffs it
//! against a committed fixture).

use sal_bench::recovery::{campaign, tally, to_json, FAMILIES, MODES, STORM_SEEDS};

fn main() {
    let report = campaign();

    println!("== recovery campaign: {} storm seeds per cell ==", STORM_SEEDS.len());
    println!("{:<6} {:<8} {:>9} {:>9} {:>10} {:>9} {:>6}", "link", "protect", "recovered", "untouched", "undetected", "deadlock", "error");
    for family in FAMILIES {
        for protection in MODES {
            println!(
                "{:<6} {:<8} {:>9} {:>9} {:>10} {:>9} {:>6}",
                family.label(),
                protection.label(),
                tally(&report.cells, family, protection, "recovered"),
                tally(&report.cells, family, protection, "untouched"),
                tally(&report.cells, family, protection, "undetected"),
                tally(&report.cells, family, protection, "deadlock"),
                tally(&report.cells, family, protection, "error"),
            );
        }
    }

    println!("\n== protection energy tax (clean run) ==");
    for e in &report.energy {
        println!(
            "{:<6} {:<8} {:>9.1} µW  (+{:.2}%)",
            e.family.label(),
            e.protection.label(),
            e.total_uw,
            e.overhead_pct
        );
    }

    for cell in report.cells.iter().filter(|c| c.shrunk.is_some()) {
        println!(
            "\nSHRUNK REPRO for failing {} / {} / seed {}: {:?}",
            cell.family.label(),
            cell.protection.label(),
            cell.seed,
            cell.shrunk.as_ref().unwrap()
        );
    }

    let json = to_json(&report);
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("\nwrote BENCH_recovery.json ({} bytes)", json.len());
}
