//! Runs every experiment in order (the full paper reproduction).

fn main() {
    {
        let (name, bin) = ("fig10", ""); let _ = (name, bin); }
    // Inline each experiment's printout by invoking the same code the
    // individual binaries use.
    println!("==================================================================");
    println!("Reproduction of 'Serialized Asynchronous Links for NoC' (DATE'08)");
    println!("==================================================================\n");
    run_all();
}

fn run_all() {
    use sal_bench::{experiments as e, table};
    // Fig 10
    let f = e::fig10();
    println!("--- Fig 10: Bandwidth vs Wires (upper bound {:.0} MFlit/s)", f.upper_bound_mflits);
    for p in &f.series {
        println!(
            "  {:>3.0} MFlit/s: I1@100={:>3} I1@200={:>3} I1@300={:>3} I3={}",
            p.bandwidth_mflits,
            p.sync_100,
            p.sync_200,
            p.sync_300,
            p.async_proposed.map_or("-".to_string(), |w| w.to_string())
        );
    }
    for (mhz, meas) in &f.measured_i3_mflits {
        println!("  measured I3 @ {mhz:.0} MHz clock: {meas:.1} MFlit/s");
    }
    // Fig 11
    println!("\n--- Fig 11: Wire Area");
    for r in e::fig11() {
        println!(
            "  L={:>5.0}um  I1={:>6.0}um2  I2/I3={:>6.0}um2",
            r.length_um, r.sync_area_um2, r.async_area_um2
        );
    }
    // Fig 12 / 13
    println!("\n--- Fig 12: Power vs Buffers @100MHz (uW)");
    print_power_rows(&e::fig12());
    println!("\n--- Fig 13: Power vs Buffers @300MHz (uW)");
    print_power_rows(&e::fig13());
    // Fig 14
    println!("\n--- Fig 14: Power breakdown @ 50% usage (uW)");
    for r in e::fig14() {
        println!(
            "  {}: serdes={:>4.0} buffers={:>4.0} conv={:>4.0} other={:>4.0} total={:>5.0}",
            r.family.label(),
            r.blocks.serdes_uw,
            r.blocks.buffers_uw,
            r.blocks.conv_uw,
            r.blocks.other_uw,
            r.blocks.total_uw
        );
    }
    // Tables
    println!("\n--- Table 1: Link area (um2)");
    for r in e::table1() {
        println!("  {}: {:.0}", r.family.label(), r.area_um2);
    }
    println!("\n--- Table 2: I2 breakdown (um2)");
    let t2 = e::table2();
    for r in &t2 {
        println!("  {:<30} {:>6.0} x{}", r.module, r.area_um2, r.qty);
    }
    let total: f64 = t2.iter().map(|r| r.area_um2 * r.qty as f64).sum();
    println!("  {:<30} {total:>6.0}", "Total");
    // Delay check
    let d = e::delay_check();
    println!("\n--- Delay-equation validation");
    println!("  paper terms:   {:>6.1} MFlit/s (paper ~311)", d.paper_analytic_mflits);
    println!("  our terms:     {:>6.1} MFlit/s", d.our_analytic_mflits);
    println!("  simulated I3:  {:>6.1} MFlit/s", d.simulated_mflits);
    println!("  I2 equation:   {:>6.1} MFlit/s", d.i2_analytic_mflits);
    println!("  simulated I2:  {:>6.1} MFlit/s", d.i2_simulated_mflits);
    // Headline
    let h = e::headline();
    println!("\n--- Headline claims");
    println!("  wire reduction:  {:.0}% (paper 75%)", h.wire_reduction * 100.0);
    println!("  power reduction: {:.0}% (paper 65%)", h.power_reduction * 100.0);
    println!("  area overhead:   {:.0}% (paper ~20%)", h.area_overhead * 100.0);
    // NoC
    println!("\n--- NoC study (4x4 mesh, uniform)");
    let rows: Vec<Vec<String>> = e::noc_study()
        .iter()
        .map(|r| {
            vec![
                r.family.label().into(),
                format!("{:.0}", r.clk_mhz),
                format!("{:.2}", r.offered),
                format!("{:.3}", r.accepted),
                format!("{:.1}", r.avg_latency),
                r.total_wires.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(&["link", "MHz", "offered", "accepted", "latency", "wires"], &rows)
    );
}

fn print_power_rows(rows: &[sal_bench::experiments::PowerRow]) {
    use sal_link::LinkFamily;
    for buffers in sal_bench::experiments::BUFFER_SWEEP {
        let p = |k: LinkFamily| {
            rows.iter()
                .find(|r| r.family == k && r.buffers == buffers)
                .map_or(f64::NAN, |r| r.power_uw)
        };
        println!(
            "  {buffers} buffers: I1={:>5.0} I2={:>5.0} I3={:>5.0}",
            p(LinkFamily::Sync),
            p(LinkFamily::PerTransfer),
            p(LinkFamily::PerWord)
        );
    }
}
