//! Timing-margin and fault-injection experiment (`--bin margins`).
//!
//! The paper's argument for serialized asynchronous links is partly a
//! *robustness* argument: the four-phase per-transfer protocol (I2) is
//! delay-insensitive on its control path, while the per-word variant
//! (I3) trades that for a bundled-data timing assumption and the
//! synchronous reference (I1) lives entirely off the fixed switch
//! clock's slack. This module probes those margins empirically with
//! the kernel's fault hooks:
//!
//! * **scale** — derate every gate delay inside the link's
//!   asynchronous core (serializer, wire, deserializer; for I1 the
//!   clocked buffer pipeline) by a common factor while the switch
//!   clock stays at 100 MHz. I1 must fail once the derated datapath
//!   eats the 10 ns slack; I2's handshakes stretch and survive.
//! * **skew** — add extra delay to the *data* wires only, modelling
//!   bundled-data skew against req/VALID. I3 accumulates skew across
//!   every repeated segment with no relatching, so it fails first;
//!   I2 relatches per buffer; I1 tolerates skew up to clock slack.
//! * **sigma** — seeded Gaussian delay variation (Monte Carlo) on the
//!   async core, three fixed seeds per point: a coarse yield curve.
//!
//! Every probe runs through [`sweep::parallel_map`] and is classified
//! by the data-integrity scoreboard or the deadlock watchdog, so a
//! marginal link that silently corrupts payloads is a failure even
//! when every word arrives.

use sal_des::{FaultPlan, Time};
use sal_link::measure::{run_spec, MeasureOptions, RunFailure};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};

use crate::sweep;

/// Delay-derating factors swept on the scale axis.
pub const SCALE_AXIS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 96.0, 128.0];

/// Extra data-wire delay, picoseconds, swept on the skew axis.
pub const SKEW_AXIS_PS: [u64; 10] = [0, 100, 200, 400, 800, 1600, 3200, 6400, 9600, 12800];

/// Gaussian delay-variation sigmas swept on the sigma axis.
pub const SIGMA_AXIS: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

/// Fixed Monte-Carlo seeds per sigma point (determinism is part of
/// the experiment's contract).
pub const SIGMA_SEEDS: [u64; 3] = [101, 202, 303];

/// How one probe ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every word arrived exactly once, in order, intact.
    Pass,
    /// The run completed but the scoreboard counted violations.
    Corrupt {
        /// Total integrity violations (corrupted + lost + duplicated
        /// + reordered).
        violations: usize,
    },
    /// The link wedged; `stalled` is the watchdog's label for the
    /// first stalled handshake, when it recognised one.
    Deadlock {
        /// Watchdog label of the first stalled req/ack pair.
        stalled: Option<String>,
    },
    /// The probe could not run at all (build or simulator error).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Outcome {
    /// `true` for anything other than a clean pass.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Outcome::Pass)
    }

    /// Short tag for tables and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::Corrupt { .. } => "corrupt",
            Outcome::Deadlock { .. } => "deadlock",
            Outcome::Error { .. } => "error",
        }
    }
}

/// One probe result on one axis.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Which link was probed.
    pub family: LinkFamily,
    /// Axis value (scale factor, skew in ps, or sigma).
    pub value: f64,
    /// Monte-Carlo seed (0 where the axis is deterministic).
    pub seed: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// The stuck-at demonstration: a wedged I2 acknowledge must produce a
/// structured deadlock diagnosis, not a bare timeout.
#[derive(Debug, Clone)]
pub struct DeadlockDemo {
    /// The signal forced low.
    pub forced: String,
    /// Watchdog label of the first stalled handshake.
    pub stalled: Option<String>,
    /// Full report text.
    pub report: String,
}

/// Everything `--bin margins` reports.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Scale-axis probes (delay derating of the async core).
    pub scale: Vec<Probe>,
    /// Skew-axis probes (extra delay on data wires, ps).
    pub skew: Vec<Probe>,
    /// Sigma-axis probes (Gaussian variation, one per seed).
    pub sigma: Vec<Probe>,
    /// The stuck-at deadlock demonstration.
    pub deadlock_demo: DeadlockDemo,
}

const FAMILIES: [LinkFamily; 3] = LinkFamily::ALL;

/// Scopes whose gate delays the scale/sigma axes perturb: the link's
/// self-timed core. Interfaces and the clock stay nominal, so the
/// probe isolates the part of the design whose timing each protocol
/// actually owns.
fn core_scopes(family: LinkFamily) -> Vec<String> {
    match family {
        LinkFamily::Sync => vec!["link.buffers".into()],
        _ => vec!["link.ser".into(), "link.wire".into(), "link.des".into()],
    }
}

/// Substring selecting the *data* wires for the skew axis. For the
/// serialized links these are the slice-data segments between
/// stations; for I1 the inter-stage flit registers' outputs.
fn data_wire_substring(family: LinkFamily) -> &'static str {
    match family {
        LinkFamily::Sync => "flit_q",
        _ => ".seg_d",
    }
}

fn probe_words() -> Vec<u64> {
    worst_case_pattern(8, 32)
}

fn probe_opts(plan: FaultPlan, slowdown: f64) -> MeasureOptions {
    // The derating axis legitimately stretches the whole transfer, so
    // the give-up horizon must stretch with it — otherwise a slow but
    // live link is misreported as wedged. 40 µs is ~50× the nominal
    // in-use time of the 8-flit pattern.
    let us = (40.0 * slowdown.max(1.0)).ceil() as u64;
    // Reset must also stretch: it has to out-wait the slowest derated
    // control path's settling, or startup X values latch into the
    // asynchronous state cells and masquerade as a protocol deadlock.
    let reset_ns = (2.0 * slowdown.max(1.0)).ceil() as u64;
    MeasureOptions {
        timeout: Time::from_us(us),
        fault_plan: Some(plan),
        reset_hold: Time::from_ns(reset_ns),
        ..MeasureOptions::default()
    }
}

fn classify(family: LinkFamily, plan: FaultPlan, words: &[u64], slowdown: f64) -> Outcome {
    match run_spec(&LinkSpec::paper(family), &LinkConfig::default(), words, &probe_opts(plan, slowdown)) {
        Ok(run) if run.integrity.is_clean() => Outcome::Pass,
        Ok(run) => Outcome::Corrupt { violations: run.integrity.violations() },
        Err(RunFailure::Deadlock { diagnosis, .. }) => Outcome::Deadlock {
            stalled: diagnosis.and_then(|d| d.first_label().map(str::to_string)),
        },
        Err(e) => Outcome::Error { message: e.to_string() },
    }
}

/// Runs the full three-axis sweep plus the deadlock demonstration.
/// Deterministic: all randomness flows from the fixed seeds above.
pub fn margins() -> RobustnessReport {
    #[derive(Clone, Copy)]
    enum Axis {
        Scale(f64),
        SkewPs(u64),
        Sigma(f64, u64),
    }
    let mut items: Vec<(LinkFamily, Axis)> = Vec::new();
    for family in FAMILIES {
        for s in SCALE_AXIS {
            items.push((family, Axis::Scale(s)));
        }
        for ps in SKEW_AXIS_PS {
            items.push((family, Axis::SkewPs(ps)));
        }
        for sg in SIGMA_AXIS {
            for seed in SIGMA_SEEDS {
                items.push((family, Axis::Sigma(sg, seed)));
            }
        }
    }
    let words = probe_words();
    let probes = sweep::parallel_map(items, |(family, axis)| {
        let mut plan = match axis {
            Axis::Scale(s) => FaultPlan::new(1).with_delay_scale(s).with_setup_check(),
            Axis::SkewPs(ps) => {
                return Probe {
                    family,
                    value: ps as f64,
                    seed: 0,
                    outcome: classify(
                        family,
                        FaultPlan::new(1)
                            .skew_matching(data_wire_substring(family), Time::from_ps(ps)),
                        &words,
                        1.0,
                    ),
                }
            }
            Axis::Sigma(sg, seed) => FaultPlan::new(seed).with_delay_sigma(sg),
        };
        for scope in core_scopes(family) {
            plan = plan.in_scope(&scope);
        }
        let (value, seed, slowdown) = match axis {
            Axis::Scale(s) => (s, 0, s),
            Axis::Sigma(sg, seed) => (sg, seed, 2.0),
            Axis::SkewPs(_) => unreachable!("handled above"),
        };
        Probe { family, value, seed, outcome: classify(family, plan, &words, slowdown) }
    })
    .expect("a margin probe panicked");

    let mut scale = Vec::new();
    let mut skew = Vec::new();
    let mut sigma = Vec::new();
    // parallel_map preserves input order, so re-split by construction
    // order: per family, scales first, then skews, then sigmas.
    let per_family = SCALE_AXIS.len() + SKEW_AXIS_PS.len() + SIGMA_AXIS.len() * SIGMA_SEEDS.len();
    for (i, p) in probes.into_iter().enumerate() {
        match i % per_family {
            j if j < SCALE_AXIS.len() => scale.push(p),
            j if j < SCALE_AXIS.len() + SKEW_AXIS_PS.len() => skew.push(p),
            _ => sigma.push(p),
        }
    }

    RobustnessReport { scale, skew, sigma, deadlock_demo: deadlock_demo() }
}

/// Forces an I2 slice acknowledge low mid-protocol and captures the
/// watchdog's diagnosis.
pub fn deadlock_demo() -> DeadlockDemo {
    let forced = "link.ack_in2";
    let plan = FaultPlan::new(7).stuck_at(forced, false, Time::from_ns(5));
    let words = probe_words();
    let opts = MeasureOptions {
        timeout: Time::from_us(5),
        fault_plan: Some(plan),
        ..MeasureOptions::default()
    };
    match run_spec(&LinkSpec::paper(LinkFamily::PerTransfer), &LinkConfig::default(), &words, &opts) {
        Err(RunFailure::Deadlock { diagnosis, .. }) => {
            let stalled = diagnosis.as_ref().and_then(|d| d.first_label().map(str::to_string));
            let report = diagnosis.map_or_else(|| "no watchdog diagnosis".to_string(), |d| d.to_string());
            DeadlockDemo { forced: forced.to_string(), stalled, report }
        }
        other => DeadlockDemo {
            forced: forced.to_string(),
            stalled: None,
            report: format!("UNEXPECTED: stuck acknowledge did not deadlock ({other:?})"),
        },
    }
}

/// First axis value at which `family` fails, scanning in axis order.
/// `None` = survived the whole sweep. For the sigma axis a value
/// fails if *any* seed at that value failed.
pub fn first_failure(probes: &[Probe], family: LinkFamily) -> Option<f64> {
    probes.iter().find(|p| p.family == family && p.outcome.is_failure()).map(|p| p.value)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn probe_json(p: &Probe) -> String {
    let detail = match &p.outcome {
        Outcome::Pass => String::new(),
        Outcome::Corrupt { violations } => format!(", \"violations\": {violations}"),
        Outcome::Deadlock { stalled: Some(s) } => {
            format!(", \"stalled\": \"{}\"", json_escape(s))
        }
        Outcome::Deadlock { stalled: None } => ", \"stalled\": null".to_string(),
        Outcome::Error { message } => format!(", \"message\": \"{}\"", json_escape(message)),
    };
    format!(
        "{{\"kind\": \"{}\", \"value\": {}, \"seed\": {}, \"outcome\": \"{}\"{detail}}}",
        p.family.label(),
        json_f64(p.value),
        p.seed,
        p.outcome.tag()
    )
}

fn axis_json(name: &str, probes: &[Probe]) -> String {
    let points: Vec<String> = probes.iter().map(probe_json).collect();
    let firsts: Vec<String> = FAMILIES
        .iter()
        .map(|&f| format!("\"{}\": {}", f.label(), json_opt_f64(first_failure(probes, f))))
        .collect();
    format!(
        "  \"{name}\": {{\n    \"first_failure\": {{{}}},\n    \"points\": [\n      {}\n    ]\n  }}",
        firsts.join(", "),
        points.join(",\n      ")
    )
}

/// Serialises the report as the `BENCH_robustness.json` artifact
/// (hand-rolled: the vendored serde is a no-op stub).
pub fn to_json(r: &RobustnessReport) -> String {
    let demo = format!(
        "  \"deadlock_demo\": {{\"forced\": \"{}\", \"stalled\": {}, \"report\": \"{}\"}}",
        json_escape(&r.deadlock_demo.forced),
        r.deadlock_demo
            .stalled
            .as_ref().map_or_else(|| "null".to_string(), |s| format!("\"{}\"", json_escape(s))),
        json_escape(&r.deadlock_demo.report),
    );
    format!(
        "{{\n  \"experiment\": \"margins\",\n  \"words\": {},\n  \"clk_mhz\": 100,\n{},\n{},\n{},\n{}\n}}\n",
        probe_words().len(),
        axis_json("delay_scale", &r.scale),
        axis_json("data_skew_ps", &r.skew),
        axis_json("delay_sigma", &r.sigma),
        demo
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_failure_scans_in_order() {
        let mk = |v: f64, fail: bool| Probe {
            family: LinkFamily::PerTransfer,
            value: v,
            seed: 0,
            outcome: if fail {
                Outcome::Corrupt { violations: 1 }
            } else {
                Outcome::Pass
            },
        };
        let probes = vec![mk(1.0, false), mk(2.0, true), mk(4.0, true)];
        assert_eq!(first_failure(&probes, LinkFamily::PerTransfer), Some(2.0));
        assert_eq!(first_failure(&probes, LinkFamily::Sync), None);
    }

    #[test]
    fn json_is_escaped_and_shaped() {
        let r = RobustnessReport {
            scale: vec![Probe {
                family: LinkFamily::Sync,
                value: 8.0,
                seed: 0,
                outcome: Outcome::Deadlock { stalled: Some("a \"b\"".into()) },
            }],
            skew: vec![],
            sigma: vec![],
            deadlock_demo: DeadlockDemo {
                forced: "link.ack_in2".into(),
                stalled: None,
                report: "line1\nline2".into(),
            },
        };
        let j = to_json(&r);
        assert!(j.contains("\\\"b\\\""), "{j}");
        assert!(j.contains("line1\\nline2"), "{j}");
        assert!(j.contains("\"first_failure\": {\"I1\": 8.0, \"I2\": null, \"I3\": null}"), "{j}");
    }

    #[test]
    fn deadlock_demo_names_a_handshake() {
        let demo = deadlock_demo();
        assert!(
            demo.stalled.is_some(),
            "stuck acknowledge must yield a watchdog diagnosis: {}",
            demo.report
        );
    }
}
