//! Design-space Pareto campaign over the declarative `LinkSpec`
//! lattice.
//!
//! Where the figure experiments replicate the paper's three fixed
//! design points, this campaign sweeps the *whole* space the
//! [`LinkSpec`] generator admits — family × word width × serialization
//! ratio × buffer depth × protection — measures every cell at gate
//! level, and extracts the per-family Pareto fronts over
//! (energy-per-word, word latency, cell count). The output
//! `BENCH_pareto.json` is bytewise deterministic, so CI diffs the
//! quick subset against a committed fixture.
//!
//! Measurements are memoized in a content-addressed store: each cell
//! keys on the spec's [`content_hash`](LinkSpec::content_hash) plus a
//! *fingerprint* of the measurement context (engine revision, netlist
//! shape, stimulus length), persisted as JSONL. A warm rerun replays
//! every record verbatim — zero simulations, byte-identical artifact —
//! while any engine or generator change shifts the fingerprint and
//! forces a re-measure of exactly the affected cells.

use crate::sweep::parallel_map;
use sal_cells::CircuitBuilder;
use sal_des::{Simulator, ENGINE_REV};
use sal_link::measure::{run_spec, MeasureOptions};
use sal_link::testbench::worst_case_pattern;
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec, ProtectionMode};
use sal_lint::run_all;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Flits pushed through every cell (the paper's worst-case pattern).
pub const CAMPAIGN_WORDS: usize = 4;

/// Word widths the full campaign visits.
pub const WIDTHS: [u8; 4] = [16, 32, 48, 64];
/// Serialization ratios the full campaign visits.
pub const RATIOS: [u8; 4] = [2, 4, 8, 16];
/// Buffer depths the full campaign visits.
pub const DEPTHS: [u32; 3] = [2, 4, 8];
/// Protection modes the full campaign visits.
pub const PROTECTIONS: [ProtectionMode; 3] =
    [ProtectionMode::Off, ProtectionMode::Parity, ProtectionMode::Crc8];

/// Enumerates every *valid* cell of the full campaign grid, in the
/// deterministic (family, width, ratio, depth, protection) order the
/// artifact records them. Invalid lattice points (ratio not dividing
/// the width, protection widening past 64 bits, CRC slice mismatches,
/// the 64-bit sync word) are skipped by the builder's own validation —
/// the campaign sweeps exactly the space the API admits.
///
/// The synchronous family is parallel wiring with no serializer, so
/// sweeping it across ratios and protection would re-measure one
/// netlist under different names; it is pinned to the paper's 4:1
/// bookkeeping ratio, unprotected.
pub fn full_grid() -> Vec<LinkSpec> {
    let mut out = Vec::new();
    for family in LinkFamily::ALL {
        for width in WIDTHS {
            for ratio in RATIOS {
                if family == LinkFamily::Sync && ratio != 4 {
                    continue;
                }
                for depth in DEPTHS {
                    for protection in PROTECTIONS {
                        let spec = LinkSpec::builder()
                            .family(family)
                            .word_width(width)
                            .serial_ratio(ratio)
                            .buffer_depth(depth)
                            .protection(protection)
                            .build();
                        if let Ok(spec) = spec {
                            out.push(spec);
                        }
                    }
                }
            }
        }
    }
    out
}

/// The reduced deterministic subset CI measures and diffs against the
/// committed fixture: all three families, three ratios (2, 8, 16 —
/// deliberately *not* the paper's 4:1, which the figure experiments
/// already pin), two word widths, paper buffer depth, protection off
/// and parity.
pub fn quick_grid() -> Vec<LinkSpec> {
    let mut out = Vec::new();
    for family in LinkFamily::ALL {
        for width in [16u8, 32] {
            for ratio in [2u8, 8, 16] {
                if family == LinkFamily::Sync && ratio != 2 {
                    continue;
                }
                for protection in [ProtectionMode::Off, ProtectionMode::Parity] {
                    let spec = LinkSpec::builder()
                        .family(family)
                        .word_width(width)
                        .serial_ratio(ratio)
                        .buffer_depth(4)
                        .protection(protection)
                        .build();
                    if let Ok(spec) = spec {
                        out.push(spec);
                    }
                }
            }
        }
    }
    out
}

/// One measured cell: the numbers the Pareto extraction needs plus
/// the verbatim record JSON the artifact embeds (verbatim so a
/// cache-warm rerun cannot drift by a formatting detail).
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// The spec this cell measured.
    pub spec: LinkSpec,
    /// Energy to move one word across the link, pJ.
    pub energy_per_word_pj: f64,
    /// Mean accept-to-deliver word latency, ns.
    pub latency_ns: f64,
    /// Netlist cell count of the bare link.
    pub cells: usize,
    /// Error-severity lint findings on the generated netlist.
    pub lint_errors: usize,
    /// The record as serialized JSON (one object, no trailing newline).
    pub json: String,
}

/// Hit/miss accounting for one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells replayed from the store without simulation.
    pub hits: usize,
    /// Cells measured (and stored) this run.
    pub misses: usize,
}

/// A full campaign result.
#[derive(Debug)]
pub struct ParetoReport {
    /// Every measured cell, in grid order.
    pub cells: Vec<MeasuredCell>,
    /// Store accounting for this run.
    pub stats: CacheStats,
}

/// 64-bit FNV-1a, the same construction `LinkSpec::content_hash`
/// uses, over an arbitrary byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the bare link netlist for `spec` and returns the netlist
/// graph (for cell counting, linting and fingerprinting). Cheap: no
/// simulation is run.
fn build_netgraph(spec: &LinkSpec, opts: &MeasureOptions) -> sal_des::NetGraph {
    let base = LinkConfig::default();
    let mut sim = Simulator::new();
    let mut b = CircuitBuilder::new(&mut sim, &opts.lib);
    generate(&mut b, spec, "link", &base).expect("campaign grids contain only valid specs");
    b.finish();
    sim.netgraph()
}

/// The measurement-context fingerprint a cached record is valid for:
/// engine revision, generated-netlist shape and stimulus length. Any
/// kernel behaviour bump ([`ENGINE_REV`]), generator change (shape)
/// or campaign protocol change (words) invalidates the entry.
fn fingerprint(spec: &LinkSpec, graph: &sal_des::NetGraph) -> u64 {
    let summary = format!(
        "{ENGINE_REV}|{:016x}|c{}|s{}|b{}|k{}|w{}|n{}",
        spec.content_hash(),
        graph.components.len(),
        graph.signals.len(),
        graph.bundles.len(),
        graph.captures.len(),
        graph.watches.len(),
        CAMPAIGN_WORDS,
    );
    fnv1a(summary.as_bytes())
}

/// Measures one cell at gate level and serialises its record.
fn measure(spec: &LinkSpec, graph: &sal_des::NetGraph, opts: &MeasureOptions) -> MeasuredCell {
    let cells = graph.components.len();
    let lint_errors = run_all(graph).errors().count();
    let words = worst_case_pattern(CAMPAIGN_WORDS, spec.word_width());
    let run = run_spec(spec, &LinkConfig::default(), &words, opts)
        .unwrap_or_else(|e| panic!("campaign cell {spec:?} failed its clean run: {e}"));
    assert!(run.integrity.is_clean(), "campaign cell {spec:?} corrupted data");
    // µW × µs = pJ: the window is the paper's usage-scaled interval.
    let energy_pj = run.total_power_uw() * run.window.as_secs() * 1e6;
    let energy_per_word_pj = energy_pj / words.len() as f64;
    let pairs = run.sent.iter().zip(run.received.iter());
    let mut lat_sum = 0.0;
    let mut lat_n = 0usize;
    for (&(t_in, _), &(t_out, _)) in pairs {
        lat_sum += (t_out - t_in).as_ns();
        lat_n += 1;
    }
    let latency_ns = if lat_n == 0 { 0.0 } else { lat_sum / lat_n as f64 };
    let json = format!(
        "{{\"family\": \"{}\", \"word_width\": {}, \"serial_ratio\": {}, \"slice_width\": {}, \
         \"buffer_depth\": {}, \"protection\": \"{}\", \"wires\": {}, \"cells\": {}, \
         \"area_um2\": {:.1}, \"energy_per_word_pj\": {:.3}, \"latency_ns\": {:.3}, \
         \"throughput_mflits\": {:.2}, \"lint_errors\": {}, \"spec_hash\": \"{:016x}\"}}",
        spec.family().label(),
        spec.word_width(),
        spec.serial_ratio(),
        spec.slice_width(),
        spec.buffer_depth(),
        spec.protection().label(),
        spec.wires(),
        cells,
        run.area_um2(),
        energy_per_word_pj,
        latency_ns,
        run.throughput_mflits(),
        lint_errors,
        spec.content_hash(),
    );
    MeasuredCell {
        spec: spec.clone(),
        energy_per_word_pj,
        latency_ns,
        cells,
        lint_errors,
        json,
    }
}

/// Pulls `"key": <number>` out of a record line (the campaign's own
/// serialisation, so the shape is fixed; the vendored serde is a
/// no-op stub and there is no JSON parser to lean on).
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\": "))? + key.len() + 4;
    let rest = &json[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().trim_matches('"').parse().ok()
}

/// One parsed line of the on-disk store.
struct StoreLine {
    spec_hex: String,
    fp_hex: String,
    record: String,
}

fn parse_store_line(line: &str) -> Option<StoreLine> {
    let spec_at = line.find("\"spec\": \"")? + 9;
    let spec_hex = line.get(spec_at..spec_at + 16)?.to_string();
    let fp_at = line.find("\"fp\": \"")? + 7;
    let fp_hex = line.get(fp_at..fp_at + 16)?.to_string();
    let rec_at = line.find("\"record\": ")? + 10;
    let record = line.get(rec_at..line.rfind('}')?)?.trim().to_string();
    Some(StoreLine { spec_hex, fp_hex, record })
}

/// Loads the store into a `(spec_hash, fingerprint) → record` map.
/// A missing or partially unreadable file is simply a colder cache.
fn load_store(path: &Path) -> HashMap<(String, String), String> {
    let mut map = HashMap::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            if let Some(l) = parse_store_line(line) {
                map.insert((l.spec_hex, l.fp_hex), l.record);
            }
        }
    }
    map
}

/// Runs the campaign over `specs`, memoizing through the store at
/// `cache_path`. Cells run under [`parallel_map`]; results land in
/// grid order. The store is rewritten afterwards in grid order, so
/// the file itself is deterministic too.
///
/// # Panics
///
/// Panics if a sweep worker dies or a cell fails its clean run — a
/// campaign with holes would silently bias the fronts.
pub fn campaign(specs: &[LinkSpec], cache_path: &Path) -> ParetoReport {
    let store = load_store(cache_path);
    let opts = MeasureOptions::default();
    let outcomes = parallel_map(specs.to_vec(), |spec| {
        let graph = build_netgraph(&spec, &opts);
        let fp = fingerprint(&spec, &graph);
        let key = (format!("{:016x}", spec.content_hash()), format!("{fp:016x}"));
        if let Some(record) = store.get(&key) {
            let cell = MeasuredCell {
                spec: spec.clone(),
                energy_per_word_pj: field_f64(record, "energy_per_word_pj")
                    .expect("stored record carries energy"),
                latency_ns: field_f64(record, "latency_ns").expect("stored record carries latency"),
                cells: field_f64(record, "cells").expect("stored record carries cells") as usize,
                lint_errors: field_f64(record, "lint_errors")
                    .expect("stored record carries lint_errors")
                    as usize,
                json: record.clone(),
            };
            (cell, fp, true)
        } else {
            (measure(&spec, &graph, &opts), fp, false)
        }
    })
    .unwrap_or_else(|e| panic!("{e}"));
    let hits = outcomes.iter().filter(|(_, _, hit)| *hit).count();
    let stats = CacheStats { hits, misses: outcomes.len() - hits };

    // Persist: every cell of this run, grid-ordered, fingerprint-keyed.
    let mut out = String::new();
    for (cell, fp, _) in &outcomes {
        writeln!(
            out,
            "{{\"spec\": \"{:016x}\", \"fp\": \"{fp:016x}\", \"record\": {}}}",
            cell.spec.content_hash(),
            cell.json
        )
        .expect("writing to a String cannot fail");
    }
    let cells: Vec<MeasuredCell> = outcomes.into_iter().map(|(c, _, _)| c).collect();
    if let Some(dir) = cache_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(cache_path, out).expect("write pareto cache store");

    ParetoReport { cells, stats }
}

/// `true` if `a` dominates `b`: no worse on every objective, strictly
/// better on at least one (minimizing energy, latency and cell count).
fn dominates(a: &MeasuredCell, b: &MeasuredCell) -> bool {
    let no_worse = a.energy_per_word_pj <= b.energy_per_word_pj
        && a.latency_ns <= b.latency_ns
        && a.cells <= b.cells;
    let better = a.energy_per_word_pj < b.energy_per_word_pj
        || a.latency_ns < b.latency_ns
        || a.cells < b.cells;
    no_worse && better
}

/// Indices (into `cells`) of one family's Pareto-optimal cells, in
/// grid order.
pub fn pareto_front(cells: &[MeasuredCell], family: LinkFamily) -> Vec<usize> {
    let members: Vec<usize> =
        (0..cells.len()).filter(|&i| cells[i].spec.family() == family).collect();
    members
        .iter()
        .copied()
        .filter(|&i| !members.iter().any(|&j| j != i && dominates(&cells[j], &cells[i])))
        .collect()
}

/// Serialises the campaign as the `BENCH_pareto.json` artifact.
/// Records are embedded verbatim, so a warm rerun is byte-identical.
pub fn to_json(report: &ParetoReport, quick: bool) -> String {
    let records: Vec<&str> = report.cells.iter().map(|c| c.json.as_str()).collect();
    let mut fronts = Vec::new();
    for family in LinkFamily::ALL {
        let entries: Vec<String> = pareto_front(&report.cells, family)
            .into_iter()
            .map(|i| {
                let c = &report.cells[i];
                format!(
                    "{{\"spec_hash\": \"{:016x}\", \"word_width\": {}, \"serial_ratio\": {}, \
                     \"buffer_depth\": {}, \"protection\": \"{}\", \
                     \"energy_per_word_pj\": {:.3}, \"latency_ns\": {:.3}, \"cells\": {}}}",
                    c.spec.content_hash(),
                    c.spec.word_width(),
                    c.spec.serial_ratio(),
                    c.spec.buffer_depth(),
                    c.spec.protection().label(),
                    c.energy_per_word_pj,
                    c.latency_ns,
                    c.cells
                )
            })
            .collect();
        fronts.push(format!(
            "    \"{}\": [\n      {}\n    ]",
            family.label(),
            entries.join(",\n      ")
        ));
    }
    format!(
        "{{\n  \"experiment\": \"pareto\",\n  \"engine_rev\": \"{}\",\n  \"grid\": \"{}\",\n  \
         \"words_per_cell\": {},\n  \"cells\": {},\n  \"records\": [\n    {}\n  ],\n  \
         \"fronts\": {{\n{}\n  }}\n}}\n",
        ENGINE_REV,
        if quick { "quick" } else { "full" },
        CAMPAIGN_WORDS,
        report.cells.len(),
        records.join(",\n    "),
        fronts.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_spans_the_advertised_space() {
        let grid = full_grid();
        assert!(
            (200..=400).contains(&grid.len()),
            "full grid should sweep 200–400 cells, got {}",
            grid.len()
        );
        for family in LinkFamily::ALL {
            assert!(grid.iter().any(|s| s.family() == family));
        }
        for ratio in RATIOS {
            assert!(grid.iter().any(|s| s.serial_ratio() == ratio));
        }
        // Grid order is the artifact's record order: strictly sorted
        // by the (family, width, ratio, depth, protection) key.
        let key = |s: &LinkSpec| {
            (
                s.family().label(),
                s.word_width(),
                s.serial_ratio(),
                s.buffer_depth(),
                PROTECTIONS.iter().position(|&p| p == s.protection()),
            )
        };
        for pair in grid.windows(2) {
            assert!(key(&pair[0]) < key(&pair[1]), "grid must be strictly ordered");
        }
    }

    #[test]
    fn quick_grid_covers_the_acceptance_axes() {
        let grid = quick_grid();
        assert!(grid.len() <= 30, "quick subset must stay CI-sized, got {}", grid.len());
        for family in LinkFamily::ALL {
            assert!(grid.iter().any(|s| s.family() == family), "family missing from quick grid");
        }
        let ratios: std::collections::BTreeSet<u8> =
            grid.iter().map(LinkSpec::serial_ratio).collect();
        assert!(
            ratios.is_superset(&[2u8, 8, 16].into_iter().collect()),
            "quick grid must visit ratios 2, 8 and 16 (got {ratios:?})"
        );
        let widths: std::collections::BTreeSet<u8> =
            grid.iter().map(LinkSpec::word_width).collect();
        assert!(widths.len() >= 2, "quick grid must visit at least two word widths");
    }

    fn cell(family: LinkFamily, e: f64, l: f64, c: usize) -> MeasuredCell {
        MeasuredCell {
            spec: LinkSpec::builder().family(family).build().unwrap(),
            energy_per_word_pj: e,
            latency_ns: l,
            cells: c,
            lint_errors: 0,
            json: String::new(),
        }
    }

    #[test]
    fn pareto_front_keeps_exactly_the_nondominated_set() {
        let f = LinkFamily::PerWord;
        let cells = vec![
            cell(f, 10.0, 5.0, 100),                  // dominated by #2
            cell(f, 8.0, 5.0, 100),                   // front
            cell(f, 12.0, 3.0, 100),                  // front (best latency)
            cell(f, 8.0, 5.0, 90),                    // dominates #1
            cell(LinkFamily::Sync, 1.0, 1.0, 1),      // other family: ignored
        ];
        let front = pareto_front(&cells, f);
        assert_eq!(front, vec![2, 3], "expected the nondominated cells, got {front:?}");
        // The other family's front is its own singleton.
        assert_eq!(pareto_front(&cells, LinkFamily::Sync), vec![4]);
    }

    #[test]
    fn equal_cells_both_stay_on_the_front() {
        let f = LinkFamily::PerTransfer;
        let cells = vec![cell(f, 5.0, 5.0, 50), cell(f, 5.0, 5.0, 50)];
        assert_eq!(pareto_front(&cells, f), vec![0, 1], "ties dominate neither way");
    }

    #[test]
    fn record_field_parser_round_trips() {
        let json = "{\"cells\": 123, \"energy_per_word_pj\": 4.567, \"latency_ns\": 0.125, \
                    \"lint_errors\": 0, \"spec_hash\": \"00ff\"}";
        assert_eq!(field_f64(json, "cells"), Some(123.0));
        assert_eq!(field_f64(json, "energy_per_word_pj"), Some(4.567));
        assert_eq!(field_f64(json, "lint_errors"), Some(0.0));
        assert_eq!(field_f64(json, "missing"), None);
    }

    #[test]
    fn store_line_round_trips() {
        let line = "{\"spec\": \"00000000deadbeef\", \"fp\": \"0123456789abcdef\", \
                    \"record\": {\"family\": \"I3\", \"cells\": 7}}";
        let l = parse_store_line(line).expect("line parses");
        assert_eq!(l.spec_hex, "00000000deadbeef");
        assert_eq!(l.fp_hex, "0123456789abcdef");
        assert_eq!(l.record, "{\"family\": \"I3\", \"cells\": 7}");
    }

    /// End-to-end store behaviour on a two-cell micro-grid: a cold
    /// run measures and fills the store, a warm rerun is 100% hits
    /// and produces a byte-identical artifact, and an engine bump
    /// (simulated by corrupting the stored fingerprints) re-measures.
    #[test]
    fn warm_rerun_is_all_hits_and_byte_identical() {
        let grid = vec![
            LinkSpec::builder()
                .family(LinkFamily::PerWord)
                .word_width(16)
                .serial_ratio(2)
                .buffer_depth(2)
                .build()
                .unwrap(),
            LinkSpec::builder()
                .family(LinkFamily::Sync)
                .word_width(16)
                .serial_ratio(2)
                .buffer_depth(2)
                .build()
                .unwrap(),
        ];
        let dir = std::env::temp_dir().join(format!("sal-pareto-test-{}", std::process::id()));
        let cache = dir.join("store.jsonl");
        let _ = std::fs::remove_file(&cache);

        let cold = campaign(&grid, &cache);
        assert_eq!(cold.stats, CacheStats { hits: 0, misses: 2 });
        let cold_json = to_json(&cold, true);

        let warm = campaign(&grid, &cache);
        assert_eq!(warm.stats, CacheStats { hits: 2, misses: 0 });
        assert_eq!(to_json(&warm, true), cold_json, "warm artifact must be byte-identical");

        // A fingerprint shift (engine/generator change) is a miss.
        let poisoned = std::fs::read_to_string(&cache)
            .unwrap()
            .replace("\"fp\": \"", "\"fp\": \"ffff");
        std::fs::write(&cache, poisoned).unwrap();
        let bumped = campaign(&grid, &cache);
        assert_eq!(bumped.stats, CacheStats { hits: 0, misses: 2 });
        assert_eq!(to_json(&bumped, true), cold_json, "re-measure reproduces the artifact");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
