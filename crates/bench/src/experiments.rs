//! The experiment implementations: one function per paper artifact.

use sal_analytic::{fig10_series, Fig10Point, PerTransferDelay, PerWordDelay};
use sal_des::Time;
use sal_link::measure::{run_spec, BlockPower, LinkRun, MeasureOptions};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};
use sal_noc::{LinkModel, Mesh, Network, NetworkConfig, TrafficPattern};
use sal_tech::WireModel;

use crate::sweep::sweep_map;

/// All three link families, in the paper's order.
pub const FAMILIES: [LinkFamily; 3] = LinkFamily::ALL;

/// The paper's buffer-count sweep (Figs 12–13).
pub const BUFFER_SWEEP: [u32; 4] = [2, 4, 6, 8];

fn base_at(clk: Time) -> LinkConfig {
    LinkConfig { clk_period: clk, ..LinkConfig::default() }
}

/// Paper-point spec (32-bit word, 4:1) at a given buffer depth.
fn spec_at(family: LinkFamily, buffers: u32) -> LinkSpec {
    LinkSpec::builder()
        .family(family)
        .buffer_depth(buffers)
        .build()
        .expect("the paper point is a valid spec at every swept depth")
}

/// 100 MHz switch clock (paper Figs 10, 12).
pub fn clk_100mhz() -> Time {
    Time::from_ns(10)
}

/// 300 MHz switch clock (paper Figs 10, 13).
pub fn clk_300mhz() -> Time {
    Time::from_ns_f64(10.0 / 3.0)
}

// ---------------------------------------------------------------------
// Fig 10 — bandwidth vs. wires
// ---------------------------------------------------------------------

/// Fig 10 result: the analytic wire-count series plus gate-level
/// validation points (measured I3 throughput at each switch clock).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig10 {
    /// Analytic series (wires needed per bandwidth).
    pub series: Vec<Fig10Point>,
    /// Per-word self-timed upper bound used for the async curve,
    /// MFlit/s.
    pub upper_bound_mflits: f64,
    /// Measured I3 throughput at 100/200/300 MHz switch clocks,
    /// MFlit/s (must track the clock until the upper bound).
    pub measured_i3_mflits: Vec<(f64, f64)>,
}

/// Regenerates Fig 10.
pub fn fig10() -> Fig10 {
    let cfg = LinkConfig::default();
    let ub = PerWordDelay::paper_example().upper_bound_mflits(cfg.buffers);
    let series = fig10_series(cfg.flit_width as u32, cfg.slice_width as u32, ub);
    let mut measured = Vec::new();
    for mhz in [100.0_f64, 200.0, 300.0] {
        let c = LinkConfig { clk_period: Time::from_hz(mhz * 1e6), ..cfg.clone() };
        let words: Vec<u64> = (0..16).map(|i| (i * 0x0137_9BDF) & 0xFFFF_FFFF).collect();
        let run = run_spec(&LinkSpec::paper(LinkFamily::PerWord), &c, &words, &MeasureOptions::default())
            .expect("clean run");
        measured.push((mhz, run.throughput_mflits()));
    }
    Fig10 { series, upper_bound_mflits: ub, measured_i3_mflits: measured }
}

// ---------------------------------------------------------------------
// Fig 11 — wiring area vs. length
// ---------------------------------------------------------------------

/// One row of the Fig 11 reproduction.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Fig11Row {
    /// Wire length, µm.
    pub length_um: f64,
    /// Synchronous link wiring area (32 wires), µm².
    pub sync_area_um2: f64,
    /// Serialized link wiring area (8 wires), µm².
    pub async_area_um2: f64,
}

/// Regenerates Fig 11 (0–3000 µm sweep, paper's wire counts).
pub fn fig11() -> Vec<Fig11Row> {
    let w = WireModel::default();
    (0..=6)
        .map(|i| {
            let l = 500.0 * i as f64;
            Fig11Row {
                length_um: l,
                sync_area_um2: w.area_um2(32, l),
                async_area_um2: w.area_um2(8, l),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figs 12/13 — power vs. buffers
// ---------------------------------------------------------------------

/// One measured power point.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PowerRow {
    /// Link implementation.
    pub family: LinkFamily,
    /// Buffer count.
    pub buffers: u32,
    /// Total link power, µW.
    pub power_uw: f64,
}

/// Regenerates Fig 12 (power vs. buffers at 100 MHz, 50 % usage,
/// worst-case 4-flit pattern).
pub fn fig12() -> Vec<PowerRow> {
    power_sweep(clk_100mhz(), None)
}

/// Regenerates Fig 13 (300 MHz). Per the paper's protocol the
/// averaging windows are carried over from the 100 MHz runs ("the same
/// simulation run time was used").
pub fn fig13() -> Vec<PowerRow> {
    let windows: Vec<((LinkFamily, u32), Time)> = power_runs(clk_100mhz(), None)
        .into_iter()
        .map(|r| ((r.family, r.cfg.buffers), r.window))
        .collect();
    let lookup = move |family: LinkFamily, buffers: u32| {
        windows
            .iter()
            .find(|((f, b), _)| *f == family && *b == buffers)
            .map(|(_, w)| *w)
    };
    let points: Vec<(LinkFamily, u32)> = FAMILIES
        .iter()
        .flat_map(|&family| {
            BUFFER_SWEEP.iter().map(move |&buffers| (family, buffers))
        })
        .collect();
    sweep_map(points, |(family, buffers)| {
        let opts = MeasureOptions {
            window_override: lookup(family, buffers),
            ..MeasureOptions::default()
        };
        let run = run_spec(&spec_at(family, buffers), &base_at(clk_300mhz()), &worst_case_pattern(4, 32), &opts)
            .expect("clean run");
        PowerRow { family, buffers, power_uw: run.total_power_uw() }
    })
}

fn power_runs(clk: Time, window: Option<Time>) -> Vec<LinkRun> {
    let points: Vec<(LinkFamily, u32)> = FAMILIES
        .iter()
        .flat_map(|&family| BUFFER_SWEEP.iter().map(move |&b| (family, b)))
        .collect();
    sweep_map(points, |(family, buffers)| {
        let opts = MeasureOptions { window_override: window, ..MeasureOptions::default() };
        run_spec(&spec_at(family, buffers), &base_at(clk), &worst_case_pattern(4, 32), &opts)
            .expect("clean run")
    })
}

fn power_sweep(clk: Time, window: Option<Time>) -> Vec<PowerRow> {
    power_runs(clk, window)
        .into_iter()
        .map(|r| PowerRow { family: r.family, buffers: r.cfg.buffers, power_uw: r.total_power_uw() })
        .collect()
}

// ---------------------------------------------------------------------
// Fig 14 — power breakdown
// ---------------------------------------------------------------------

/// Per-link block power at the paper's measurement point (100 MHz,
/// 4 buffers, 50 % usage).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig14Row {
    /// Link implementation.
    pub family: LinkFamily,
    /// Grouped block power.
    pub blocks: BlockPower,
}

/// Regenerates Fig 14.
pub fn fig14() -> Vec<Fig14Row> {
    FAMILIES
        .iter()
        .map(|&family| {
            let run = run_spec(
                &spec_at(family, 4),
                &base_at(clk_100mhz()),
                &worst_case_pattern(4, 32),
                &MeasureOptions::default(),
            )
            .expect("clean run");
            Fig14Row { family, blocks: run.block_power() }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Tables 1 and 2 — area
// ---------------------------------------------------------------------

/// One link's total cell area (paper Table 1).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table1Row {
    /// Link implementation.
    pub family: LinkFamily,
    /// Total cell area, µm².
    pub area_um2: f64,
}

/// Regenerates Table 1 (paper setup: 4 buffers).
pub fn table1() -> Vec<Table1Row> {
    FAMILIES
        .iter()
        .map(|&family| {
            let run = build_only(family);
            Table1Row { family, area_um2: run.area_um2() }
        })
        .collect()
}

/// One block of the I2 area breakdown (paper Table 2).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2Row {
    /// Module name, paper wording.
    pub module: &'static str,
    /// Area, µm².
    pub area_um2: f64,
    /// Instance count.
    pub qty: u32,
}

/// Regenerates Table 2: the per-module breakdown of implementation I2.
pub fn table2() -> Vec<Table2Row> {
    let run = build_only(LinkFamily::PerTransfer);
    let buffers = run.cfg.buffers;
    let per_buffer = (0..buffers)
        .map(|k| run.area.subtree_um2(&format!("link.wire.buf{k}")))
        .sum::<f64>()
        / buffers as f64;
    vec![
        Table2Row {
            module: "Synch to Asynch interface",
            area_um2: run.area.subtree_um2("link.tx_if"),
            qty: 1,
        },
        Table2Row {
            module: "Asynch 32 to 8 serializer",
            area_um2: run.area.subtree_um2("link.ser"),
            qty: 1,
        },
        Table2Row { module: "Asynch 8 wire buffer", area_um2: per_buffer, qty: buffers },
        Table2Row {
            module: "Asynch 8 to 32 de-serializer",
            area_um2: run.area.subtree_um2("link.des"),
            qty: 1,
        },
        Table2Row {
            module: "Asynch to Synch interface",
            area_um2: run.area.subtree_um2("link.rx_if"),
            qty: 1,
        },
    ]
}

fn build_only(family: LinkFamily) -> LinkRun {
    // A short functional run so the structure is exercised; area does
    // not depend on the traffic.
    let cfg = LinkConfig::default();
    run_spec(&LinkSpec::paper(family), &cfg, &worst_case_pattern(2, 32), &MeasureOptions::default())
        .expect("clean run")
}

// ---------------------------------------------------------------------
// Delay-equation validation (§V)
// ---------------------------------------------------------------------

/// Cross-check of the paper's delay equations against the gate-level
/// simulation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DelayCheck {
    /// Per-word upper bound from the paper's example terms, MFlit/s
    /// (≈311).
    pub paper_analytic_mflits: f64,
    /// Per-word upper bound from the equation with *our* gate-level
    /// timing terms, MFlit/s.
    pub our_analytic_mflits: f64,
    /// Saturation throughput of the simulated I3 link driven by a
    /// switch clock well above the link's self-timed rate, MFlit/s.
    pub simulated_mflits: f64,
    /// Per-transfer (I2) upper bound from the Fig 15 equation with our
    /// gate-level terms, MFlit/s.
    pub i2_analytic_mflits: f64,
    /// Saturation throughput of the simulated I2 link, MFlit/s.
    pub i2_simulated_mflits: f64,
}

/// Regenerates the §V validation: equation vs. simulation.
pub fn delay_check() -> DelayCheck {
    let cfg = LinkConfig::default();
    let paper = PerWordDelay::paper_example().upper_bound_mflits(cfg.buffers);
    // Our terms: Tburst from the 13-stage oscillator (4 slices ×
    // 2 × 13 × 11 ps ≈ 1.15 ns), receiver/transmitter turnaround from
    // the gate chains (measured from the block simulations).
    let ours = PerWordDelay {
        tp: WireModel::default().delay(cfg.segment_um()),
        tinv: Time::from_ps(11),
        tvalidwordack: Time::from_ps(350),
        tackout: Time::from_ps(450),
        tburst: Time::from_ps_f64(4.0 * 2.0 * 13.0 * 11.0),
    }
    .upper_bound_mflits(cfg.buffers);
    // Per-transfer (Fig 15): handshake-leg times measured from the
    // gate chains of our wire buffer and serializer (C-element ≈29 ps,
    // matched-delay buffers ≈21 ps each, latch ≈33 ps).
    let i2_terms = PerTransferDelay {
        tp: WireModel::default().delay(cfg.segment_um()),
        treqreq: Time::from_ps(95),
        treqack: Time::from_ps(85),
        tackack: Time::from_ps(60),
        tackout: Time::from_ps(95),
        tnextflit: Time::from_ps(430),
    };
    let i2_analytic =
        i2_terms.upper_bound_mflits(cfg.slices() as u32, cfg.buffers + 1);
    // Saturation measurement: a 1 GHz switch clock overdrives the
    // link; the FIFO interfaces throttle to the self-timed rate.
    let fast = LinkConfig { clk_period: Time::from_ps(1000), ..cfg };
    let words: Vec<u64> = (0..24).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect();
    let run_i3 = run_spec(&LinkSpec::paper(LinkFamily::PerWord), &fast, &words, &MeasureOptions::default())
        .expect("clean run");
    let run_i2 = run_spec(&LinkSpec::paper(LinkFamily::PerTransfer), &fast, &words, &MeasureOptions::default())
        .expect("clean run");
    DelayCheck {
        paper_analytic_mflits: paper,
        our_analytic_mflits: ours,
        simulated_mflits: run_i3.throughput_mflits(),
        i2_analytic_mflits: i2_analytic,
        i2_simulated_mflits: run_i2.throughput_mflits(),
    }
}

// ---------------------------------------------------------------------
// Headline claims
// ---------------------------------------------------------------------

/// The abstract's three headline numbers, as measured here.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Headline {
    /// Wire reduction of the serialized link (paper: 75 %).
    pub wire_reduction: f64,
    /// Power reduction, I3 vs I1 at 300 MHz / 8 buffers (paper: 65 %).
    pub power_reduction: f64,
    /// Circuit area overhead, I2 vs I1 (paper: ≈20 % — see
    /// EXPERIMENTS.md for why this reproduction's ratio differs).
    pub area_overhead: f64,
}

/// Regenerates the headline claims.
pub fn headline() -> Headline {
    let cfg = LinkConfig::default();
    let wire_reduction =
        1.0 - cfg.slice_width as f64 / cfg.flit_width as f64;

    // Power at 300 MHz / 8 buffers, paper protocol (fixed window from
    // the 100 MHz run).
    let words = worst_case_pattern(4, 32);
    let base = run_spec(
        &spec_at(LinkFamily::Sync, 8),
        &base_at(clk_100mhz()),
        &words,
        &MeasureOptions::default(),
    )
    .expect("clean run");
    let opts = MeasureOptions {
        window_override: Some(base.window),
        ..MeasureOptions::default()
    };
    let c300 = base_at(clk_300mhz());
    let i1 = run_spec(&spec_at(LinkFamily::Sync, 8), &c300, &words, &opts).expect("clean run");
    let i3 = run_spec(&spec_at(LinkFamily::PerWord, 8), &c300, &words, &opts).expect("clean run");
    let power_reduction = 1.0 - i3.total_power_uw() / i1.total_power_uw();

    let areas = table1();
    let a = |f: LinkFamily| areas.iter().find(|r| r.family == f).expect("all families").area_um2;
    let area_overhead = a(LinkFamily::PerTransfer) / a(LinkFamily::Sync) - 1.0;

    Headline { wire_reduction, power_reduction, area_overhead }
}

// ---------------------------------------------------------------------
// NoC-level study (extension)
// ---------------------------------------------------------------------

/// One row of the mesh-level comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct NocRow {
    /// Link implementation the channels model.
    pub family: LinkFamily,
    /// Switch clock, MHz.
    pub clk_mhz: f64,
    /// Offered load, flits/node/cycle.
    pub offered: f64,
    /// Accepted throughput, flits/node/cycle.
    pub accepted: f64,
    /// Mean packet latency, cycles.
    pub avg_latency: f64,
    /// Total mesh link wiring (both directions, all channels).
    pub total_wires: u64,
}

/// Mesh-level evaluation: a 4×4 mesh under uniform traffic, channels
/// modelled after each link at 100 MHz and 400 MHz (where the serial
/// links saturate below one flit per cycle).
pub fn noc_study() -> Vec<NocRow> {
    let mut points = Vec::new();
    for &(mhz, period_ps) in &[(100.0, 10_000u64), (600.0, 1_667)] {
        for &family in &FAMILIES {
            for &offered in &[0.1, 0.3, 0.5] {
                points.push((mhz, period_ps, family, offered));
            }
        }
    }
    sweep_map(points, |(mhz, period_ps, family, offered)| {
        let lcfg = LinkConfig {
            clk_period: Time::from_ps(period_ps),
            ..LinkConfig::default()
        };
        let model = LinkModel::from_link(family, &lcfg);
        let mesh = Mesh::new(4, 4);
        let total_wires = mesh.channel_count() as u64 * model.wires as u64;
        let cfg = NetworkConfig {
            mesh,
            link: model,
            input_queue_flits: 8,
            packet_len_flits: 4,
            faults: None,
            routing: sal_noc::RoutingMode::XyStatic,
            link_kills: Vec::new(),
        };
        let mut net = Network::new(cfg, TrafficPattern::UniformRandom, offered, 2024);
        let stats = net.run(6_000, 2_000);
        NocRow {
            family,
            clk_mhz: mhz,
            offered,
            accepted: stats.throughput_fpnc(),
            avg_latency: stats.avg_latency(),
            total_wires,
        }
    })
}

/// One point of a load/latency curve.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CurvePoint {
    /// Link implementation the channels model.
    pub family: LinkFamily,
    /// Offered load, flits/node/cycle.
    pub offered: f64,
    /// Accepted throughput, flits/node/cycle.
    pub accepted: f64,
    /// Mean packet latency, cycles.
    pub avg_latency: f64,
    /// 95th-percentile packet latency, cycles.
    pub p95_latency: u64,
}

/// Load/latency curves for a 4×4 mesh at a fast (600 MHz) switch
/// clock, where serialization bites: the classic NoC evaluation the
/// paper's link-level study feeds into.
pub fn noc_curves() -> Vec<CurvePoint> {
    let points: Vec<(LinkFamily, f64)> = FAMILIES
        .iter()
        .flat_map(|&family| (1..=8).map(move |i| (family, 0.08 * i as f64)))
        .collect();
    sweep_map(points, |(family, offered)| {
        let lcfg = LinkConfig {
            clk_period: Time::from_ps(1_667),
            ..LinkConfig::default()
        };
        let model = LinkModel::from_link(family, &lcfg);
        let cfg = NetworkConfig {
            mesh: Mesh::new(4, 4),
            link: model,
            input_queue_flits: 8,
            packet_len_flits: 4,
            faults: None,
            routing: sal_noc::RoutingMode::XyStatic,
            link_kills: Vec::new(),
        };
        let mut net = Network::new(cfg, TrafficPattern::UniformRandom, offered, 4242);
        let stats = net.run(6_000, 2_000);
        CurvePoint {
            family,
            offered,
            accepted: stats.throughput_fpnc(),
            avg_latency: stats.avg_latency(),
            p95_latency: stats.latency_quantile(0.95),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_matches_paper_anchors() {
        let f = fig10();
        let p300 = f.series.iter().find(|p| p.bandwidth_mflits == 300.0).unwrap();
        assert_eq!(p300.sync_300, 32);
        assert_eq!(p300.sync_100, 96);
        assert_eq!(p300.async_proposed, Some(8));
        // Measured I3 throughput tracks the switch clock at 100–300 MHz.
        for &(mhz, meas) in &f.measured_i3_mflits {
            assert!(
                (meas - mhz).abs() / mhz < 0.05,
                "I3 at {mhz} MHz delivered {meas} MFlit/s"
            );
        }
    }

    #[test]
    fn fig11_matches_paper_anchors() {
        let rows = fig11();
        let at_1000 = rows.iter().find(|r| r.length_um == 1000.0).unwrap();
        // Paper: ≈30 000 vs ≈7 500 µm² at 1 000 µm.
        assert!((at_1000.sync_area_um2 - 29_260.0).abs() < 1.0);
        assert!((at_1000.async_area_um2 - 7_660.0).abs() < 1.0);
        // Monotone in length; sync always the larger.
        for w in rows.windows(2) {
            assert!(w[1].sync_area_um2 >= w[0].sync_area_um2);
        }
        assert!(rows.iter().all(|r| r.sync_area_um2 >= r.async_area_um2));
    }

    #[test]
    fn table2_block_ordering_matches_paper() {
        let rows = table2();
        let get = |m: &str| rows.iter().find(|r| r.module.contains(m)).unwrap().area_um2;
        // Paper Table 2 ordering: interfaces dominate; the serializer
        // is smaller than the deserializer; a wire buffer is smallest.
        assert!(get("Synch to Asynch") > get("Asynch to Synch"));
        assert!(get("Asynch to Synch") > get("de-serializer"));
        assert!(get("de-serializer") > get("serializer"));
        assert!(get("serializer") > get("wire buffer"));
    }

    #[test]
    fn delay_check_is_consistent() {
        let d = delay_check();
        assert!((d.paper_analytic_mflits - 304.0).abs() < 10.0);
        // Simulation and our analytic models agree within 35 %.
        let ratio = d.simulated_mflits / d.our_analytic_mflits;
        assert!(
            (0.65..=1.35).contains(&ratio),
            "I3 sim {} vs analytic {}",
            d.simulated_mflits,
            d.our_analytic_mflits
        );
        let ratio2 = d.i2_simulated_mflits / d.i2_analytic_mflits;
        assert!(
            (0.65..=1.35).contains(&ratio2),
            "I2 sim {} vs analytic {}",
            d.i2_simulated_mflits,
            d.i2_analytic_mflits
        );
    }
}
