//! # sal-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§V), each
//! returning structured rows so binaries can print them, tests can
//! assert the paper's qualitative claims, and Criterion benches can
//! time them. The binaries under `src/bin/` regenerate:
//!
//! | Target | Paper artifact |
//! |--------|----------------|
//! | `fig10` | Bandwidth vs. number of wires |
//! | `fig11` | Wiring area vs. wire length |
//! | `fig12` | Power vs. buffers @ 100 MHz |
//! | `fig13` | Power vs. buffers @ 300 MHz |
//! | `fig14` | Per-block power breakdown @ 50 % usage |
//! | `table1` | Link area overhead |
//! | `table2` | I2 block area breakdown |
//! | `delay_check` | §V per-word delay equation validation |
//! | `headline` | The abstract's 75 % wires / 65 % power / 20 % area claims |
//! | `noc_study` | Mesh-level latency/throughput with each link (extension) |
//! | `experiments` | All of the above, in order |
//! | `ablations` | Early-ack / slice-width / receiver-style / corner studies |
//! | `margins` | Timing-margin / fault-injection sweep (robustness extension) |
//! | `recovery` | Link-level error detection & retransmission chaos soak |
//! | `flows` | End-to-end flows over lossy mesh channels (goodput-collapse curves) |
//! | `compile` | Compiled-engine equivalence + bit-sliced seed campaigns |
//! | `pareto` | Design-space sweep over the `LinkSpec` lattice (extension) |
//! | `reroute` | Fault-tolerant routing vs link failure (reconfiguration extension) |

#![forbid(unsafe_code)]

pub mod ablations;
pub mod compile_report;
pub mod experiments;
pub mod flows;
pub mod pareto;
pub mod recovery;
pub mod reroute;
pub mod robustness;
pub mod sliced;
pub mod sweep;
pub mod table;
