//! Parallel sweep harness: fans independent simulator-per-config runs
//! across scoped worker threads.
//!
//! Every experiment in this crate is a sweep of *independent*
//! configurations — each point builds its own [`sal_des::Simulator`]
//! (or NoC [`sal_noc::Network`]), runs it, and reduces to a result
//! row. No state is shared between points, so the sweep parallelises
//! trivially: [`parallel_map`] claims configurations from a shared
//! work list and writes each result into the slot of its *input*
//! index, making the output order — and therefore every downstream
//! table — identical to the sequential run regardless of which worker
//! finishes first.
//!
//! Worker panics are surfaced as a [`SweepError`] after all other
//! workers drain the remaining work; a poisoned run can never hang or
//! silently drop rows.

use std::sync::Mutex;

/// Error returned when a sweep worker panicked.
#[derive(Debug)]
pub struct SweepError {
    /// Panic payload of the first worker that died, as text.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep worker panicked: {}", self.message)
    }
}

impl std::error::Error for SweepError {}

/// Worker-thread count: the `SAL_SWEEP_THREADS` environment variable
/// if set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn thread_count() -> usize {
    if let Some(n) = std::env::var("SAL_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// returning the results in input order.
///
/// # Errors
///
/// Returns [`SweepError`] if any worker panicked. The surviving
/// workers finish the remaining items first, so the error path joins
/// every thread — it cannot hang.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>, SweepError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, thread_count(), f)
}

/// [`parallel_map`] with an explicit worker count (exposed for tests;
/// experiments should use [`parallel_map`]).
pub fn parallel_map_with<T, R, F>(
    items: Vec<T>,
    workers: usize,
    f: F,
) -> Result<Vec<R>, SweepError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return Ok(items.into_iter().map(f).collect());
    }
    let workers = workers.min(n);
    // Work list and result slots. Items are *taken* from the back of
    // the list (cheap pop) — claim order is irrelevant because each
    // result lands in the slot of its original index.
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let first_panic = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| loop {
                    // Hold the lock only for the pop: the simulation
                    // itself runs unlocked, so workers overlap fully
                    // and a panic inside `f` cannot poison the list.
                    let claimed = work.lock().expect("work list poisoned").pop();
                    match claimed {
                        Some((idx, item)) => {
                            let out = f(item);
                            results.lock().expect("result list poisoned")[idx] = Some(out);
                        }
                        None => break,
                    }
                })
            })
            .collect();
        let mut panic_msg: Option<String> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                // `&*` reaches the payload inside the box — `&payload`
                // would unsize-coerce the `Box` itself to `&dyn Any`
                // and every downcast would miss.
                panic_msg.get_or_insert_with(|| panic_text(&*payload));
            }
        }
        panic_msg
    })
    .expect("all workers joined above");
    if let Some(message) = first_panic {
        return Err(SweepError { message });
    }
    let slots = results.into_inner().expect("result list poisoned");
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("no panic, so every slot was filled"))
        .collect())
}

/// Renders a panic payload (`&str` or `String` in practice) as text.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`parallel_map`] for infallible experiment sweeps: propagates a
/// worker panic as a panic in the caller (matching the behaviour the
/// sequential loop had), instead of burdening every figure function
/// with a `Result`.
pub fn sweep_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match parallel_map(items, f) {
        Ok(rows) => rows,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_keep_input_order_despite_scheduling() {
        // Early items sleep longest, so with 4 workers the completion
        // order is roughly reversed — the output must not be.
        let items: Vec<usize> = (0..32).collect();
        let out = parallel_map_with(items, 4, |i| {
            std::thread::sleep(Duration::from_micros(((32 - i) * 50) as u64));
            i * 10
        })
        .unwrap();
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: u64| i.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq = parallel_map_with((0..100).collect(), 1, f).unwrap();
        let par = parallel_map_with((0..100).collect(), 8, f).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        let done = AtomicUsize::new(0);
        let err = parallel_map_with((0..16).collect::<Vec<usize>>(), 4, |i| {
            assert!(i != 3, "boom at {i}");
            done.fetch_add(1, Ordering::Relaxed);
            i
        })
        .unwrap_err();
        assert!(err.message.contains("boom at 3"), "got: {}", err.message);
        // The surviving workers drained the rest of the sweep.
        assert_eq!(done.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn single_worker_and_empty_inputs() {
        assert_eq!(parallel_map_with(Vec::<u8>::new(), 4, |x| x).unwrap(), Vec::<u8>::new());
        assert_eq!(parallel_map_with(vec![7], 4, |x: u8| x + 1).unwrap(), vec![8]);
        assert_eq!(parallel_map_with(vec![1, 2, 3], 1, |x: u8| x * 2).unwrap(), vec![2, 4, 6]);
    }

    #[test]
    fn thread_count_env_override() {
        // Not a parallel test of the env var itself (process-global),
        // just the parse contract: garbage and zero fall back.
        assert!(thread_count() >= 1);
    }
}
