//! Chaos-soak recovery campaign (`--bin recovery`).
//!
//! The protection layer's claim is falsifiable: under a storm of
//! seeded transient glitches on the serialized data wires, a
//! CRC-protected link must deliver every word intact (retries
//! allowed), while the unprotected link demonstrably corrupts. This
//! module runs that claim as a campaign — every cell of
//! {I2, I3} × {off, parity, crc} × storm seed — through
//! [`sweep::parallel_map`], classifies each run against the
//! scoreboard and the recovery counters, and reports:
//!
//! * per-cell outcomes (`recovered`, `untouched`, `undetected`,
//!   `deadlock`) with the recovery counters and a word-delivery
//!   latency histogram whose log-bucket tail makes retry episodes
//!   visible;
//! * for any *protected* cell that fails, a greedily shrunk minimal
//!   storm — the smallest glitch subset that still reproduces the
//!   failure, ready to paste into a regression test;
//! * the protection energy tax: total link power of the parity and
//!   CRC variants against the unprotected baseline on a clean run.
//!
//! Storm widths stay below the slice cadence on purpose: a wider
//! upset can cancel a word's *only* data transition and replay the
//! previous (self-consistently coded) word wholesale, which no
//! word-local check can catch — that residual class is exactly what
//! the `undetected` bucket exists to count, and the parity rows
//! demonstrate a milder version of it (a stale slice is parity-valid,
//! so slice replacement slips past parity but not past the CRC).

use sal_des::{FaultPlan, Time};
use sal_link::measure::{run_spec, MeasureOptions, RunFailure};
use sal_link::metrics::Histogram;
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec, ProtectionMode, RecoveryCounts};

use crate::sweep;

/// Link families the campaign exercises (the storms target the
/// serialized wire, so the parallel I1 is out of scope).
pub const FAMILIES: [LinkFamily; 2] = [LinkFamily::PerTransfer, LinkFamily::PerWord];

/// Protection modes per family.
pub const MODES: [ProtectionMode; 3] =
    [ProtectionMode::Off, ProtectionMode::Parity, ProtectionMode::Crc8];

/// Storm seeds (determinism is part of the artifact's contract).
pub const STORM_SEEDS: [u64; 4] = [11, 23, 37, 41];

/// Words per soak run.
pub const SOAK_WORDS: usize = 16;

/// Glitches per storm.
pub const STORM_GLITCHES: usize = 6;

/// One transient glitch of a storm, kept as plain numbers so a
/// shrunk repro can be printed and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Glitch {
    /// Data segment index (`link.wire.seg_d{seg}`).
    pub seg: u8,
    /// Upset start, picoseconds.
    pub at_ps: u64,
    /// Upset width, picoseconds.
    pub width_ps: u64,
    /// Flipped wire bit.
    pub bit: u8,
}

impl Glitch {
    fn apply(self, plan: FaultPlan) -> FaultPlan {
        plan.glitch(
            &format!("link.wire.seg_d{}", self.seg),
            Time::from_ps(self.at_ps),
            Time::from_ps(self.width_ps),
            1u64 << self.bit,
        )
    }
}

/// Deterministic xorshift64* stream for storm synthesis.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Synthesizes the seeded storm: [`STORM_GLITCHES`] single-bit upsets
/// spread across the pattern's in-use window (one word launch per
/// 10 ns switch period), widths between 150 ps and 350 ps — under the
/// ~370 ps (I2) / ~280 ps (I3) slice cadence, so each upset corrupts
/// at most one latched slice.
pub fn storm(seed: u64) -> Vec<Glitch> {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let window_ps = 10_000 * SOAK_WORDS as u64;
    (0..STORM_GLITCHES)
        .map(|_| Glitch {
            seg: rng.below(5) as u8,
            at_ps: 20_000 + rng.below(window_ps),
            width_ps: 150 + rng.below(200),
            bit: rng.below(8) as u8,
        })
        .collect()
}

fn plan_of(glitches: &[Glitch], seed: u64) -> FaultPlan {
    glitches.iter().fold(FaultPlan::new(seed), |p, &g| g.apply(p))
}

/// How one soak cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Soak {
    /// Clean delivery with at least one recovery episode — the storm
    /// hit and the protection healed it.
    Recovered,
    /// Clean delivery with no recovery activity (every glitch fell
    /// between latch windows). Honest but unexciting.
    Untouched,
    /// The run completed with scoreboard violations the link did not
    /// flag — corruption slipped through.
    Undetected {
        /// Total integrity violations.
        violations: usize,
    },
    /// The link never finished: a glitch wedged the protocol beyond
    /// what retry/resync could heal.
    ResidualDeadlock {
        /// Watchdog label of the first stalled handshake, if any.
        stalled: Option<String>,
    },
    /// The probe could not run at all.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Soak {
    /// Tag used in JSON and tables.
    pub fn tag(&self) -> &'static str {
        match self {
            Soak::Recovered => "recovered",
            Soak::Untouched => "untouched",
            Soak::Undetected { .. } => "undetected",
            Soak::ResidualDeadlock { .. } => "deadlock",
            Soak::Error { .. } => "error",
        }
    }

    /// A failure for a *protected* cell (for `off` every outcome is
    /// an accepted control result).
    pub fn is_failure(&self) -> bool {
        matches!(self, Soak::Undetected { .. } | Soak::ResidualDeadlock { .. } | Soak::Error { .. })
    }
}

/// One campaign cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Link under test.
    pub family: LinkFamily,
    /// Protection mode under test.
    pub protection: ProtectionMode,
    /// Storm seed.
    pub seed: u64,
    /// Outcome classification.
    pub outcome: Soak,
    /// Recovery counters (protected cells only).
    pub recovery: Option<RecoveryCounts>,
    /// Word-delivery latency (send accept → delivery), log-bucketed;
    /// retry episodes show up as the tail.
    pub latency: Histogram,
    /// For failing protected cells: the greedily shrunk minimal storm
    /// that still reproduces the failure.
    pub shrunk: Option<Vec<Glitch>>,
}

/// Clean-run (no storm) energy comparison of one protection mode.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Link measured.
    pub family: LinkFamily,
    /// Protection mode measured.
    pub protection: ProtectionMode,
    /// Total link power on the clean 16-word pattern, µW.
    pub total_uw: f64,
    /// Overhead over the unprotected link, percent (0 for `off`).
    pub overhead_pct: f64,
}

/// Everything `--bin recovery` reports.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// All campaign cells, in family-major, mode-middle, seed-minor
    /// order.
    pub cells: Vec<Cell>,
    /// The protection energy tax on a clean run.
    pub energy: Vec<EnergyRow>,
}

fn soak_words() -> Vec<u64> {
    worst_case_pattern(SOAK_WORDS, 32)
}

fn soak_opts(plan: FaultPlan) -> MeasureOptions {
    MeasureOptions {
        // ~50× the nominal in-use time of the 16-word pattern: enough
        // for every backoff ladder the controller can legally climb,
        // small enough that a residual deadlock is diagnosed quickly.
        timeout: Time::from_us(40),
        fault_plan: Some(plan),
        ..MeasureOptions::default()
    }
}

fn classify(
    family: LinkFamily,
    protection: ProtectionMode,
    glitches: &[Glitch],
    seed: u64,
    words: &[u64],
) -> (Soak, Option<RecoveryCounts>, Histogram) {
    let spec = LinkSpec::builder()
        .family(family)
        .protection(protection)
        .build()
        .expect("every campaign cell is a valid spec");
    match run_spec(&spec, &LinkConfig::default(), words, &soak_opts(plan_of(glitches, seed))) {
        Ok(r) => {
            let mut latency = Histogram::new();
            for ((t_in, _), (t_out, _)) in r.sent.iter().zip(&r.received) {
                latency.record(t_out.saturating_sub(*t_in));
            }
            let outcome = if r.integrity.is_clean() {
                match &r.recovery {
                    Some(rec) if !rec.is_quiet() => Soak::Recovered,
                    _ => Soak::Untouched,
                }
            } else {
                Soak::Undetected { violations: r.integrity.violations() }
            };
            (outcome, r.recovery, latency)
        }
        Err(RunFailure::Deadlock { diagnosis, recovery, .. }) => (
            Soak::ResidualDeadlock {
                stalled: diagnosis.and_then(|d| d.first_label().map(str::to_string)),
            },
            recovery,
            Histogram::new(),
        ),
        Err(e) => (Soak::Error { message: e.to_string() }, None, Histogram::new()),
    }
}

/// Greedy storm shrink: repeatedly try dropping each glitch; keep any
/// drop that still reproduces a failure, until no single drop does.
/// At most `O(n²)` replays for an `n`-glitch storm.
pub fn shrink(
    family: LinkFamily,
    protection: ProtectionMode,
    glitches: &[Glitch],
    seed: u64,
    words: &[u64],
) -> Vec<Glitch> {
    let mut current = glitches.to_vec();
    'outer: loop {
        for i in 0..current.len() {
            if current.len() == 1 {
                break 'outer;
            }
            let mut candidate = current.clone();
            candidate.remove(i);
            let (outcome, _, _) = classify(family, protection, &candidate, seed, words);
            if outcome.is_failure() {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Runs the full campaign plus the energy comparison. Deterministic:
/// all randomness flows from [`STORM_SEEDS`].
pub fn campaign() -> RecoveryReport {
    let words = soak_words();
    let mut items: Vec<(LinkFamily, ProtectionMode, u64)> = Vec::new();
    for family in FAMILIES {
        for protection in MODES {
            for seed in STORM_SEEDS {
                items.push((family, protection, seed));
            }
        }
    }
    let cells = sweep::parallel_map(items, |(family, protection, seed)| {
        let glitches = storm(seed);
        let (outcome, recovery, latency) = classify(family, protection, &glitches, seed, &words);
        let shrunk = (protection != ProtectionMode::Off && outcome.is_failure())
            .then(|| shrink(family, protection, &glitches, seed, &words));
        Cell { family, protection, seed, outcome, recovery, latency, shrunk }
    })
    .expect("a soak cell panicked");

    let energy = sweep::parallel_map(
        FAMILIES.iter().flat_map(|&f| MODES.map(|m| (f, m))).collect::<Vec<_>>(),
        |(family, protection)| {
            let spec = LinkSpec::builder()
                .family(family)
                .protection(protection)
                .build()
                .expect("every energy cell is a valid spec");
            let opts = MeasureOptions { timeout: Time::from_us(40), ..MeasureOptions::default() };
            let total_uw = run_spec(&spec, &LinkConfig::default(), &soak_words(), &opts)
                .map_or(f64::NAN, |r| r.total_power_uw());
            EnergyRow { family, protection, total_uw, overhead_pct: 0.0 }
        },
    )
    .expect("an energy probe panicked");
    let energy = with_overheads(energy);

    RecoveryReport { cells, energy }
}

fn with_overheads(mut rows: Vec<EnergyRow>) -> Vec<EnergyRow> {
    for family in FAMILIES {
        let base = rows
            .iter()
            .find(|r| r.family == family && r.protection == ProtectionMode::Off)
            .map(|r| r.total_uw);
        if let Some(base) = base {
            for r in rows.iter_mut().filter(|r| r.family == family) {
                r.overhead_pct = (r.total_uw / base - 1.0) * 100.0;
            }
        }
    }
    rows
}

/// Count of cells per `(family, protection)` with the given tag.
pub fn tally(cells: &[Cell], family: LinkFamily, protection: ProtectionMode, tag: &str) -> usize {
    cells
        .iter()
        .filter(|c| c.family == family && c.protection == protection && c.outcome.tag() == tag)
        .count()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn glitch_json(g: Glitch) -> String {
    format!(
        "{{\"seg\": {}, \"at_ps\": {}, \"width_ps\": {}, \"bit\": {}}}",
        g.seg, g.at_ps, g.width_ps, g.bit
    )
}

fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h.buckets().iter().map(|(lo, c)| format!("[{lo},{c}]")).collect();
    format!(
        "{{\"count\": {}, \"min_ns\": {:.3}, \"mean_ns\": {:.3}, \"max_ns\": {:.3}, \
         \"buckets_fs\": [{}]}}",
        h.count(),
        h.min_ns(),
        h.mean_ns(),
        h.max_ns(),
        buckets.join(",")
    )
}

fn recovery_json(rec: &RecoveryCounts) -> String {
    format!(
        "{{\"nacks\": {}, \"retries\": {}, \"timeouts\": {}, \"resyncs\": {}, \
         \"gave_up\": {}, \"degraded\": {}}}",
        rec.nacks, rec.retries, rec.timeouts, rec.resyncs, rec.gave_up, rec.degraded
    )
}

fn cell_json(c: &Cell) -> String {
    let detail = match &c.outcome {
        Soak::Undetected { violations } => format!(", \"violations\": {violations}"),
        Soak::ResidualDeadlock { stalled: Some(s) } => {
            format!(", \"stalled\": \"{}\"", json_escape(s))
        }
        Soak::ResidualDeadlock { stalled: None } => ", \"stalled\": null".to_string(),
        Soak::Error { message } => format!(", \"message\": \"{}\"", json_escape(message)),
        _ => String::new(),
    };
    let recovery = c
        .recovery
        .as_ref()
        .map_or_else(|| "null".to_string(), recovery_json);
    let shrunk = c.shrunk.as_ref().map_or_else(
        || "null".to_string(),
        |gs| format!("[{}]", gs.iter().map(|&g| glitch_json(g)).collect::<Vec<_>>().join(", ")),
    );
    format!(
        "{{\"kind\": \"{}\", \"protection\": \"{}\", \"seed\": {}, \"outcome\": \"{}\"{detail}, \
         \"recovery\": {recovery}, \"latency\": {}, \"shrunk_storm\": {shrunk}}}",
        c.family.label(),
        c.protection.label(),
        c.seed,
        c.outcome.tag(),
        histogram_json(&c.latency)
    )
}

/// Serialises the report as the `BENCH_recovery.json` artifact
/// (hand-rolled: the vendored serde is a no-op stub).
pub fn to_json(r: &RecoveryReport) -> String {
    let cells: Vec<String> = r.cells.iter().map(cell_json).collect();
    let mut summary = Vec::new();
    for family in FAMILIES {
        let mut modes = Vec::new();
        for protection in MODES {
            let counts: Vec<String> = ["recovered", "untouched", "undetected", "deadlock", "error"]
                .iter()
                .map(|tag| format!("\"{tag}\": {}", tally(&r.cells, family, protection, tag)))
                .collect();
            modes.push(format!("\"{}\": {{{}}}", protection.label(), counts.join(", ")));
        }
        summary.push(format!("    \"{}\": {{{}}}", family.label(), modes.join(", ")));
    }
    let energy: Vec<String> = r
        .energy
        .iter()
        .map(|e| {
            format!(
                "    {{\"kind\": \"{}\", \"protection\": \"{}\", \"total_uw\": {:.3}, \
                 \"overhead_pct\": {:.2}}}",
                e.family.label(),
                e.protection.label(),
                e.total_uw,
                e.overhead_pct
            )
        })
        .collect();
    let seeds: Vec<String> = STORM_SEEDS.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"experiment\": \"recovery\",\n  \"words\": {},\n  \"storm\": {{\"glitches\": {}, \
         \"width_ps\": [150, 350], \"seeds\": [{}]}},\n  \"summary\": {{\n{}\n  }},\n  \
         \"energy\": [\n{}\n  ],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        SOAK_WORDS,
        STORM_GLITCHES,
        seeds.join(", "),
        summary.join(",\n"),
        energy.join(",\n"),
        cells.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_are_deterministic_and_in_spec() {
        assert_eq!(storm(11), storm(11), "same seed, same storm");
        assert_ne!(storm(11), storm(23), "different seeds differ");
        for g in storm(37) {
            assert!(g.seg < 5, "segment {} out of range", g.seg);
            assert!((150..350).contains(&g.width_ps), "width {} out of spec", g.width_ps);
            assert!(g.bit < 8, "bit {} out of range", g.bit);
            assert!(g.at_ps >= 20_000, "upset {} before traffic", g.at_ps);
        }
    }

    #[test]
    fn crc_cells_never_pass_corruption_through() {
        // The acceptance criterion, in miniature: one storm seed,
        // both kinds, CRC protection — zero undetected corruptions
        // and every word delivered.
        let words = soak_words();
        for family in FAMILIES {
            let glitches = storm(11);
            let (outcome, _, latency) =
                classify(family, ProtectionMode::Crc8, &glitches, 11, &words);
            assert!(
                matches!(outcome, Soak::Recovered | Soak::Untouched),
                "{family:?} under seed-11 storm: {outcome:?}"
            );
            assert_eq!(latency.count(), SOAK_WORDS as u64, "every word delivered");
        }
    }

    #[test]
    fn shrink_finds_a_minimal_failing_storm() {
        // Shrink against the *unprotected* link (cheap, reliably
        // failing): the result must still fail and be at most the
        // original size.
        let words = soak_words();
        let full = storm(23);
        let (outcome, _, _) = classify(LinkFamily::PerTransfer, ProtectionMode::Off, &full, 23, &words);
        if !outcome.is_failure() {
            // The control cell happening to pass is possible in
            // principle; the campaign would report it as untouched.
            return;
        }
        let minimal = shrink(LinkFamily::PerTransfer, ProtectionMode::Off, &full, 23, &words);
        assert!(!minimal.is_empty() && minimal.len() <= full.len());
        let (still, _, _) =
            classify(LinkFamily::PerTransfer, ProtectionMode::Off, &minimal, 23, &words);
        assert!(still.is_failure(), "shrunk storm must still reproduce: {still:?}");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = RecoveryReport {
            cells: vec![Cell {
                family: LinkFamily::PerTransfer,
                protection: ProtectionMode::Crc8,
                seed: 11,
                outcome: Soak::Recovered,
                recovery: Some(RecoveryCounts { nacks: 1, retries: 1, ..RecoveryCounts::default() }),
                latency: Histogram::new(),
                shrunk: None,
            }],
            energy: vec![EnergyRow {
                family: LinkFamily::PerTransfer,
                protection: ProtectionMode::Off,
                total_uw: 123.4,
                overhead_pct: 0.0,
            }],
        };
        let j = to_json(&r);
        assert!(j.contains("\"outcome\": \"recovered\""), "{j}");
        assert!(j.contains("\"nacks\": 1"), "{j}");
        assert!(j.contains("\"I2\": {\"off\":"), "{j}");
        assert!(j.contains("\"overhead_pct\": 0.00"), "{j}");
    }
}
