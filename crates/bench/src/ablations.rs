//! Ablation studies of the design choices DESIGN.md calls out:
//! early word acknowledgement (the paper's stated future work), slice
//! width, receiver datapath style, and technology corners.

use sal_des::Time;
use sal_link::measure::{run_spec, MeasureOptions};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec, WordRxStyle};
use sal_tech::{Corner, St012Library};

use crate::sweep::sweep_map;

/// Early-ack ablation row: saturation throughput of I3 with and
/// without the early word acknowledgement, per buffer count.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EarlyAckRow {
    /// Wire buffer stations.
    pub buffers: u32,
    /// Baseline I3 saturation, MFlit/s.
    pub baseline_mflits: f64,
    /// Early-ack I3 saturation, MFlit/s.
    pub early_mflits: f64,
}

fn saturation(cfg: &LinkConfig) -> f64 {
    // Overdrive with a 1 GHz switch clock; the link throttles to its
    // self-timed rate.
    let fast = LinkConfig { clk_period: Time::from_ps(1000), ..cfg.clone() };
    let spec = LinkSpec::from_config(LinkFamily::PerWord, &fast)
        .expect("every ablation point is a valid spec");
    let words: Vec<u64> = (0..24).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect();
    let run = run_spec(&spec, &fast, &words, &MeasureOptions::default()).expect("clean run");
    assert_eq!(run.received.len(), words.len(), "saturation run incomplete");
    run.throughput_mflits()
}

/// The paper's future-work claim, quantified: "further improvements to
/// the upper bound throughput could be achieved by earlier
/// acknowledging".
pub fn early_ack() -> Vec<EarlyAckRow> {
    sweep_map(vec![2u32, 4, 8], |buffers| {
        let base = LinkConfig { buffers, ..LinkConfig::default() };
        let early = LinkConfig { early_word_ack: true, ..base.clone() };
        EarlyAckRow {
            buffers,
            baseline_mflits: saturation(&base),
            early_mflits: saturation(&early),
        }
    })
}

/// Slice-width ablation row (§III: "the circuit can easily be modified
/// to serialize less … by decreasing the number of David-Cells").
#[derive(Debug, Clone, serde::Serialize)]
pub struct SliceRow {
    /// Serial slice width, bits.
    pub slice_width: u8,
    /// Link wires (data + strobe + acknowledge).
    pub wires: u32,
    /// I3 saturation throughput, MFlit/s.
    pub saturation_mflits: f64,
    /// I3 power at 100 MHz, 4 buffers, 50 % usage, µW.
    pub power_uw: f64,
}

/// Wires vs. throughput vs. power across serialization factors
/// (serial ratios 2:1, 4:1 and 8:1 over the 32-bit paper word).
pub fn slice_width() -> Vec<SliceRow> {
    sweep_map(vec![2u8, 4, 8], |ratio| {
        let spec = LinkSpec::builder()
            .family(LinkFamily::PerWord)
            .serial_ratio(ratio)
            .build()
            .expect("the ratio sweep stays inside the validated lattice");
        let cfg = spec.apply(&LinkConfig::default());
        let power = run_spec(
            &spec,
            &LinkConfig::default(),
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        ).expect("clean run")
        .total_power_uw();
        SliceRow {
            slice_width: spec.slice_width(),
            wires: spec.wires(),
            saturation_mflits: saturation(&cfg),
            power_uw: power,
        }
    })
}

/// Receiver-style ablation row: shift register vs. demux (the paper's
/// Fig 14 discussion).
#[derive(Debug, Clone, serde::Serialize)]
pub struct RxStyleRow {
    /// Receiver datapath style.
    pub style: WordRxStyle,
    /// Deserializer block power at 100 MHz, 4 buffers, µW.
    pub des_power_uw: f64,
    /// Whole-link power, µW.
    pub total_power_uw: f64,
}

/// The shift register latches every stage on every strobe; the demux
/// latches one. The paper: "all four registers are being latched every
/// time a slice of the flit arrives opposed to just one register".
pub fn rx_style() -> Vec<RxStyleRow> {
    sweep_map(vec![WordRxStyle::ShiftRegister, WordRxStyle::Demux], |style| {
        let cfg = LinkConfig { word_rx_style: style, ..LinkConfig::default() };
        let run = run_spec(
            &LinkSpec::paper(LinkFamily::PerWord),
            &cfg,
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        ).expect("clean run");
        RxStyleRow {
            style,
            des_power_uw: run.sim_power_uw("link.des"),
            total_power_uw: run.total_power_uw(),
        }
    })
}

/// Technology-corner ablation row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CornerRow {
    /// The process corner.
    pub corner: Corner,
    /// I3 saturation throughput at that corner, MFlit/s.
    pub i3_saturation_mflits: f64,
    /// I1 throughput at a 300 MHz clock (fixed by the clock, provided
    /// the corner closes timing), MFlit/s.
    pub i1_mflits: f64,
}

/// Self-timed links track the silicon: faster corners run faster,
/// slower corners run slower — while the synchronous link is pinned to
/// its clock at every corner.
pub fn corners() -> Vec<CornerRow> {
    sweep_map(vec![Corner::Fast, Corner::Typical, Corner::Slow], |corner| {
        let lib = St012Library::at_corner(corner);
        let opts = MeasureOptions { lib: lib.clone(), ..MeasureOptions::default() };
        let fast_cfg = LinkConfig {
            clk_period: Time::from_ps(1000),
            ..LinkConfig::default()
        };
        let words: Vec<u64> = (0..24).map(|i| (i * 0x0F1E_2D3C) & 0xFFFF_FFFF).collect();
        let i3 = run_spec(&LinkSpec::paper(LinkFamily::PerWord), &fast_cfg, &words, &opts)
            .expect("clean run")
            .throughput_mflits();
        let sync_cfg = LinkConfig {
            clk_period: Time::from_ns_f64(10.0 / 3.0),
            ..LinkConfig::default()
        };
        let i1 = run_spec(&LinkSpec::paper(LinkFamily::Sync), &sync_cfg, &words, &opts)
            .expect("clean run")
            .throughput_mflits();
        CornerRow { corner, i3_saturation_mflits: i3, i1_mflits: i1 }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_ack_raises_the_upper_bound() {
        for row in early_ack() {
            assert!(
                row.early_mflits > row.baseline_mflits * 1.02,
                "{} buffers: early {:.0} vs baseline {:.0}",
                row.buffers,
                row.early_mflits,
                row.baseline_mflits
            );
        }
    }

    #[test]
    fn wider_slices_run_faster_but_cost_wires() {
        let rows = slice_width();
        // Rows are ordered 16, 8, 4 bits.
        assert!(rows[0].wires > rows[1].wires);
        assert!(rows[1].wires > rows[2].wires);
        assert!(
            rows[0].saturation_mflits > rows[2].saturation_mflits,
            "16-bit slices {:.0} should beat 4-bit {:.0}",
            rows[0].saturation_mflits,
            rows[2].saturation_mflits
        );
    }

    #[test]
    fn demux_receiver_burns_less_in_the_deserializer() {
        let rows = rx_style();
        let shift = &rows[0];
        let demux = &rows[1];
        assert!(
            demux.des_power_uw < shift.des_power_uw,
            "demux {:.1} µW should undercut shift {:.1} µW",
            demux.des_power_uw,
            shift.des_power_uw
        );
    }

    #[test]
    fn self_timed_links_track_the_corner() {
        let rows = corners();
        let fast = &rows[0];
        let slow = &rows[2];
        assert!(fast.i3_saturation_mflits > slow.i3_saturation_mflits * 1.2);
        // The synchronous link is clock-bound at every corner.
        for r in &rows {
            assert!((r.i1_mflits - 300.0).abs() < 15.0, "I1 {}", r.i1_mflits);
        }
    }
}
