//! Fault-tolerant-routing chaos campaign (`--bin reroute`).
//!
//! The reconfiguration layer's claim is falsifiable: when links die
//! permanently, adaptive routing must recompute around them and the
//! flows must still complete with exactly-once delivery, while static
//! XY on the *same* failure schedule livelocks and the watchdog names
//! the starved flows. This module runs that claim as a campaign over
//! {failure scenario} × {flow layout} × {routing mode} × {seed}:
//!
//! * `single` — one scheduled physical-link kill mid-run, placed on a
//!   link the layout's XY routes depend on.
//! * `multi`  — three staggered kills cutting three of the four
//!   column-1/2 row crossings (the mesh stays connected).
//! * `storm`  — the flow campaign's four link-killer cells verbatim
//!   (bursty 10 % storm, CRC-8, permanent failure after two resyncs):
//!   the cells that livelock under XY must complete under rerouting.
//!   A storm can sever part of the fabric outright (e.g. kill both
//!   inbound channels of a node); those cells exercise the
//!   last-resort deep retrain, reported per cell as
//!   `retrained_links`.
//!
//! The headline is the goodput-vs-failed-links curve per routing mode,
//! plus the reconfiguration story per cell: epochs, injection-freeze
//! cycles, stranded/salvaged packet counts. Everything is seeded and
//! the JSON is bytewise deterministic — CI runs the `--quick` subset
//! and diffs `BENCH_reroute.json` against a committed fixture.

use sal_noc::{
    ChannelFaults, ChannelProtection, Direction, FlowConfig, FlowNetReport, LinkKill, LinkModel,
    Mesh, Network, NetworkConfig, NodeId, RoutingMode, WatchdogConfig,
};

use crate::flows::{cell_process, layout_flows, FLOW_PACKETS, LAYOUTS, MAX_CYCLES, SEEDS};
use crate::sweep;

/// Failure scenarios (see the module docs).
pub const SCENARIOS: [&str; 3] = ["single", "multi", "storm"];

/// Routing modes compared on every scenario.
pub const MODES: [&str; 2] = ["xy", "adaptive"];

/// One campaign cell's coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Failure scenario (see [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Flow layout name (shared with the flow campaign).
    pub layout: &'static str,
    /// Routing mode label (see [`MODES`]).
    pub mode: &'static str,
    /// Network seed.
    pub seed: u64,
}

/// One finished campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RerouteCell {
    /// Coordinates.
    pub spec: CellSpec,
    /// The full flow-mode run report.
    pub report: FlowNetReport,
}

impl RerouteCell {
    /// Outcome tag: `completed`, `livelocked`, or
    /// `progressing_at_cutoff`.
    pub fn outcome(&self) -> &'static str {
        if self.report.completed {
            "completed"
        } else if self.report.livelocked {
            "livelocked"
        } else {
            "progressing_at_cutoff"
        }
    }

    /// Aggregate goodput, payload packets per cycle summed over flows.
    pub fn agg_goodput(&self) -> f64 {
        self.report.flows.iter().map(|f| f.goodput_ppc).sum()
    }

    /// Fraction of offered payloads delivered in order.
    pub fn delivered_frac(&self) -> f64 {
        let delivered: u64 = self.report.flows.iter().map(|f| f.delivered).sum();
        let offered: u64 = self.report.flows.iter().map(|f| f.spec.packets).sum();
        delivered as f64 / offered as f64
    }

    /// Corrupted payloads accepted — must stay zero.
    pub fn accepted_corrupt(&self) -> u64 {
        self.report.flows.iter().map(|f| f.counts.accepted_corrupt).sum()
    }

    /// Payloads delivered twice — must stay zero.
    pub fn dup_delivered(&self) -> u64 {
        self.report.flows.iter().map(|f| f.counts.dup_delivered).sum()
    }

    /// A hard livelock whose final report names no starved flow.
    pub fn unnamed_livelock(&self) -> bool {
        self.report.livelocked
            && !self.report.stalls.last().is_some_and(|s| s.hard && !s.starved.is_empty())
    }

    /// Cycles injection spent frozen across reconfiguration epochs.
    pub fn frozen_cycles(&self) -> u64 {
        match mode_of(self.spec.mode) {
            RoutingMode::Adaptive { reconfig_pause } => {
                self.report.net.reconfig_epochs * u64::from(reconfig_pause)
            }
            RoutingMode::XyStatic => 0,
        }
    }
}

/// The routing mode behind a label.
pub fn mode_of(mode: &str) -> RoutingMode {
    match mode {
        "xy" => RoutingMode::XyStatic,
        "adaptive" => RoutingMode::adaptive(),
        other => panic!("unknown mode {other}"),
    }
}

/// The scheduled kills of a scenario. `single` targets the one link
/// the layout's XY routes funnel through; `multi` cuts three of the
/// four east–west crossings between columns 1 and 2 in waves.
pub fn scenario_kills(scenario: &str, layout: &str) -> Vec<LinkKill> {
    let mesh = Mesh::new(4, 4);
    match scenario {
        // Clean corner flows finish near cycle 955; kills must land
        // well inside the run.
        "single" => match layout {
            // Row-0 link 1<->2: XY paths of flows 0->15 and 3->12.
            "corners" => LinkKill::both_ways(&mesh, 200, NodeId(1), Direction::East).to_vec(),
            // Column link 1<->5: the last XY hop of flows 0->5, 3->5.
            "hotspot" => LinkKill::both_ways(&mesh, 200, NodeId(1), Direction::South).to_vec(),
            other => panic!("unknown layout {other}"),
        },
        "multi" => {
            let mut kills = Vec::new();
            for (cycle, row_node) in [(150, 1u16), (300, 5), (450, 9)] {
                kills.extend(LinkKill::both_ways(&mesh, cycle, NodeId(row_node), Direction::East));
            }
            kills
        }
        "storm" => Vec::new(),
        other => panic!("unknown scenario {other}"),
    }
}

fn cell_config(spec: CellSpec) -> (NetworkConfig, FlowConfig) {
    // `storm` reproduces the flow campaign's link-killer cells
    // exactly (bursty 10 % + CRC-8 + permanent failure after two
    // resyncs); the scheduled scenarios run clean links so the kill
    // placement is the only failure variable.
    let faults = (spec.scenario == "storm").then(|| {
        ChannelFaults::new(cell_process("bursty", 0.10), ChannelProtection::Crc8)
            .with_permanent_failure(2)
    });
    let cfg = NetworkConfig {
        mesh: Mesh::new(4, 4),
        link: LinkModel::ideal(),
        input_queue_flits: 8,
        packet_len_flits: 4,
        faults,
        routing: mode_of(spec.mode),
        link_kills: scenario_kills(spec.scenario, spec.layout),
    };
    let mut flows = FlowConfig::new(layout_flows(spec.layout));
    flows.watchdog = WatchdogConfig { interval: 4_096, hard_stall_checks: 8 };
    (cfg, flows)
}

/// Runs one cell.
pub fn run_cell(spec: CellSpec) -> RerouteCell {
    let (cfg, flows) = cell_config(spec);
    let mut net = Network::with_flows(cfg, &flows, spec.seed);
    RerouteCell { spec, report: net.run_flows(MAX_CYCLES) }
}

/// The full campaign grid: scenario × layout × mode × seed.
pub fn full_grid() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for scenario in SCENARIOS {
        for layout in LAYOUTS {
            for mode in MODES {
                for seed in SEEDS {
                    specs.push(CellSpec { scenario, layout, mode, seed });
                }
            }
        }
    }
    specs
}

/// The CI subset: every storm cell (the four link-killer cells of the
/// flow campaign under both modes — the PR's acceptance surface) plus
/// the first-seed single-kill cells.
pub fn quick_grid() -> Vec<CellSpec> {
    full_grid()
        .into_iter()
        .filter(|s| s.scenario == "storm" || (s.scenario == "single" && s.seed == SEEDS[0]))
        .collect()
}

/// Everything `--bin reroute` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RerouteReport {
    /// All cells, in grid order.
    pub cells: Vec<RerouteCell>,
}

/// Runs a grid. Deterministic: all randomness flows from the cell
/// seeds through per-channel derived streams.
pub fn campaign(grid: Vec<CellSpec>) -> RerouteReport {
    let cells = sweep::parallel_map(grid, run_cell).expect("a reroute cell panicked");
    RerouteReport { cells }
}

/// One point of the goodput-vs-failed-links curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveRow {
    /// Directed channels dead at the end of the run.
    pub failed_links: u64,
    /// Aggregate goodput averaged over the bucket's cells.
    pub goodput: f64,
    /// Delivered-payload fraction averaged over the bucket.
    pub delivered_frac: f64,
    /// Fraction of the bucket's cells that completed.
    pub completed_frac: f64,
    /// Cells in the bucket.
    pub cells: usize,
}

/// The goodput-vs-failed-links curve of one routing mode: cells
/// bucketed by how many directed channels ended up dead.
pub fn curve(cells: &[RerouteCell], mode: &str) -> Vec<CurveRow> {
    let mut buckets: Vec<u64> = cells
        .iter()
        .filter(|c| c.spec.mode == mode)
        .map(|c| c.report.net.recovery.failed_links)
        .collect();
    buckets.sort_unstable();
    buckets.dedup();
    buckets
        .into_iter()
        .map(|failed| {
            let slice: Vec<&RerouteCell> = cells
                .iter()
                .filter(|c| c.spec.mode == mode && c.report.net.recovery.failed_links == failed)
                .collect();
            let n = slice.len().max(1) as f64;
            CurveRow {
                failed_links: failed,
                goodput: slice.iter().map(|c| c.agg_goodput()).sum::<f64>() / n,
                delivered_frac: slice.iter().map(|c| c.delivered_frac()).sum::<f64>() / n,
                completed_frac: slice.iter().filter(|c| c.report.completed).count() as f64 / n,
                cells: slice.len(),
            }
        })
        .collect()
}

/// Asserts the campaign's acceptance surface; returns human-readable
/// violations instead of panicking so the binary can print them all.
pub fn violations(cells: &[RerouteCell]) -> Vec<String> {
    let mut v = Vec::new();
    for c in cells {
        let tag = format!(
            "{}/{}/{} seed {}",
            c.spec.scenario, c.spec.layout, c.spec.mode, c.spec.seed
        );
        if c.accepted_corrupt() > 0 {
            v.push(format!("{tag}: accepted corrupted payload"));
        }
        if c.dup_delivered() > 0 {
            v.push(format!("{tag}: duplicate delivery"));
        }
        if c.unnamed_livelock() {
            v.push(format!("{tag}: livelock without named victims"));
        }
        match c.spec.mode {
            // The tentpole claim: rerouting completes every scenario,
            // including the storm cells that livelock under XY.
            "adaptive" => {
                if !c.report.completed {
                    v.push(format!("{tag}: adaptive run did not complete ({})", c.outcome()));
                }
                if c.report.net.recovery.failed_links > 0 && c.report.net.reconfig_epochs == 0 {
                    v.push(format!("{tag}: links died but no reconfiguration epoch ran"));
                }
            }
            // The pinned baseline: scheduled kills starve XY flows and
            // the watchdog names them; the storm cells reproduce the
            // flow campaign's named livelocks.
            "xy" => {
                if !c.report.livelocked {
                    v.push(format!("{tag}: XY baseline should livelock, got {}", c.outcome()));
                }
                if c.report.net.reconfig_epochs != 0 {
                    v.push(format!("{tag}: XY must never reconfigure"));
                }
                if c.report.net.retrained_links != 0 {
                    v.push(format!("{tag}: XY must never retrain a link"));
                }
            }
            other => v.push(format!("{tag}: unknown mode {other}")),
        }
    }
    v
}

fn cell_json(c: &RerouteCell) -> String {
    let net = &c.report.net;
    let starved = c.report.stalls.last().map_or(0, |s| s.starved.len());
    format!(
        "{{\"scenario\": \"{}\", \"layout\": \"{}\", \"mode\": \"{}\", \"seed\": {}, \
         \"outcome\": \"{}\", \"cycles\": {}, \"agg_goodput\": {:.6}, \
         \"delivered_frac\": {:.4}, \"jain\": {:.4}, \"failed_links\": {}, \
         \"reconfig_epochs\": {}, \"retrained_links\": {}, \"frozen_cycles\": {}, \
         \"stranded_flits\": {}, \
         \"stranded_packets\": {}, \"salvaged_packets\": {}, \"residual_flits\": {}, \
         \"dup_delivered\": {}, \"accepted_corrupt\": {}, \"starved_named\": {}}}",
        c.spec.scenario,
        c.spec.layout,
        c.spec.mode,
        c.spec.seed,
        c.outcome(),
        c.report.cycles,
        c.agg_goodput(),
        c.delivered_frac(),
        c.report.jain,
        net.recovery.failed_links,
        net.reconfig_epochs,
        net.retrained_links,
        c.frozen_cycles(),
        net.stranded_flits,
        net.stranded_packets,
        net.salvaged_packets,
        net.residual_flits,
        c.dup_delivered(),
        c.accepted_corrupt(),
        starved,
    )
}

/// Serialises the report as the `BENCH_reroute.json` artifact
/// (hand-rolled: the vendored serde is a no-op stub).
pub fn to_json(r: &RerouteReport, quick: bool) -> String {
    let dup: u64 = r.cells.iter().map(RerouteCell::dup_delivered).sum();
    let corrupt: u64 = r.cells.iter().map(RerouteCell::accepted_corrupt).sum();
    let unnamed = r.cells.iter().filter(|c| c.unnamed_livelock()).count();
    let mut curves = Vec::new();
    for mode in MODES {
        let rows: Vec<String> = curve(&r.cells, mode)
            .iter()
            .map(|p| {
                format!(
                    "[{}, {:.6}, {:.4}, {:.2}, {}]",
                    p.failed_links, p.goodput, p.delivered_frac, p.completed_frac, p.cells
                )
            })
            .collect();
        curves.push(format!(
            "    {{\"mode\": \"{mode}\", \
             \"curve_failed_goodput_delivered_completed_cells\": [{}]}}",
            rows.join(", ")
        ));
    }
    let cells: Vec<String> = r.cells.iter().map(cell_json).collect();
    let seeds: Vec<String> = SEEDS.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"experiment\": \"reroute\",\n  \"grid\": \"{}\",\n  \
         \"flow_packets\": {},\n  \"max_cycles\": {},\n  \"seeds\": [{}],\n  \
         \"invariants\": {{\"accepted_corrupt\": {corrupt}, \"dup_delivered\": {dup}, \
         \"unnamed_livelocks\": {unnamed}, \"violations\": {}}},\n  \
         \"curves\": [\n{}\n  ],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        FLOW_PACKETS,
        MAX_CYCLES,
        seeds.join(", "),
        violations(&r.cells).len(),
        curves.join(",\n"),
        cells.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_cell(mode: &'static str) -> RerouteCell {
        run_cell(CellSpec { scenario: "single", layout: "corners", mode, seed: SEEDS[0] })
    }

    #[test]
    fn single_kill_completes_under_adaptive_and_livelocks_under_xy() {
        let adaptive = single_cell("adaptive");
        assert_eq!(adaptive.outcome(), "completed");
        assert!(adaptive.report.net.reconfig_epochs >= 1);
        assert_eq!(adaptive.report.net.recovery.failed_links, 2);
        assert_eq!(adaptive.dup_delivered(), 0);
        assert_eq!(adaptive.accepted_corrupt(), 0);

        let xy = single_cell("xy");
        assert_eq!(xy.outcome(), "livelocked");
        assert!(!xy.unnamed_livelock(), "livelock must name its victims");
        assert_eq!(xy.report.net.reconfig_epochs, 0);
        assert!(violations(&[adaptive, xy]).is_empty());
    }

    #[test]
    fn cells_are_deterministic() {
        let a = single_cell("adaptive");
        let b = single_cell("adaptive");
        assert_eq!(a, b);
        assert_eq!(cell_json(&a), cell_json(&b));
    }

    #[test]
    fn quick_grid_covers_the_acceptance_cells() {
        let quick = quick_grid();
        // All four storm cells per mode (the PR's acceptance surface).
        let storms =
            quick.iter().filter(|s| s.scenario == "storm" && s.mode == "adaptive").count();
        assert_eq!(storms, 4, "2 layouts x 2 seeds under adaptive");
        let xy_storms = quick.iter().filter(|s| s.scenario == "storm" && s.mode == "xy").count();
        assert_eq!(xy_storms, 4, "and their pinned XY baselines");
        assert!(quick.len() < full_grid().len());
    }

    #[test]
    fn json_shape_is_stable() {
        let cell = single_cell("adaptive");
        let r = RerouteReport { cells: vec![cell] };
        let j = to_json(&r, true);
        assert!(j.contains("\"experiment\": \"reroute\""), "{j}");
        assert!(j.contains("\"grid\": \"quick\""), "{j}");
        assert!(j.contains("\"outcome\": \"completed\""), "{j}");
        assert!(j.contains("\"curve_failed_goodput_delivered_completed_cells\""), "{j}");
    }
}
