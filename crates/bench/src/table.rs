//! Minimal fixed-width table printer for experiment output.

/// Renders rows of cells as an aligned text table with a header.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("long"));
        assert!(lines[2].ends_with("1     2"));
    }
}
