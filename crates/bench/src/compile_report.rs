//! Deterministic compiled-engine equivalence report (`--bin compile`).
//!
//! Runs a fixed set of workloads on both execution engines — the
//! interpreted event loop and the compiled netlist engine — and
//! records only integer facts: event/commit/cone counters and a
//! behavioral checksum. The engines must agree on every behavioral
//! field (`identical`); the cone counters document how much queue
//! traffic compilation absorbed. A sliced-campaign section pins the
//! per-seed divergence masks and the zero-mismatch fidelity count.
//!
//! Everything here is bytewise deterministic, so CI diffs the emitted
//! `BENCH_compile.json` against a committed fixture.

use sal_cells::{CircuitBuilder, UnitLibrary};
use sal_des::{Simulator, Time, Value};
use sal_link::measure::MeasureOptions;
use sal_link::testbench::{
    attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};

use crate::sliced;

/// Words streamed through each link workload.
pub const LINK_WORDS: usize = 64;

/// Storm seeds pinned in the sliced section: the golden storm (one
/// demoted lane), a fully converged quiet storm, and a fully demoted
/// mid-transition storm.
pub const SLICED_SEEDS: [u64; 3] = [73, 7, 3];

/// One engine's integer counters for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed through the global queue.
    pub events: u64,
    /// Committed signal value changes.
    pub commits: u64,
    /// Compiled cones built (0 interpreted).
    pub cones_built: u64,
    /// Compiled spec evaluations (0 interpreted).
    pub cone_evals: u64,
    /// Queue events absorbed by the compiled calendar (0 interpreted).
    pub events_avoided: u64,
    /// Workload-defined behavioral checksum (delivered words, final
    /// values) — must match between engines.
    pub checksum: u64,
}

/// One workload, both engines.
#[derive(Debug)]
pub struct WorkloadRow {
    /// Workload label.
    pub name: &'static str,
    /// Interpreted-engine counters.
    pub interpreted: EngineStats,
    /// Compiled-engine counters.
    pub compiled: EngineStats,
}

impl WorkloadRow {
    /// Whether the engines agreed on every behavioral field.
    pub fn identical(&self) -> bool {
        self.interpreted.commits == self.compiled.commits
            && self.interpreted.checksum == self.compiled.checksum
    }
}

/// One pinned storm of the sliced-campaign section.
#[derive(Debug)]
pub struct SlicedRow {
    /// Storm seed.
    pub seed: u64,
    /// Lanes packed.
    pub lanes: u8,
    /// Divergence mask after `slice_seal`.
    pub diverged: u64,
    /// Lanes whose delivered series differs from the clean control.
    pub distinct_from_control: u32,
    /// Lanes whose series differs from scalar ground truth (must be 0).
    pub mismatched: u32,
}

/// The full report.
#[derive(Debug)]
pub struct CompileReport {
    /// Engine-equivalence rows.
    pub workloads: Vec<WorkloadRow>,
    /// Sliced-campaign rows.
    pub sliced: Vec<SlicedRow>,
}

fn ring_stats(compiled: bool) -> EngineStats {
    let mut sim = Simulator::new();
    let lib = UnitLibrary;
    let mut builder = CircuitBuilder::new(&mut sim, &lib);
    let en = builder.input("en", 1);
    let osc = builder.ring_oscillator_stages("ro", en, 9);
    builder.finish();
    if compiled {
        sim.compile();
    }
    sim.stimulus(en, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
    sim.run_until(Time::from_ns(100)).unwrap();
    let p = sim.profile();
    EngineStats {
        events: p.events,
        commits: p.commits,
        cones_built: p.cones_built,
        cone_evals: p.cone_evals,
        events_avoided: p.events_avoided,
        checksum: sim.toggles(osc),
    }
}

fn link_stats(family: LinkFamily, compiled: bool) -> EngineStats {
    let cfg = LinkConfig::default();
    let opts = MeasureOptions::default();
    let words: Vec<u64> =
        (0..LINK_WORDS as u64).map(|i| i.wrapping_mul(0x9e37_79b9) & 0xffff_ffff).collect();
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let handles = generate(&mut builder, &LinkSpec::paper(family), "link", &cfg).expect("link builds");
    builder.finish();
    if compiled {
        sim.compile();
    }
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
    );
    let (src, _sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words.clone(),
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(&mut sim, "tb_src", src, Time::ZERO);
    let (snk, received) =
        SyncFlitSink::new(handles.clk, handles.valid_out, handles.flit_out, handles.stall_in);
    attach_sync_sink(&mut sim, "tb_snk", snk, Time::ZERO);
    let slice = cfg.clk_period * 32;
    while received.borrow().len() < words.len() {
        sim.run_for(slice).expect("link run completes");
    }
    let p = sim.profile();
    // Fold delivery times as well as payloads: the engines must agree
    // on *when* each word arrived, not just on its bits.
    let checksum = received
        .borrow()
        .iter()
        .fold(received.borrow().len() as u64, |acc, (t, w)| {
            acc.rotate_left(7) ^ w ^ t.as_fs().rotate_left(32)
        });
    EngineStats {
        events: p.events,
        commits: p.commits,
        cones_built: p.cones_built,
        cone_evals: p.cone_evals,
        events_avoided: p.events_avoided,
        checksum,
    }
}

fn sliced_row(seed: u64, lanes: u8) -> SlicedRow {
    let r = sliced::sliced_campaign(seed, lanes);
    let mismatched = (0..lanes)
        .filter(|&k| r.flit_series[k as usize] != sliced::scalar_run(seed, k, lanes))
        .count() as u32;
    let distinct = (1..lanes as usize)
        .filter(|&k| r.flit_series[k] != r.flit_series[0])
        .count() as u32;
    SlicedRow { seed, lanes, diverged: r.diverged, distinct_from_control: distinct, mismatched }
}

/// Builds the full report (runs every workload on both engines and
/// every pinned storm).
pub fn report() -> CompileReport {
    let mut workloads = Vec::new();
    workloads.push(WorkloadRow {
        name: "ring_oscillator_100ns",
        interpreted: ring_stats(false),
        compiled: ring_stats(true),
    });
    for (name, family) in [
        ("i1_sync_64_words", LinkFamily::Sync),
        ("i2_per_transfer_64_words", LinkFamily::PerTransfer),
        ("i3_per_word_64_words", LinkFamily::PerWord),
    ] {
        workloads.push(WorkloadRow {
            name,
            interpreted: link_stats(family, false),
            compiled: link_stats(family, true),
        });
    }
    let sliced = SLICED_SEEDS.iter().map(|&s| sliced_row(s, 64)).collect();
    CompileReport { workloads, sliced }
}

fn engine_json(out: &mut String, e: &EngineStats) {
    out.push_str(&format!(
        "{{\"events\": {}, \"commits\": {}, \"cones_built\": {}, \
         \"cone_evals\": {}, \"events_avoided\": {}, \"checksum\": {}}}",
        e.events, e.commits, e.cones_built, e.cone_evals, e.events_avoided, e.checksum
    ));
}

/// Serializes the report (hand-rolled: integers and fixed strings
/// only, bytewise deterministic).
pub fn to_json(r: &CompileReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"workloads\": [\n");
    for (i, w) in r.workloads.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\", \"identical\": {}, ", w.name, w.identical()));
        out.push_str("\"interpreted\": ");
        engine_json(&mut out, &w.interpreted);
        out.push_str(", \"compiled\": ");
        engine_json(&mut out, &w.compiled);
        out.push_str(if i + 1 < r.workloads.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n  \"sliced\": [\n");
    for (i, s) in r.sliced.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {}, \"lanes\": {}, \"diverged\": \"{:#018x}\", \
             \"demoted\": {}, \"distinct_from_control\": {}, \"mismatched\": {}}}",
            s.seed,
            s.lanes,
            s.diverged,
            s.diverged.count_ones(),
            s.distinct_from_control,
            s.mismatched
        ));
        out.push_str(if i + 1 < r.sliced.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_ring_workload() {
        let row = WorkloadRow {
            name: "ring_oscillator_100ns",
            interpreted: ring_stats(false),
            compiled: ring_stats(true),
        };
        assert!(row.identical(), "{row:?}");
        assert!(row.compiled.cones_built > 0);
        assert!(row.interpreted.cones_built == 0);
    }
}
