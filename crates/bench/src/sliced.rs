//! Bit-sliced multi-seed glitch campaign (`--bin compile` report,
//! fidelity tests).
//!
//! A robustness campaign replays the same link under many glitch
//! seeds. The sliced engine packs up to 64 seeds into the bit-planes
//! of one carrier simulation (`Simulator::slice_begin`); this module
//! is the campaign driver around it:
//!
//! 1. synthesize a deterministic storm *site* list — shared
//!    `(segment, time, width)` upset windows — and one mask per lane
//!    per site (lane 0 keeps all-zero masks as the clean control);
//! 2. run the carrier once with per-lane injection and taps on the
//!    delivery-side signals;
//! 3. scalar-replay the lanes the pass demoted;
//! 4. verify fidelity: every healthy lane's tap history must be
//!    **byte-identical** to a scalar run seeded with that lane's
//!    masks.
//!
//! The scalar runs double as the wall-clock baseline: `lanes`
//! interpreted-fault runs versus one carrier pass plus replays.

use std::time::{Duration, Instant};

use sal_cells::CircuitBuilder;
use sal_des::trace::MemoryTrace;
use sal_des::{FaultPlan, SignalId, Simulator, Time, Value};
use sal_link::measure::MeasureOptions;
use sal_link::testbench::{
    attach_sync_sink, attach_sync_source, worst_case_pattern, SyncFlitSink, SyncFlitSource,
};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};

/// Words streamed per campaign run.
pub const WORDS: usize = 16;

/// Shared upset windows per campaign.
pub const SITES: usize = 6;

/// Fixed run horizon: the 16-word pattern drains well inside it in
/// every lane, so sliced and scalar runs observe identical windows.
pub const HORIZON_NS: u64 = 1000;

/// One shared upset window: all lanes glitch this segment in this
/// window, each with its own mask.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// Data segment index (`link.wire.seg_d{seg}`).
    pub seg: u8,
    /// Upset start, picoseconds.
    pub at_ps: u64,
    /// Upset width, picoseconds.
    pub width_ps: u64,
}

/// Deterministic xorshift64* stream (campaign artifacts must be
/// reproducible from the seed alone).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Synthesizes the shared site list: [`SITES`] windows spread across
/// the pattern's in-use region, 25 ns apart so windows on one segment
/// can never overlap, widths under the ~370 ps I2 slice cadence.
pub fn sites(seed: u64) -> Vec<Site> {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    (0..SITES)
        .map(|i| Site {
            seg: rng.below(5) as u8,
            at_ps: 22_000 + 25_000 * i as u64 + rng.below(8_000),
            width_ps: 150 + rng.below(200),
        })
        .collect()
}

/// The per-lane masks of one site: lane 0 is the clean control (all
/// zeros), every other lane flips one deterministic wire bit.
pub fn lane_masks(seed: u64, site: usize, lanes: u8) -> Vec<u64> {
    (0..lanes)
        .map(|k| {
            if k == 0 {
                0
            } else {
                let mut rng =
                    Rng(seed ^ (site as u64) << 32 ^ u64::from(k).wrapping_mul(0x9e37_79b9) | 1);
                1u64 << rng.below(8)
            }
        })
        .collect()
}

/// One signal's committed change series, `(time, value)` — the unit
/// of the byte-identical fidelity comparison.
pub type Series = Vec<(Time, Value)>;

/// Per-lane results of one campaign pass.
#[derive(Debug)]
pub struct CampaignResult {
    /// Lanes carried.
    pub lanes: u8,
    /// Lanes the sliced pass demoted to scalar replay (bit `k`).
    pub diverged: u64,
    /// Per-lane delivered-flit change series (sliced planes for
    /// healthy lanes, scalar replay for demoted ones).
    pub flit_series: Vec<Series>,
    /// Wall-clock of the carrier pass (build + compile + run + seal).
    pub carrier_wall: Duration,
    /// Wall-clock of the scalar replays of demoted lanes.
    pub replay_wall: Duration,
    /// Carrier-pass kernel profile (compiled-cone and lane counters).
    pub profile: sal_des::SimProfile,
}

fn link_sim(cfg: &LinkConfig) -> (Simulator, sal_link::LinkHandles) {
    let opts = MeasureOptions::default();
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let spec = LinkSpec::from_config(LinkFamily::PerTransfer, cfg)
        .expect("campaign config is a valid spec");
    let handles = generate(&mut builder, &spec, "link", cfg).expect("I2 link builds");
    builder.finish();
    (sim, handles)
}

fn attach_testbench(sim: &mut Simulator, handles: &sal_link::LinkHandles, cfg: &LinkConfig) {
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
    );
    let words = worst_case_pattern(WORDS, 32);
    let (src, _sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words,
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(sim, "tb_src", src, Time::ZERO);
    let (snk, _received) =
        SyncFlitSink::new(handles.clk, handles.valid_out, handles.flit_out, handles.stall_in);
    attach_sync_sink(sim, "tb_snk", snk, Time::ZERO);
}

fn seg_signal(sim: &Simulator, seg: u8) -> SignalId {
    sim.signal_by_path(&format!("link.wire.seg_d{seg}"))
        .expect("serialized data segment exists")
}

/// One scalar ground-truth run: lane `k`'s masks through the public
/// fault-plan machinery, delivered-flit change series extracted from
/// a full transition trace.
pub fn scalar_run(storm_seed: u64, lane: u8, lanes: u8) -> Series {
    let cfg = LinkConfig::default();
    let (mut sim, handles) = link_sim(&cfg);
    attach_testbench(&mut sim, &handles, &cfg);
    let mut plan = FaultPlan::new(0);
    for (i, site) in sites(storm_seed).iter().enumerate() {
        let mask = lane_masks(storm_seed, i, lanes)[lane as usize];
        if mask != 0 {
            plan = plan.glitch(
                &format!("link.wire.seg_d{}", site.seg),
                Time::from_ps(site.at_ps),
                Time::from_ps(site.width_ps),
                mask,
            );
        }
    }
    sim.apply_fault_plan(&plan).expect("storm plan resolves");
    sim.compile();
    sim.set_trace_sink(Box::new(MemoryTrace::new()));
    sim.run_until(Time::from_ns(HORIZON_NS)).expect("scalar run completes");
    let sink = sim.take_trace_sink().expect("trace sink installed");
    sink.records()
        .expect("memory trace exposes records")
        .iter()
        .filter(|r| r.signal == handles.flit_out)
        .map(|r| (r.time, r.new))
        .collect()
}

/// Extracts lane `k`'s change series from a sliced tap history: keep
/// the entries where that lane's unpacked value actually changed.
pub fn lane_series(history: &[(Time, sal_des::LaneValues)], lane: u8) -> Series {
    let mut out = Series::new();
    let mut prev: Option<Value> = None;
    for (t, planes) in history {
        let v = planes.unpack(lane);
        if prev.as_ref() != Some(&v) {
            if prev.is_some() {
                out.push((*t, v));
            }
            prev = Some(v);
        }
    }
    out
}

/// Runs the sliced campaign: one carrier pass packing `lanes` seeds,
/// scalar replays for demoted lanes. Lane `k`'s glitches are
/// `lane_masks(storm_seed, site, lanes)[k]` at each shared site.
pub fn sliced_campaign(storm_seed: u64, lanes: u8) -> CampaignResult {
    let t0 = Instant::now();
    let cfg = LinkConfig::default();
    let (mut sim, handles) = link_sim(&cfg);
    attach_testbench(&mut sim, &handles, &cfg);
    sim.compile();
    sim.slice_begin(lanes);
    for (i, site) in sites(storm_seed).iter().enumerate() {
        let signal = seg_signal(&sim, site.seg);
        let masks = lane_masks(storm_seed, i, lanes);
        sim.slice_glitch(
            Time::from_ps(site.at_ps),
            signal,
            Time::from_ps(site.width_ps),
            &masks,
        );
    }
    sim.slice_tap(handles.flit_out);
    sim.run_until(Time::from_ns(HORIZON_NS)).expect("carrier run completes");
    let diverged = sim.slice_seal();
    let profile = sim.profile();
    let history = sim.slice_tap_history(handles.flit_out).expect("flit tap recorded").to_vec();
    let carrier_wall = t0.elapsed();

    let t1 = Instant::now();
    let flit_series: Vec<Series> = (0..lanes)
        .map(|k| {
            if diverged & (1 << k) != 0 {
                scalar_run(storm_seed, k, lanes)
            } else {
                lane_series(&history, k)
            }
        })
        .collect();
    let replay_wall = t1.elapsed();
    CampaignResult { lanes, diverged, flit_series, carrier_wall, replay_wall, profile }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_synthesis_is_deterministic_and_in_spec() {
        let a = sites(11);
        assert_eq!(a.len(), SITES);
        for (i, s) in a.iter().enumerate() {
            assert!(s.seg < 5);
            assert!((150..350).contains(&s.width_ps));
            assert!(s.at_ps >= 22_000 && s.at_ps < 22_000 + 25_000 * i as u64 + 8_000 + 1);
        }
        let m = lane_masks(11, 0, 8);
        assert_eq!(m[0], 0, "lane 0 is the clean control");
        assert!(m[1..].iter().all(|&x| x.is_power_of_two() && x < 256));
        assert_eq!(m, lane_masks(11, 0, 8));
    }
}
