//! Criterion benchmark of the gate-level switch fabric: how fast the
//! kernel simulates a 3-switch row with serialized links end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time, Value};
use sal_link::testbench::{attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource};
use sal_link::{LinkConfig, LinkFamily};
use sal_switch::{build_row_fabric, flit};
use sal_tech::St012Library;

fn run_fabric(family: LinkFamily) -> usize {
    let cfg = LinkConfig::default();
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let f = build_row_fabric(&mut b, "fab", 3, family, &cfg);
    b.finish();
    for &r in &f.rstns {
        sim.stimulus(r, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))]);
    }
    let mut sinks = Vec::new();
    for (i, &(fi, vi, so)) in f.local_in.iter().enumerate() {
        let words: Vec<u64> = (0..3)
            .filter(|&d| d != i)
            .map(|d| flit::pack(cfg.flit_width, d as u8, 0, (i * 16 + d) as u64))
            .collect();
        let (src, _) = SyncFlitSource::new(f.clk, so, fi, vi, cfg.flit_width, words);
        let src = src.with_rstn(f.rstns[0]);
        attach_sync_source(&mut sim, &format!("src{i}"), src, Time::ZERO);
    }
    for (i, &(fo, vo, si)) in f.local_out.iter().enumerate() {
        let (snk, rx) = SyncFlitSink::new(f.clk, vo, fo, si);
        attach_sync_sink(&mut sim, &format!("snk{i}"), snk, Time::ZERO);
        sinks.push(rx);
    }
    sim.run_until(Time::from_us(2)).unwrap();
    sinks.iter().map(|rx| rx.borrow().len()).sum()
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/3_switches_6_flits");
    g.sample_size(10);
    for family in [LinkFamily::Sync, LinkFamily::PerWord] {
        g.bench_with_input(BenchmarkId::from_parameter(family.label()), &family, |b, &family| {
            b.iter(|| {
                let delivered = run_fabric(family);
                assert_eq!(delivered, 6);
                delivered
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
