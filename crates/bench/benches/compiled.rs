//! Compiled-vs-interpreted engine benchmarks.
//!
//! The `compiled_vs_interpreted` group times identical workloads on
//! both execution engines — the interpreted event loop and the
//! compiled netlist engine (`Simulator::compile`) — so a regression
//! in either shows up as a ratio change, not just a drift both sides
//! share. The engines are bit-identical by construction (golden
//! replay and proptest suites enforce it), so these numbers are pure
//! wall-clock.
//!
//! `sliced_campaign` times the 64-way bit-sliced multi-seed pass
//! against the same storm replayed lane by lane.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_bench::sliced;
use sal_cells::{CircuitBuilder, UnitLibrary};
use sal_des::{Simulator, Time, Value};
use sal_link::{run_spec, LinkConfig, LinkFamily, LinkSpec, MeasureOptions};

/// Free-running ring oscillator: pure event-loop churn, every cell a
/// member of one compiled cone.
fn ring_oscillator(compiled: bool) -> u64 {
    let mut sim = Simulator::new();
    let lib = UnitLibrary;
    let mut builder = CircuitBuilder::new(&mut sim, &lib);
    let en = builder.input("en", 1);
    let _osc = builder.ring_oscillator_stages("ro", en, 9);
    builder.finish();
    if compiled {
        sim.compile();
    }
    sim.stimulus(en, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
    sim.run_until(Time::from_ns(100)).unwrap();
    sim.events_processed()
}

/// Wide fanout bus: one toggling source into a tree of word-wide
/// gates — exercises the compiled engine's value plane and skip path.
fn fanout_bus(compiled: bool) -> u64 {
    let mut sim = Simulator::new();
    let lib = UnitLibrary;
    let mut builder = CircuitBuilder::new(&mut sim, &lib);
    let a = builder.input("a", 32);
    let b = builder.input("b", 32);
    let mut layer = vec![a, b];
    for depth in 0..6 {
        let mut next = Vec::new();
        for (i, pair) in layer.chunks(2).enumerate() {
            let x = pair[0];
            let y = pair.get(1).copied().unwrap_or(pair[0]);
            next.push(builder.and2(&format!("l{depth}_{i}"), x, y));
            next.push(builder.xor2(&format!("x{depth}_{i}"), x, y));
        }
        layer = next;
    }
    builder.finish();
    if compiled {
        sim.compile();
    }
    let sched: Vec<(Time, Value)> = (0..500u64)
        .map(|i| {
            (Time::from_ps(100 * (i + 1)), Value::from_u64(32, if i % 2 == 0 { u32::MAX as u64 } else { 0x5555_5555 }))
        })
        .collect();
    sim.stimulus(a, &sched);
    sim.run_to_quiescence().unwrap();
    sim.events_processed()
}

fn link_words(family: LinkFamily, compiled: bool, words: usize) -> usize {
    let opts = if compiled {
        MeasureOptions::default()
    } else {
        MeasureOptions::default().without_compile()
    };
    let words: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0x9e37_79b9) & 0xffff_ffff).collect();
    let run = run_spec(&LinkSpec::paper(family), &LinkConfig::default(), &words, &opts)
        .expect("link run completes");
    run.received_words().len()
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiled_vs_interpreted");
    g.sample_size(10);
    for engine in ["interpreted", "compiled"] {
        let compiled = engine == "compiled";
        g.bench_with_input(BenchmarkId::new("ring_oscillator_100ns", engine), &compiled, |b, &e| {
            b.iter(|| ring_oscillator(e));
        });
        g.bench_with_input(BenchmarkId::new("fanout_bus_500_toggles", engine), &compiled, |b, &e| {
            b.iter(|| fanout_bus(e));
        });
        g.bench_with_input(BenchmarkId::new("i1_sync_64_words", engine), &compiled, |b, &e| {
            b.iter(|| link_words(LinkFamily::Sync, e, 64));
        });
        g.bench_with_input(BenchmarkId::new("i2_per_transfer_64_words", engine), &compiled, |b, &e| {
            b.iter(|| link_words(LinkFamily::PerTransfer, e, 64));
        });
        g.bench_with_input(BenchmarkId::new("i3_per_word_64_words", engine), &compiled, |b, &e| {
            b.iter(|| link_words(LinkFamily::PerWord, e, 64));
        });
    }
    g.finish();
}

fn bench_sliced_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("sliced_campaign");
    g.sample_size(10);
    // The golden storm: 64 packed seeds, one demoted lane.
    g.bench_function("64_lanes_sliced", |b| {
        b.iter(|| sliced::sliced_campaign(73, 64));
    });
    g.bench_function("64_lanes_scalar_loop", |b| {
        b.iter(|| {
            (0..64u8).map(|k| sliced::scalar_run(73, k, 64).len()).sum::<usize>()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_compiled_vs_interpreted, bench_sliced_campaign
}
criterion_main!(benches);
