//! Criterion microbenchmarks of the discrete-event kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sal_cells::{CircuitBuilder, UnitLibrary};
use sal_des::{Simulator, Time, Value};

/// A free-running ring oscillator stresses the event loop.
fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("kernel/ring_oscillator_100ns", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let lib = UnitLibrary;
            let mut builder = CircuitBuilder::new(&mut sim, &lib);
            let en = builder.input("en", 1);
            let _osc = builder.ring_oscillator_stages("ro", en, 9);
            builder.finish();
            sim.stimulus(en, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
            sim.run_until(Time::from_ns(100)).unwrap();
            sim.events_processed()
        });
    });
}

/// Wide-bus toggling exercises word-level value ops and energy
/// accounting.
fn bench_bus_activity(c: &mut Criterion) {
    c.bench_function("kernel/64bit_bus_1000_toggles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let bus = sim.add_signal("bus", 64);
            sim.set_signal_energy(bus, 1.5);
            let sched: Vec<(Time, Value)> = (0..1000u64)
                .map(|i| {
                    (
                        Time::from_ps(10 * (i + 1)),
                        Value::from_u64(64, if i % 2 == 0 { u64::MAX } else { 0 }),
                    )
                })
                .collect();
            sim.stimulus(bus, &sched);
            sim.run_to_quiescence().unwrap();
            sim.toggles(bus)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_loop, bench_bus_activity
}
criterion_main!(benches);
