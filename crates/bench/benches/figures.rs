//! Criterion wrappers around each figure/table regeneration, so
//! `cargo bench` exercises (and times) the full reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use sal_bench::experiments;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10", |b| b.iter(experiments::fig10));
    g.bench_function("fig11", |b| b.iter(experiments::fig11));
    g.bench_function("fig14", |b| b.iter(experiments::fig14));
    g.bench_function("table1", |b| b.iter(experiments::table1));
    g.bench_function("table2", |b| b.iter(experiments::table2));
    g.bench_function("delay_check", |b| b.iter(experiments::delay_check));
    g.finish();
    // The buffer sweeps are heavier; keep samples minimal.
    let mut g = c.benchmark_group("figures/power_sweeps");
    g.sample_size(10);
    g.bench_function("fig12", |b| b.iter(experiments::fig12));
    g.bench_function("fig13", |b| b.iter(experiments::fig13));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
