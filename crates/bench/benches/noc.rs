//! Criterion benchmarks of the mesh network simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_noc::{LinkModel, Mesh, Network, NetworkConfig, TrafficPattern};

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc/4x4_uniform_2000cycles");
    g.sample_size(10);
    for &rate in &[0.1, 0.4] {
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let cfg = NetworkConfig {
                    mesh: Mesh::new(4, 4),
                    link: LinkModel::ideal(),
                    input_queue_flits: 8,
                    packet_len_flits: 4,
                    faults: None,
                    routing: sal_noc::RoutingMode::XyStatic,
                    link_kills: Vec::new(),
                };
                let mut net = Network::new(cfg, TrafficPattern::UniformRandom, rate, 5);
                net.run(2_000, 500).delivered_flits
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
