//! Criterion benchmarks of full gate-level link transfers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_link::measure::{run, MeasureOptions};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkKind};

fn bench_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("link/4flit_transfer");
    g.sample_size(10);
    for kind in [LinkKind::I1Sync, LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            let cfg = LinkConfig::default();
            let words = worst_case_pattern(4, 32);
            b.iter(|| run(kind, &cfg, &words, &MeasureOptions::default()).expect("clean run").total_power_uw());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_links);
criterion_main!(benches);
