//! Criterion benchmarks of full gate-level link transfers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_link::measure::{run_spec, MeasureOptions};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};

fn bench_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("link/4flit_transfer");
    g.sample_size(10);
    for family in LinkFamily::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(family.label()), &family, |b, &family| {
            let spec = LinkSpec::paper(family);
            let cfg = LinkConfig::default();
            let words = worst_case_pattern(4, 32);
            b.iter(|| {
                run_spec(&spec, &cfg, &words, &MeasureOptions::default())
                    .expect("clean run")
                    .total_power_uw()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_links);
criterion_main!(benches);
