//! Small gate-level fabrics: a row of switches joined by any of the
//! paper's three links — the Fig 2 system, end to end, with every
//! gate simulated.

use sal_cells::CircuitBuilder;
use sal_des::{SignalId, Value};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};

use crate::switch::{build_switch, port, SwitchPorts};

/// Handles to drive a built row fabric.
#[derive(Debug, Clone)]
pub struct FabricHandles {
    /// The switch clock (link instances carry identical clocks of
    /// their own, phase-aligned by construction).
    pub clk: SignalId,
    /// Every reset input in the fabric (drive them all identically).
    pub rstns: Vec<SignalId>,
    /// Per switch: local injection `(flit_in, valid_in, stall_out)`.
    pub local_in: Vec<(SignalId, SignalId, SignalId)>,
    /// Per switch: local ejection `(flit_out, valid_out, stall_in)`.
    pub local_out: Vec<(SignalId, SignalId, SignalId)>,
    /// The switches' port bundles (for inspection).
    pub switches: Vec<SwitchPorts>,
}

/// Builds `n` switches at coordinates `(0,0) … (n-1,0)` joined by
/// `family` links in both directions, inside scope `name`. Unused
/// mesh edges are tied off. `cfg.flit_width` is the fabric's flit
/// width.
pub fn build_row_fabric(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    n: usize,
    family: LinkFamily,
    cfg: &LinkConfig,
) -> FabricHandles {
    build_mesh_fabric(b, name, (n, 1), family, cfg)
}

/// Builds a full `cols × rows` gate-level mesh: one switch per node,
/// joined by `family` links in both directions along every mesh edge.
/// Locals are exposed in row-major order (`y * cols + x`).
pub fn build_mesh_fabric(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    (cols, rows): (usize, usize),
    family: LinkFamily,
    cfg: &LinkConfig,
) -> FabricHandles {
    let n = cols * rows;
    assert!(n >= 2, "a fabric needs at least two switches");
    assert!(cols <= 16 && rows <= 16, "coordinates are 4-bit");
    let m = cfg.flit_width;
    let mut rstns = Vec::new();

    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    rstns.push(rstn);

    b.push_scope(name);
    let switches: Vec<SwitchPorts> = (0..n)
        .map(|i| {
            let (x, y) = (i % cols, i / cols);
            build_switch(b, &format!("sw{i}"), m, (x as u8, y as u8), clk, rstn)
        })
        .collect();

    // Tie off the unused mesh-edge ports.
    let zero_flit = b.tie("zero_flit", Value::zero(m));
    let zero = b.tie("zero", Value::zero(1));
    let tie_input = |b: &mut CircuitBuilder<'_>, sw: &SwitchPorts, p: usize, i: usize| {
        b.buf_into(&format!("tie_f_{i}_{p}"), sw.flit_in[p], zero_flit);
        b.buf_into(&format!("tie_v_{i}_{p}"), sw.valid_in[p], zero);
        b.buf_into(&format!("tie_s_{i}_{p}"), sw.stall_in[p], zero);
    };
    for (i, sw) in switches.iter().enumerate() {
        let (x, y) = (i % cols, i / cols);
        if y == 0 {
            tie_input(b, sw, port::N, i);
        }
        if y == rows - 1 {
            tie_input(b, sw, port::S, i);
        }
        if x == 0 {
            tie_input(b, sw, port::W, i);
        }
        if x == cols - 1 {
            tie_input(b, sw, port::E, i);
        }
    }
    b.pop_scope();

    // Inter-switch links, one per direction per mesh edge. Links are
    // built at the top level (they create their own clock/reset
    // signals there). `connect(from, out_port, to, in_port)` inserts a
    // full gate-level link between two switch ports.
    let spec = match LinkSpec::from_config(family, cfg) {
        Ok(s) => s,
        Err(e) => panic!("fabric link config is not a valid spec: {e}"),
    };
    let connect = |b: &mut CircuitBuilder<'_>,
                       rstns: &mut Vec<SignalId>,
                       tag: String,
                       from: usize,
                       op: usize,
                       to: usize,
                       ip: usize| {
        let l = match generate(b, &spec, &tag, cfg) {
            Ok(l) => l,
            Err(e) => panic!("fabric link '{tag}' failed to build: {e}"),
        };
        rstns.push(l.rstn);
        b.buf_into(&format!("{tag}_fi"), l.flit_in, switches[from].flit_out[op]);
        b.buf_into(&format!("{tag}_vi"), l.valid_in, switches[from].valid_out[op]);
        b.buf_into(&format!("{tag}_so"), switches[from].stall_in[op], l.stall_out);
        b.buf_into(&format!("{tag}_fo"), switches[to].flit_in[ip], l.flit_out);
        b.buf_into(&format!("{tag}_vo"), switches[to].valid_in[ip], l.valid_out);
        b.buf_into(&format!("{tag}_si"), l.stall_in, switches[to].stall_out[ip]);
    };
    for y in 0..rows {
        for x in 0..cols {
            let i = y * cols + x;
            if x + 1 < cols {
                let j = i + 1;
                connect(b, &mut rstns, format!("{name}_x{x}y{y}e"), i, port::E, j, port::W);
                connect(b, &mut rstns, format!("{name}_x{x}y{y}w"), j, port::W, i, port::E);
            }
            if y + 1 < rows {
                let j = i + cols;
                connect(b, &mut rstns, format!("{name}_x{x}y{y}s"), i, port::S, j, port::N);
                connect(b, &mut rstns, format!("{name}_x{x}y{y}n"), j, port::N, i, port::S);
            }
        }
    }

    let local_in = switches
        .iter()
        .map(|sw| (sw.flit_in[port::L], sw.valid_in[port::L], sw.stall_out[port::L]))
        .collect();
    let local_out = switches
        .iter()
        .map(|sw| (sw.flit_out[port::L], sw.valid_out[port::L], sw.stall_in[port::L]))
        .collect();
    FabricHandles { clk, rstns, local_in, local_out, switches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit;
    use sal_des::{Simulator, Time};
    use sal_link::testbench::{
        attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
    };
    use sal_tech::St012Library;

    fn run_fabric(
        n: usize,
        family: LinkFamily,
        traffic: Vec<(usize, u8, u64)>, // (src switch, dest x, payload)
        cycles: u64,
    ) -> Vec<Vec<(u8, u8, u64)>> {
        let cfg = LinkConfig::default();
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let f = build_row_fabric(&mut b, "fab", n, family, &cfg);
        b.finish();
        for &r in &f.rstns {
            sim.stimulus(r, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))]);
        }
        // Sources: per switch, the words destined from it.
        let mut sinks = Vec::new();
        for (i, &(fi, vi, so)) in f.local_in.iter().enumerate() {
            let words: Vec<u64> = traffic
                .iter()
                .filter(|&&(s, _, _)| s == i)
                .map(|&(_, dx, p)| flit::pack(cfg.flit_width, dx, 0, p))
                .collect();
            let (src, _) = SyncFlitSource::new(f.clk, so, fi, vi, cfg.flit_width, words);
            let src = src.with_rstn(f.rstns[0]);
            attach_sync_source(&mut sim, &format!("src{i}"), src, Time::ZERO);
        }
        for (i, &(fo, vo, si)) in f.local_out.iter().enumerate() {
            let (snk, rx) = SyncFlitSink::new(f.clk, vo, fo, si);
            attach_sync_sink(&mut sim, &format!("snk{i}"), snk, Time::ZERO);
            sinks.push(rx);
        }
        sim.run_until(cfg.clk_period * cycles).unwrap();
        sinks
            .iter()
            .map(|rx| {
                rx.borrow()
                    .iter()
                    .map(|&(_, w)| flit::unpack(cfg.flit_width, w))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn two_switches_over_serialized_link() {
        // sw0 -> sw1 and sw1 -> sw0, over gate-level I3 links.
        let got = run_fabric(
            2,
            LinkFamily::PerWord,
            vec![(0, 1, 0xAAAA), (1, 0, 0x5555)],
            120,
        );
        assert_eq!(got[1], vec![(1, 0, 0xAAAA)]);
        assert_eq!(got[0], vec![(0, 0, 0x5555)]);
    }

    #[test]
    fn multi_hop_across_three_switches() {
        // sw0 -> sw2 must transit sw1 and two I2 links.
        let got = run_fabric(
            3,
            LinkFamily::PerTransfer,
            vec![(0, 2, 0x123456), (2, 0, 0x654321)],
            300,
        );
        assert_eq!(got[2], vec![(2, 0, 0x123456)]);
        assert_eq!(got[0], vec![(0, 0, 0x654321)]);
    }

    #[test]
    fn parallel_link_fabric_matches() {
        let got = run_fabric(
            2,
            LinkFamily::Sync,
            vec![(0, 1, 0x77), (0, 1, 0x88), (0, 1, 0x99)],
            200,
        );
        let payloads: Vec<u64> = got[1].iter().map(|&(_, _, p)| p).collect();
        assert_eq!(payloads, vec![0x77, 0x88, 0x99]);
    }

    #[test]
    fn local_delivery_without_links() {
        // A flit addressed to its own switch ejects locally.
        let got = run_fabric(2, LinkFamily::PerWord, vec![(0, 0, 0x42)], 60);
        assert_eq!(got[0], vec![(0, 0, 0x42)]);
        assert!(got[1].is_empty());
    }

    #[test]
    fn two_by_two_mesh_corner_to_corner() {
        // (0,0) -> (1,1) routes X-first through (1,0); the return flit
        // (1,1) -> (0,0) routes X-first through (0,1). Both transit an
        // intermediate switch and three gate-level links end to end.
        let cfg = LinkConfig::default();
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let f = build_mesh_fabric(&mut b, "mesh", (2, 2), LinkFamily::PerWord, &cfg);
        b.finish();
        for &r in &f.rstns {
            sim.stimulus(r, &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))]);
        }
        // node indices: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1)
        let w03 = flit::pack(cfg.flit_width, 1, 1, 0xC0C0);
        let w30 = flit::pack(cfg.flit_width, 0, 0, 0x0D0D);
        let mut sinks = Vec::new();
        for (i, &(fi, vi, so)) in f.local_in.iter().enumerate() {
            let words = match i {
                0 => vec![w03],
                3 => vec![w30],
                _ => vec![],
            };
            let (src, _) = SyncFlitSource::new(f.clk, so, fi, vi, cfg.flit_width, words);
            let src = src.with_rstn(f.rstns[0]);
            attach_sync_source(&mut sim, &format!("src{i}"), src, Time::ZERO);
        }
        for (i, &(fo, vo, si)) in f.local_out.iter().enumerate() {
            let (snk, rx) = SyncFlitSink::new(f.clk, vo, fo, si);
            attach_sync_sink(&mut sim, &format!("snk{i}"), snk, Time::ZERO);
            sinks.push(rx);
        }
        sim.run_until(Time::from_us(3)).unwrap();
        let words_at = |i: usize| -> Vec<u64> {
            sinks[i].borrow().iter().map(|&(_, w)| w).collect()
        };
        assert_eq!(words_at(3), vec![w03], "corner-to-corner flit lost");
        assert_eq!(words_at(0), vec![w30], "return flit lost");
        assert!(words_at(1).is_empty() && words_at(2).is_empty());
    }
}