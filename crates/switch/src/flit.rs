//! The gate-level flit format: destination-routed single-flit packets.
//!
//! `[ dest_x (4) | dest_y (4) | payload (m-8) ]`, with `dest_x` in the
//! most significant nibble. Four bits per coordinate bound fabrics to
//! 16×16 — far beyond anything simulated here.

/// Bits per coordinate field.
pub const COORD_BITS: u8 = 4;

/// Packs a destination and payload into an `m`-bit flit.
///
/// # Panics
///
/// Panics if `m < 9`, a coordinate exceeds 15, or the payload does not
/// fit in `m - 8` bits.
pub fn pack(m: u8, dest_x: u8, dest_y: u8, payload: u64) -> u64 {
    assert!(m >= 9, "flit too narrow for a routed header");
    assert!(dest_x < 16 && dest_y < 16, "coordinates are 4-bit");
    let pl_bits = m - 2 * COORD_BITS;
    assert!(
        payload < (1u64 << pl_bits),
        "payload does not fit in {pl_bits} bits"
    );
    (u64::from(dest_x) << (m - COORD_BITS))
        | (u64::from(dest_y) << (m - 2 * COORD_BITS))
        | payload
}

/// Extracts `(dest_x, dest_y, payload)` from an `m`-bit flit.
pub fn unpack(m: u8, flit: u64) -> (u8, u8, u64) {
    let pl_bits = m - 2 * COORD_BITS;
    let x = (flit >> (m - COORD_BITS)) as u8 & 0xF;
    let y = (flit >> pl_bits) as u8 & 0xF;
    let payload = flit & ((1u64 << pl_bits) - 1);
    (x, y, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for (x, y, p) in [(0u8, 0u8, 0u64), (3, 7, 0xABCDEF), (15, 15, 0xFF_FFFF)] {
            let f = pack(32, x, y, p);
            assert_eq!(unpack(32, f), (x, y, p));
        }
    }

    #[test]
    fn header_occupies_the_top_byte() {
        let f = pack(32, 0xA, 0x5, 0);
        assert_eq!(f, 0xA500_0000);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_payload_rejected() {
        let _ = pack(32, 0, 0, 1 << 24);
    }
}
