//! Gate-level unsigned comparators.

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

/// Builds `a == b` for two equal-width buses (≤ 8 bits) as XNOR per
/// bit reduced through an AND tree. Returns the 1-bit result.
pub fn equal(b: &mut CircuitBuilder<'_>, name: &str, a: SignalId, bb: SignalId) -> SignalId {
    let w = b.sim().signal_width(a);
    assert_eq!(w, b.sim().signal_width(bb), "comparator width mismatch");
    assert!(w <= 8, "comparator sized for coordinate fields");
    let bits: Vec<SignalId> = (0..w)
        .map(|i| {
            let ai = b.slice(&format!("{name}_a{i}"), a, i, 1);
            let bi = b.slice(&format!("{name}_b{i}"), bb, i, 1);
            b.xnor2(&format!("{name}_eq{i}"), ai, bi)
        })
        .collect();
    and_tree(b, name, &bits)
}

/// Builds `a > b` (unsigned) for two equal-width buses (≤ 8 bits) with
/// the classic ripple expansion: `gt = Σ_i (a_i ∧ ¬b_i ∧ eq_{above i})`.
/// Returns the 1-bit result.
pub fn greater(b: &mut CircuitBuilder<'_>, name: &str, a: SignalId, bb: SignalId) -> SignalId {
    let w = b.sim().signal_width(a);
    assert_eq!(w, b.sim().signal_width(bb), "comparator width mismatch");
    assert!(w <= 8, "comparator sized for coordinate fields");
    let mut terms = Vec::new();
    // eq_above accumulates equality of all bits above position i.
    let mut eq_above: Option<SignalId> = None;
    for i in (0..w).rev() {
        let ai = b.slice(&format!("{name}_ga{i}"), a, i, 1);
        let bi = b.slice(&format!("{name}_gb{i}"), bb, i, 1);
        let nbi = b.inv(&format!("{name}_nb{i}"), bi);
        let gt_here = b.and2(&format!("{name}_gt{i}"), ai, nbi);
        let term = match eq_above {
            None => gt_here,
            Some(eq) => b.and2(&format!("{name}_t{i}"), gt_here, eq),
        };
        terms.push(term);
        if i > 0 {
            let eq_here = b.xnor2(&format!("{name}_e{i}"), ai, bi);
            eq_above = Some(match eq_above {
                None => eq_here,
                Some(eq) => b.and2(&format!("{name}_ea{i}"), eq, eq_here),
            });
        }
    }
    or_tree(b, &format!("{name}_or"), &terms)
}

fn and_tree(b: &mut CircuitBuilder<'_>, name: &str, sigs: &[SignalId]) -> SignalId {
    assert!(!sigs.is_empty());
    let mut terms = sigs.to_vec();
    let mut level = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (j, chunk) in terms.chunks(3).enumerate() {
            let nm = format!("{name}_and{level}_{j}");
            let out = match *chunk {
                [x] => x,
                [x, y] => b.and2(&nm, x, y),
                [x, y, z] => b.and3(&nm, x, y, z),
                _ => unreachable!(),
            };
            next.push(out);
        }
        terms = next;
        level += 1;
    }
    terms[0]
}

/// OR-tree over 1-bit signals (public: the switch arbiters use it).
pub fn or_tree(b: &mut CircuitBuilder<'_>, name: &str, sigs: &[SignalId]) -> SignalId {
    assert!(!sigs.is_empty());
    let mut terms = sigs.to_vec();
    let mut level = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (j, chunk) in terms.chunks(4).enumerate() {
            let nm = format!("{name}_or{level}_{j}");
            let out = match *chunk {
                [x] => x,
                [x, y] => b.or2(&nm, x, y),
                [x, y, z] => b.or3(&nm, x, y, z),
                [x, y, z, u] => b.or4(&nm, x, y, z, u),
                _ => unreachable!(),
            };
            next.push(out);
        }
        terms = next;
        level += 1;
    }
    terms[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn run_cmp(av: u64, bv: u64) -> (bool, bool) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let eq = equal(&mut b, "eq", a, bb);
        let gt = greater(&mut b, "gt", a, bb);
        b.finish();
        sim.stimulus(a, &[(Time::ZERO, Value::from_u64(4, av))]);
        sim.stimulus(bb, &[(Time::ZERO, Value::from_u64(4, bv))]);
        sim.run_to_quiescence().unwrap();
        (sim.value(eq).is_high(), sim.value(gt).is_high())
    }

    #[test]
    fn comparator_truth_table_exhaustive() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                let (eq, gt) = run_cmp(a, b);
                assert_eq!(eq, a == b, "{a} == {b}");
                assert_eq!(gt, a > b, "{a} > {b}");
            }
        }
    }
}
