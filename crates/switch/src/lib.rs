//! # sal-switch — a gate-level NoC switch and small fabrics
//!
//! The paper treats the NoC switch as a given ("switches which are
//! responsible for routing the packet", §I) and evaluates only the
//! link between two of them. This crate builds that presumed substrate
//! at the same gate level as the links: a five-port switch made of
//! `sal-cells` primitives —
//!
//! * **elastic input buffers** (the skid stage shared with the
//!   synchronous link I1),
//! * a **gate-level XY route unit** (4-bit magnitude comparators
//!   against the switch's own coordinates),
//! * **fixed-priority arbiters** per output port, and
//! * one-hot **crossbar multiplexers** —
//!
//! plus [`fabric`]: row fabrics of several switches whose
//! switch-to-switch channels are any of the paper's three links (the
//! parallel I1 or the serialized asynchronous I2/I3), demonstrating the
//! paper's Fig 2 system end to end *entirely at gate level*.
//!
//! Flits are single-flit packets carrying their destination in the
//! top byte (see [`flit`]): `[x(4) | y(4) | payload(m-8)]`. Wormhole
//! (multi-flit) switching lives in the behavioural `sal-noc`
//! simulator; at gate level, single-flit packets exercise the same
//! routing, arbitration and backpressure paths the links must survive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod compare;
pub mod fabric;
pub mod flit;
pub mod switch;

pub use fabric::{build_mesh_fabric, build_row_fabric, FabricHandles};
pub use switch::{build_switch, SwitchPorts};
