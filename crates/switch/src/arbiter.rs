//! Gate-level fixed-priority arbiter.

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

/// Builds an N-way fixed-priority arbiter: `grant[i]` is high when
/// `req[i]` is high and no lower-indexed request is. Exactly one grant
/// is ever high. (Round-robin fairness lives in the behavioural
/// `sal-noc` router; at gate level fixed priority keeps the logic a
/// two-level AND/NOR structure, and the fabric tests document the
/// resulting starvation-freedom assumptions.)
pub fn fixed_priority(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    reqs: &[SignalId],
) -> Vec<SignalId> {
    assert!(!reqs.is_empty(), "arbiter needs requests");
    let mut grants = Vec::with_capacity(reqs.len());
    // blocked_i = OR of all lower-indexed requests, built as a chain.
    let mut any_lower: Option<SignalId> = None;
    for (i, &r) in reqs.iter().enumerate() {
        let g = match any_lower {
            None => b.buf(&format!("{name}_g{i}"), r),
            Some(lower) => {
                let nl = b.inv(&format!("{name}_nl{i}"), lower);
                b.and2(&format!("{name}_g{i}"), r, nl)
            }
        };
        grants.push(g);
        any_lower = Some(match any_lower {
            None => r,
            Some(lower) => b.or2(&format!("{name}_l{i}"), lower, r),
        });
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn run_arb(reqs: u8) -> Vec<bool> {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rs: Vec<SignalId> = (0..5).map(|i| b.input(&format!("r{i}"), 1)).collect();
        let gs = fixed_priority(&mut b, "arb", &rs);
        b.finish();
        for (i, &r) in rs.iter().enumerate() {
            sim.stimulus(r, &[(Time::ZERO, Value::from_bool(reqs >> i & 1 == 1))]);
        }
        sim.run_to_quiescence().unwrap();
        gs.iter().map(|&g| sim.value(g).is_high()).collect()
    }

    #[test]
    fn exhaustive_five_way() {
        for reqs in 0u8..32 {
            let grants = run_arb(reqs);
            let expected_winner = (0..5).find(|&i| reqs >> i & 1 == 1);
            for (i, &g) in grants.iter().enumerate() {
                assert_eq!(
                    g,
                    Some(i) == expected_winner,
                    "reqs {reqs:05b}, grant {i}"
                );
            }
            assert!(grants.iter().filter(|&&g| g).count() <= 1, "one-hot violated");
        }
    }
}
