//! The five-port gate-level switch.

use sal_cells::CircuitBuilder;
use sal_des::{SignalId, Value};
use sal_link::build_skid_stage;

use crate::arbiter::fixed_priority;
use crate::compare::{equal, greater, or_tree};
use crate::flit::COORD_BITS;

/// Port order used by every per-port array: North, South, East, West,
/// Local.
pub const PORTS: [&str; 5] = ["n", "s", "e", "w", "l"];

/// Port indices matching [`PORTS`].
pub mod port {
    /// North (toward smaller y).
    pub const N: usize = 0;
    /// South (toward larger y).
    pub const S: usize = 1;
    /// East (toward larger x).
    pub const E: usize = 2;
    /// West (toward smaller x).
    pub const W: usize = 3;
    /// The attached core.
    pub const L: usize = 4;
}

/// Ports of one switch. All arrays are indexed N, S, E, W, Local.
#[derive(Debug, Clone)]
pub struct SwitchPorts {
    /// Flit inputs (pre-declared; drive them from links or sources).
    pub flit_in: Vec<SignalId>,
    /// Valid inputs (pre-declared).
    pub valid_in: Vec<SignalId>,
    /// Backpressure outputs toward the upstream links/sources.
    pub stall_out: Vec<SignalId>,
    /// Flit outputs toward the downstream links/sinks.
    pub flit_out: Vec<SignalId>,
    /// Valid outputs.
    pub valid_out: Vec<SignalId>,
    /// Backpressure inputs (pre-declared; drive them from links or
    /// sinks).
    pub stall_in: Vec<SignalId>,
    /// Flip-flop bits on the clock (input skid stages).
    pub clocked_bits: u32,
}

/// Builds a switch at mesh coordinates `(x, y)` in scope `name`.
///
/// Structure: per input port an elastic skid buffer; a gate-level XY
/// route unit comparing the buffered head flit's destination against
/// this switch's coordinates; a fixed-priority arbiter per output; and
/// one-hot crossbar multiplexers. Single-flit packets (see
/// [`crate::flit`]). All decisions are combinational within the
/// cycle; a buffered flit advances on the clock edge exactly when it
/// holds an unstalled output grant, so no flit is ever dropped or
/// duplicated.
pub fn build_switch(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    m: u8,
    (x, y): (u8, u8),
    clk: SignalId,
    rstn: SignalId,
) -> SwitchPorts {
    assert!(m > 2 * COORD_BITS, "flit too narrow for routing");
    b.push_scope(name);

    // Pre-declared externally driven inputs.
    let flit_in: Vec<SignalId> =
        (0..5).map(|i| b.input(&format!("flit_in_{}", PORTS[i]), m)).collect();
    let valid_in: Vec<SignalId> =
        (0..5).map(|i| b.input(&format!("valid_in_{}", PORTS[i]), 1)).collect();
    let stall_in: Vec<SignalId> =
        (0..5).map(|i| b.input(&format!("stall_in_{}", PORTS[i]), 1)).collect();

    // This switch's own coordinates as tie constants.
    let xc = b.tie("x_const", Value::from_u64(COORD_BITS, u64::from(x)));
    let yc = b.tie("y_const", Value::from_u64(COORD_BITS, u64::from(y)));

    // ---------------- Input stages + route units ----------------
    let mut fq = Vec::with_capacity(5);
    let mut stall_down_pre = Vec::with_capacity(5);
    let mut stall_out = Vec::with_capacity(5);
    // req[input][output]
    let mut req: Vec<Vec<SignalId>> = Vec::with_capacity(5);
    let mut clocked_bits = 0u32;
    for i in 0..5 {
        b.push_scope(&format!("in_{}", PORTS[i]));
        let bus = b.concat("bus", &[flit_in[i], valid_in[i]]);
        let stall_down = b.input("stall_down", 1);
        let (out_q, use_skid) = build_skid_stage(b, clk, rstn, bus, stall_down);
        clocked_bits += m as u32 + 2;
        let v = b.slice("vq", out_q, m, 1);
        let f = b.slice("fq", out_q, 0, m);

        // Route compute from the buffered flit's header.
        let dx = b.slice("dx", f, m - COORD_BITS, COORD_BITS);
        let dy = b.slice("dy", f, m - 2 * COORD_BITS, COORD_BITS);
        let eq_x = equal(b, "eq_x", dx, xc);
        let gt_x = greater(b, "gt_x", dx, xc);
        let lt_x = greater(b, "lt_x", xc, dx);
        let eq_y = equal(b, "eq_y", dy, yc);
        let gt_y = greater(b, "gt_y", dy, yc);
        let lt_y = greater(b, "lt_y", yc, dy);
        let samex = b.and2("samex", v, eq_x);
        // XY: resolve X first, then Y, then eject.
        let go_e = b.and2("go_e", v, gt_x);
        let go_w = b.and2("go_w", v, lt_x);
        let go_s = b.and2("go_s", samex, gt_y);
        let go_n = b.and2("go_n", samex, lt_y);
        let go_l = b.and2("go_l", samex, eq_y);
        b.pop_scope();

        fq.push(f);
        stall_down_pre.push(stall_down);
        stall_out.push(use_skid);
        req.push(vec![go_n, go_s, go_e, go_w, go_l]);
    }

    // ---------------- Arbiters + crossbar ----------------
    let mut flit_out = Vec::with_capacity(5);
    let mut valid_out = Vec::with_capacity(5);
    // acc_terms[i]: conditions under which input i's flit leaves.
    let mut acc_terms: Vec<Vec<SignalId>> = vec![Vec::new(); 5];
    for o in 0..5 {
        b.push_scope(&format!("out_{}", PORTS[o]));
        let reqs: Vec<SignalId> = (0..5).map(|i| req[i][o]).collect();
        let grants = fixed_priority(b, "arb", &reqs);
        let v = or_tree(b, "valid", &grants);
        let fo = b.onehot_mux("flit", &grants, &fq);
        let nstall = b.inv("nstall", stall_in[o]);
        for (i, &g) in grants.iter().enumerate() {
            let acc = b.and2(&format!("acc_{}", PORTS[i]), g, nstall);
            acc_terms[i].push(acc);
        }
        b.pop_scope();
        flit_out.push(fo);
        valid_out.push(v);
    }

    // An input advances exactly when some output accepted its flit.
    for i in 0..5 {
        b.push_scope(&format!("in_{}", PORTS[i]));
        let acc = or_tree(b, "acc", &acc_terms[i]);
        let nacc = b.inv("nacc", acc);
        b.buf_into("stall_drv", stall_down_pre[i], nacc);
        b.pop_scope();
    }

    b.pop_scope();
    SwitchPorts {
        flit_in,
        valid_in,
        stall_out,
        flit_out,
        valid_out,
        stall_in,
        clocked_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit;
    use sal_des::{Simulator, Time, Value};
    use sal_link::testbench::{
        attach_sync_sink, attach_sync_source, SyncFlitSink, SyncFlitSource,
    };
    use sal_tech::St012Library;

    /// One switch at (1,1): inject from Local, check the flit leaves
    /// through the XY-correct port.
    fn route_once(dest: (u8, u8)) -> usize {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", Time::from_ns(10));
        let sw = build_switch(&mut b, "sw", 32, (1, 1), clk, rstn);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
        );
        // Tie off the four link-side inputs; stall every output so the
        // routed flit parks on its chosen port for inspection.
        for i in 0..4 {
            sim.stimulus(sw.valid_in[i], &[(Time::ZERO, Value::zero(1))]);
            sim.stimulus(sw.flit_in[i], &[(Time::ZERO, Value::zero(32))]);
        }
        for i in 0..5 {
            sim.stimulus(sw.stall_in[i], &[(Time::ZERO, Value::one(1))]);
        }
        let word = flit::pack(32, dest.0, dest.1, 0xBEEF);
        let (src, _) = SyncFlitSource::new(
            clk,
            sw.stall_out[port::L],
            sw.flit_in[port::L],
            sw.valid_in[port::L],
            32,
            vec![word],
        );
        let src = src.with_rstn(rstn);
        attach_sync_source(&mut sim, "src", src, Time::ZERO);
        sim.run_until(Time::from_ns(100)).unwrap();
        let mut hits = Vec::new();
        for (o, name) in PORTS.iter().enumerate() {
            if sim.value(sw.valid_out[o]).is_high() {
                assert_eq!(
                    sim.value(sw.flit_out[o]).to_u64(),
                    Some(word),
                    "wrong flit on port {name}",
                );
                hits.push(o);
            }
        }
        assert_eq!(hits.len(), 1, "flit must sit on exactly one output");
        hits[0]
    }

    #[test]
    fn xy_routing_per_port() {
        assert_eq!(route_once((2, 1)), port::E);
        assert_eq!(route_once((0, 1)), port::W);
        assert_eq!(route_once((2, 3)), port::E); // x first
        assert_eq!(route_once((1, 3)), port::S);
        assert_eq!(route_once((1, 0)), port::N);
        assert_eq!(route_once((1, 1)), port::L);
    }

    #[test]
    fn contention_is_arbitrated_without_loss() {
        // Two inputs (West and Local) both send to the East output;
        // both flits must come out, one per cycle, no duplicates.
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let clk = b.clock("clk", Time::from_ns(10));
        let sw = build_switch(&mut b, "sw", 32, (1, 1), clk, rstn);
        b.finish();
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
        );
        for i in [port::N, port::S, port::E] {
            sim.stimulus(sw.valid_in[i], &[(Time::ZERO, Value::zero(1))]);
            sim.stimulus(sw.flit_in[i], &[(Time::ZERO, Value::zero(32))]);
        }
        for i in [port::N, port::S, port::W, port::L] {
            sim.stimulus(sw.stall_in[i], &[(Time::ZERO, Value::zero(1))]);
        }
        let w1 = flit::pack(32, 3, 1, 0x111);
        let w2 = flit::pack(32, 3, 1, 0x222);
        let (s1, _) = SyncFlitSource::new(
            clk,
            sw.stall_out[port::W],
            sw.flit_in[port::W],
            sw.valid_in[port::W],
            32,
            vec![w1],
        );
        let s1 = s1.with_rstn(rstn);
        attach_sync_source(&mut sim, "s1", s1, Time::ZERO);
        let (s2, _) = SyncFlitSource::new(
            clk,
            sw.stall_out[port::L],
            sw.flit_in[port::L],
            sw.valid_in[port::L],
            32,
            vec![w2],
        );
        let s2 = s2.with_rstn(rstn);
        attach_sync_source(&mut sim, "s2", s2, Time::ZERO);
        let (snk, rx) = SyncFlitSink::new(
            clk,
            sw.valid_out[port::E],
            sw.flit_out[port::E],
            sw.stall_in[port::E],
        );
        attach_sync_sink(&mut sim, "snk", snk, Time::ZERO);
        sim.run_until(Time::from_ns(200)).unwrap();
        let mut got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        got.sort_unstable();
        let mut want = vec![w1, w2];
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
