//! Activity-based power estimation.

use sal_des::{Simulator, Time};

use crate::St012Library;

/// Analytical clock-load power of a synchronous block, µW.
///
/// The simulator models the clock as an ideal source, so the energy
/// the clock *network* burns — flip-flop clock pins, internal clock
/// buffers and the distribution wiring — is added analytically:
///
/// `P = (n_ffs · E_ff + C_tree · V²) · f`
///
/// where `E_ff` is the per-flip-flop per-cycle clock energy from the
/// library and `C_tree` the distribution wire capacitance. This is the
/// term that makes the synchronous link's power grow linearly with
/// both buffer count and clock frequency (paper Figs 12–13), while the
/// asynchronous links have no equivalent cost.
///
/// # Examples
///
/// ```
/// use sal_tech::{clock_power_uw, St012Library};
/// let lib = St012Library::default();
/// let p100 = clock_power_uw(&lib, 66, 1000.0, 100e6);
/// let p300 = clock_power_uw(&lib, 66, 1000.0, 300e6);
/// assert!((p300 / p100 - 3.0).abs() < 1e-9); // linear in f
/// ```
pub fn clock_power_uw(lib: &St012Library, n_ffs: u32, tree_length_um: f64, freq_hz: f64) -> f64 {
    let e_ffs = n_ffs as f64 * lib.clock_energy_per_ff_fj();
    let e_tree = lib.wire.cap_ff(tree_length_um) * lib.vdd * lib.vdd;
    // fJ per cycle × cycles/s = fW; µW = 1e-9 × fW.
    (e_ffs + e_tree) * freq_hz * 1e-9
}

/// One named block's average power over a measurement window.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PowerBreakdown {
    /// `(scope path, average power in µW)`, exclusive per scope.
    pub scopes: Vec<(String, f64)>,
    /// The measurement window length.
    pub window: Time,
}

impl PowerBreakdown {
    /// Total power across all scopes, µW.
    pub fn total_uw(&self) -> f64 {
        self.scopes.iter().map(|(_, p)| p).sum()
    }

    /// Power of the subtree rooted at `prefix` (inclusive), µW.
    pub fn subtree_uw(&self, prefix: &str) -> f64 {
        self.scopes
            .iter()
            .filter(|(p, _)| {
                prefix.is_empty()
                    || p == prefix
                    || (p.starts_with(prefix) && p[prefix.len()..].starts_with('.'))
            })
            .map(|(_, p)| p)
            .sum()
    }
}

/// Measures average power over a simulation window by snapshotting the
/// per-scope energy ledger at window start and end.
///
/// This implements the paper's measurement methodology: "the average
/// of the supply voltage multiplied by the current over the simulation
/// run time" — here, energy accumulated over the window divided by the
/// window length.
///
/// ```no_run
/// # use sal_des::{Simulator, Time};
/// # use sal_tech::PowerMeter;
/// # let mut sim = Simulator::new();
/// let meter = PowerMeter::start(&sim);
/// sim.run_for(Time::from_ns(140))?;
/// let power = meter.finish(&sim);
/// println!("link power: {:.1} µW", power.subtree_uw("link"));
/// # Ok::<(), sal_des::SimError>(())
/// ```
#[derive(Debug)]
pub struct PowerMeter {
    /// Energy ledger at window start, indexed by scope id. Scope paths
    /// are only materialised at [`PowerMeter::finish`]; scopes created
    /// after the snapshot start the window at zero energy.
    start_fj: Vec<f64>,
    start_time: Time,
}

impl PowerMeter {
    /// Snapshots the energy ledger at the start of the window.
    pub fn start(sim: &Simulator) -> Self {
        PowerMeter { start_fj: sim.scope_energies_fj(), start_time: sim.now() }
    }

    /// Ends the window at the simulator's current time and returns the
    /// per-scope average power.
    ///
    /// # Panics
    ///
    /// Panics if no simulated time has elapsed since [`PowerMeter::start`].
    pub fn finish(&self, sim: &Simulator) -> PowerBreakdown {
        let window = sim.now().saturating_sub(self.start_time);
        assert!(!window.is_zero(), "power window has zero length");
        let report = sim.energy_report();
        let scopes = report
            .scopes
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let delta = s.energy_fj - self.start_fj.get(i).copied().unwrap_or(0.0);
                // fJ → J is 1e-15; dividing by seconds gives W; ×1e6 → µW.
                (s.path, delta * 1e-15 / window.as_secs() * 1e6)
            })
            .collect();
        PowerBreakdown { scopes, window }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::Value;

    #[test]
    fn clock_power_linear_in_sinks_and_freq() {
        let lib = St012Library::default();
        let p1 = clock_power_uw(&lib, 33, 0.0, 100e6);
        let p2 = clock_power_uw(&lib, 66, 0.0, 100e6);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        let p3 = clock_power_uw(&lib, 33, 0.0, 300e6);
        assert!((p3 / p1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn clock_power_magnitude_plausible() {
        // 66 FFs (two 33-bit pipeline buffers) at 100 MHz should be in
        // the hundreds-of-µW region per the paper's I1 data.
        let lib = St012Library::default();
        let p = clock_power_uw(&lib, 66, 2000.0, 100e6);
        assert!(p > 100.0 && p < 1000.0, "clock power {p} µW implausible");
    }

    #[test]
    fn power_meter_windows_energy() {
        let mut sim = Simulator::new();
        sim.push_scope("blk");
        let a = sim.add_signal("a", 1);
        sim.set_signal_energy(a, 10.0);
        sim.pop_scope();
        // One toggle per ns for 10 ns.
        let schedule: Vec<(Time, Value)> = (0..=10u64)
            .map(|i| (Time::from_ns(i), Value::from_u64(1, i % 2)))
            .collect();
        sim.stimulus(a, &schedule);
        sim.run_until(Time::from_ns(2)).unwrap();
        let meter = PowerMeter::start(&sim);
        sim.run_until(Time::from_ns(10)).unwrap();
        let p = meter.finish(&sim);
        // 8 toggles × 10 fJ over 8 ns = 10 µW.
        assert!((p.subtree_uw("blk") - 10.0).abs() < 1e-6, "got {}", p.subtree_uw("blk"));
        assert!((p.total_uw() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero length")]
    fn zero_window_panics() {
        let sim = Simulator::new();
        let meter = PowerMeter::start(&sim);
        let _ = meter.finish(&sim);
    }
}
