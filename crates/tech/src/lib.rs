//! # sal-tech — technology and cost models
//!
//! The quantitative layer of the reproduction: a 0.12 µm-flavoured
//! standard-cell datasheet (delays, areas, switching energies), the
//! METAL6 wire geometry used by the paper's wiring-area equation, and
//! the activity-based power estimator that converts simulated toggle
//! counts into the microwatt numbers reported in Figs 12–14.
//!
//! The paper synthesised its links with an ST 0.12 µm library
//! (CORE9GPLL) and measured power with Cadence Spectre. We cannot run
//! either, so this crate substitutes:
//!
//! * **Delays** — anchored to the one datasheet number the paper
//!   quotes (inverter delay 0.011 ns) with the rest scaled by typical
//!   relative cell complexity.
//! * **Areas** — chosen so the gate-level link netlists reproduce the
//!   block areas of Table 2 (the calibration is *structural*: cell
//!   counts come from the netlists, only the per-cell footprint is a
//!   technology constant).
//! * **Energies** — per-bit-toggle switching energies plus an
//!   analytical clock-load term ([`clock_power_uw`]); the single free
//!   scale factor is fixed against the paper's I1 @ 100 MHz, 2-buffer
//!   point, and every other configuration is then *predicted*.
//!
//! See `DESIGN.md` §2 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod library;
mod power;
mod wire;

pub use library::{Corner, St012Library};
pub use power::{clock_power_uw, PowerBreakdown, PowerMeter};
pub use wire::WireModel;
