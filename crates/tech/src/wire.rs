//! Global-metal wire geometry and electricals.

use sal_des::Time;

/// The METAL6 global-layer wire model of the paper's §V plus standard
/// 0.12 µm electrical constants.
///
/// The wiring-area formula is the paper's own:
///
/// ```text
/// AREA = L × (N·MetW + (N+1)·MetG)
/// ```
///
/// with `MetW` = 0.44 µm minimum width and `MetG` = 0.46 µm minimum
/// gap for the ST 0.12 µm METAL6 layer. This reproduces the paper's
/// Fig 11 anchor points exactly (≈7 500 µm² for 8 wires × 1 000 µm,
/// ≈30 000 µm² for 32 wires × 1 000 µm).
///
/// # Examples
///
/// ```
/// use sal_tech::WireModel;
/// let w = WireModel::default();
/// let a8 = w.area_um2(8, 1000.0);
/// let a32 = w.area_um2(32, 1000.0);
/// assert!((a8 - 7660.0).abs() < 1.0);
/// assert!((a32 - 29260.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WireModel {
    /// Minimum metal width, µm (ST 0.12 µm METAL6: 0.44).
    pub met_w_um: f64,
    /// Minimum metal gap, µm (ST 0.12 µm METAL6: 0.46).
    pub met_g_um: f64,
    /// Wire capacitance per µm, fF (typical global metal ≈ 0.2 fF/µm).
    pub cap_ff_per_um: f64,
    /// Wire resistance per µm, Ω (typical global metal ≈ 0.075 Ω/µm).
    pub res_ohm_per_um: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            met_w_um: 0.44,
            met_g_um: 0.46,
            cap_ff_per_um: 0.2,
            res_ohm_per_um: 0.075,
        }
    }
}

impl WireModel {
    /// The paper's wiring-area equation (µm²) for `n` parallel wires of
    /// length `length_um`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `length_um` is negative.
    pub fn area_um2(&self, n: u32, length_um: f64) -> f64 {
        assert!(n > 0, "a link needs at least one wire");
        assert!(length_um >= 0.0, "negative wire length");
        length_um * (n as f64 * self.met_w_um + (n as f64 + 1.0) * self.met_g_um)
    }

    /// Total capacitance of one wire of the given length, fF.
    pub fn cap_ff(&self, length_um: f64) -> f64 {
        self.cap_ff_per_um * length_um
    }

    /// Distributed-RC (Elmore) propagation delay of an unbuffered wire
    /// segment: `0.38 · R · C` with `R`, `C` the total segment
    /// resistance and capacitance — the standard first-order model for
    /// an unrepeated on-chip wire.
    pub fn delay(&self, length_um: f64) -> Time {
        let r = self.res_ohm_per_um * length_um;
        let c = self.cap_ff(length_um) * 1e-15;
        Time::from_ps_f64(0.38 * r * c * 1e12)
    }

    /// Switching energy per full-swing toggle of a wire of the given
    /// length at supply `vdd`, fJ (½·C·V²).
    pub fn toggle_energy_fj(&self, length_um: f64, vdd: f64) -> f64 {
        0.5 * self.cap_ff(length_um) * vdd * vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig11_anchors() {
        let w = WireModel::default();
        // §V: "assuming a wire length of 1000 µm, I3 has a wiring area
        // cost of approximately 7,500 µm² whereas the synchronous link
        // (I1) is approximately 30,000 µm²".
        assert!((w.area_um2(8, 1000.0) - 7660.0).abs() < 1e-6);
        assert!((w.area_um2(32, 1000.0) - 29260.0).abs() < 1e-6);
    }

    #[test]
    fn area_scales_linearly_in_length() {
        let w = WireModel::default();
        let a1 = w.area_um2(8, 500.0);
        let a2 = w.area_um2(8, 1000.0);
        assert!((a2 - 2.0 * a1).abs() < 1e-9);
    }

    #[test]
    fn delay_is_quadratic_in_length() {
        let w = WireModel::default();
        let d1 = w.delay(1000.0).as_ps();
        let d2 = w.delay(2000.0).as_ps();
        assert!((d2 / d1 - 4.0).abs() < 0.05, "expected ~4x, got {}", d2 / d1);
        // 1 mm of global wire: 0.38 × 75 Ω × 200 fF ≈ 5.7 ps.
        assert!(d1 > 3.0 && d1 < 10.0, "1 mm delay {d1} ps out of plausible range");
    }

    #[test]
    fn wire_energy() {
        let w = WireModel::default();
        // 1000 µm at 1.2 V: 0.5 × 200 fF × 1.44 ≈ 144 fJ.
        assert!((w.toggle_energy_fj(1000.0, 1.2) - 144.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_wires_rejected() {
        let _ = WireModel::default().area_um2(0, 100.0);
    }
}
