//! The 0.12 µm-flavoured standard-cell datasheet.

use sal_cells::{CellKind, CellParams, Library};
use sal_des::Time;

use crate::wire::WireModel;

/// A process/voltage/temperature corner of the technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Corner {
    /// Fast silicon, high voltage, low temperature: ~0.8× delays.
    Fast,
    /// The characterised typical corner.
    Typical,
    /// Slow silicon, low voltage, high temperature: ~1.35× delays.
    Slow,
}

impl Corner {
    /// Delay scale factor relative to typical.
    pub fn delay_scale(self) -> f64 {
        match self {
            Corner::Fast => 0.8,
            Corner::Typical => 1.0,
            Corner::Slow => 1.35,
        }
    }

    /// Energy scale factor relative to typical (fast corners burn more
    /// through higher voltage; slow corners less).
    pub fn energy_scale(self) -> f64 {
        match self {
            Corner::Fast => 1.15,
            Corner::Typical => 1.0,
            Corner::Slow => 0.9,
        }
    }
}

/// A standard-cell library modelled on ST's 0.12 µm CORE9GPLL flavour
/// (the technology of the paper's experiments).
///
/// Delays are anchored to the inverter delay the paper quotes from the
/// datasheet (0.011 ns, §V) and scaled by relative drive complexity
/// for other cells. Areas follow typical 0.12 µm cell footprints
/// (track-height 3.6 µm standard cells), tuned once so the full link
/// netlists land on the paper's Table 2 block areas. Energies are
/// per-bit-toggle switching energies at `vdd` = 1.2 V.
///
/// All fields are public so experiments can run technology ablations
/// (e.g. slower or leakier corners); [`St012Library::default`] is the
/// calibrated baseline used throughout the benchmarks.
///
/// # Examples
///
/// ```
/// use sal_cells::{CellKind, Library};
/// use sal_tech::St012Library;
/// let lib = St012Library::default();
/// // The paper's quoted inverter delay: 0.011 ns.
/// assert_eq!(lib.params(CellKind::Inv).delay.as_ps(), 11.0);
/// ```
#[derive(Debug, Clone)]
pub struct St012Library {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Inverter propagation delay, ps (paper: 0.011 ns).
    pub inv_delay_ps: f64,
    /// Uniform scale factor on all cell energies (calibration knob;
    /// 1.0 is the calibrated baseline).
    pub energy_scale: f64,
    /// Uniform scale factor on all cell areas.
    pub area_scale: f64,
    /// The wire/metal model used for loads and wiring area.
    pub wire: WireModel,
}

impl Default for St012Library {
    fn default() -> Self {
        St012Library {
            vdd: 1.2,
            inv_delay_ps: 11.0,
            energy_scale: 1.0,
            // Calibrated once against the paper's Table 2 block-area
            // anchors (sync->async interface 9 408 um^2, deserializer
            // 1 030 um^2, ...): the netlist cell counts come out of the
            // circuits, this factor absorbs the row-utilisation and
            // drive-sizing overhead of the authors' synthesis flow.
            area_scale: 1.3,
            wire: WireModel::default(),
        }
    }
}

impl St012Library {
    /// The library characterised at a process corner: delays and
    /// energies scaled from the typical datasheet. The self-timed
    /// links track the corner automatically (they run as fast as the
    /// silicon allows); a synchronous design's margin is fixed by its
    /// clock — the ablation benchmark quantifies exactly that.
    pub fn at_corner(corner: Corner) -> Self {
        let base = Self::default();
        St012Library {
            inv_delay_ps: base.inv_delay_ps * corner.delay_scale(),
            energy_scale: base.energy_scale * corner.energy_scale(),
            ..base
        }
    }

    /// Relative delay of a cell in inverter-delay units.
    fn rel_delay(kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.8,
            CellKind::Nand(n) | CellKind::Nor(n) => 1.0 + 0.3 * (n as f64 - 2.0) + 0.2,
            CellKind::And(n) | CellKind::Or(n) => 2.0 + 0.3 * (n as f64 - 2.0),
            CellKind::Xor2 | CellKind::Xnor2 => 2.6,
            CellKind::Mux2 => 2.4,
            CellKind::DLatch => 3.0,
            CellKind::Dff => 5.0,
            CellKind::CElement(n) => 2.6 + 0.4 * (n as f64 - 2.0),
            CellKind::DavidCell => 3.2,
            CellKind::Tie => 1.0,
        }
    }

    /// Cell footprint, µm² per bit (0.12 µm, 3.6 µm row height).
    fn base_area(kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv => 4.4,
            CellKind::Buf => 5.9,
            CellKind::Nand(n) | CellKind::Nor(n) => 4.4 + 1.5 * (n as f64 - 2.0) + 1.5,
            CellKind::And(n) | CellKind::Or(n) => 7.3 + 1.5 * (n as f64 - 2.0),
            CellKind::Xor2 | CellKind::Xnor2 => 11.7,
            CellKind::Mux2 => 10.2,
            CellKind::DLatch => 16.1,
            CellKind::Dff => 33.7,
            CellKind::CElement(n) => 13.2 + 2.9 * (n as f64 - 2.0),
            CellKind::DavidCell => 17.6,
            CellKind::Tie => 2.9,
        }
    }

    /// Switching energy per output bit-toggle, fJ, including typical
    /// local interconnect. Sequential cells cost more because their
    /// internal nodes (master stage, local clock inverters) switch
    /// alongside the output.
    fn base_energy(kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv => 1.1,
            CellKind::Buf => 1.9,
            CellKind::Nand(n) | CellKind::Nor(n) => 1.4 + 0.3 * (n as f64 - 2.0),
            CellKind::And(n) | CellKind::Or(n) => 2.1 + 0.3 * (n as f64 - 2.0),
            CellKind::Xor2 | CellKind::Xnor2 => 3.2,
            CellKind::Mux2 => 2.8,
            CellKind::DLatch => 4.6,
            CellKind::Dff => 9.4,
            CellKind::CElement(n) => 3.4 + 0.7 * (n as f64 - 2.0),
            CellKind::DavidCell => 4.8,
            CellKind::Tie => 0.0,
        }
    }

    /// Energy drawn from the clock net per flip-flop per clock *cycle*
    /// (two clock-pin toggles plus internal clock buffering), fJ.
    /// This is the per-sink coefficient of the synchronous link's
    /// dominant power term.
    pub fn clock_energy_per_ff_fj(&self) -> f64 {
        34.0 * self.energy_scale
    }
}

impl Library for St012Library {
    fn params(&self, kind: CellKind) -> CellParams {
        CellParams {
            delay: Time::from_ps_f64(Self::rel_delay(kind) * self.inv_delay_ps),
            area_um2: Self::base_area(kind) * self.area_scale,
            energy_fj: Self::base_energy(kind) * self.energy_scale,
        }
    }

    fn vdd(&self) -> f64 {
        self.vdd
    }

    fn wire_cap_ff_per_um(&self) -> f64 {
        self.wire.cap_ff_per_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_matches_paper_quote() {
        let lib = St012Library::default();
        assert!((lib.params(CellKind::Inv).delay.as_ns() - 0.011).abs() < 1e-9);
    }

    #[test]
    fn ordering_of_cell_complexity() {
        let lib = St012Library::default();
        let d = |k| lib.params(k).delay;
        assert!(d(CellKind::Inv) < d(CellKind::Nand(2)));
        assert!(d(CellKind::Nand(2)) < d(CellKind::Dff));
        let a = |k| lib.params(k).area_um2;
        assert!(a(CellKind::Inv) < a(CellKind::DLatch));
        assert!(a(CellKind::DLatch) < a(CellKind::Dff));
        let e = |k| lib.params(k).energy_fj;
        assert!(e(CellKind::Inv) < e(CellKind::Dff));
    }

    #[test]
    fn arity_scaling_is_monotone() {
        let lib = St012Library::default();
        for mk in [CellKind::And, CellKind::Or, CellKind::Nand, CellKind::Nor] {
            let p2 = lib.params(mk(2));
            let p4 = lib.params(mk(4));
            assert!(p2.delay < p4.delay);
            assert!(p2.area_um2 < p4.area_um2);
        }
        assert!(
            lib.params(CellKind::CElement(2)).area_um2 < lib.params(CellKind::CElement(3)).area_um2
        );
    }

    #[test]
    fn scale_knobs_apply() {
        let lib = St012Library { energy_scale: 2.0, area_scale: 3.0, ..Default::default() };
        let base = St012Library { energy_scale: 1.0, area_scale: 1.0, ..Default::default() };
        let k = CellKind::Nand(2);
        assert!((lib.params(k).energy_fj - 2.0 * base.params(k).energy_fj).abs() < 1e-12);
        assert!((lib.params(k).area_um2 - 3.0 * base.params(k).area_um2).abs() < 1e-12);
    }

    #[test]
    fn corners_scale_delay_and_energy() {
        let fast = St012Library::at_corner(Corner::Fast);
        let slow = St012Library::at_corner(Corner::Slow);
        let typ = St012Library::at_corner(Corner::Typical);
        let d = |l: &St012Library| l.params(CellKind::Inv).delay;
        assert!(d(&fast) < d(&typ));
        assert!(d(&typ) < d(&slow));
        assert_eq!(d(&typ), St012Library::default().params(CellKind::Inv).delay);
        let e = |l: &St012Library| l.params(CellKind::Dff).energy_fj;
        assert!(e(&fast) > e(&typ));
        assert!(e(&slow) < e(&typ));
    }
}