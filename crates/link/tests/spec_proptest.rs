//! Property tests over the `LinkSpec` design space: any spec the
//! validated builder accepts must (a) generate a netlist with zero
//! error-severity lint findings — clean *by construction*, not by
//! per-point curation — and (b) deliver every word intact at zero
//! injected faults. A third property pins the paper points: the three
//! I1/I2/I3 specs replay bit-identically to the committed golden
//! fixture, so the declarative API provably regenerates the exact
//! netlists the measured results were taken from.

use proptest::prelude::*;
use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time, Value};
use sal_link::measure::{run_spec, MeasureOptions};
use sal_link::testbench::{
    attach_sync_sink, attach_sync_source, worst_case_pattern, SyncFlitSink, SyncFlitSource,
};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec, ProtectionMode, RetryConfig};
use sal_lint::run_all;
use std::fmt::Write as _;

/// Strategy over the full valid lattice: every ratio, every integral
/// slice width that keeps the word inside 8..=64, every depth the
/// builder admits, protection and retry where the family allows them.
/// The raw draws are folded to a valid point *by construction* (the
/// vendored proptest has no `prop_filter`); a point the derived-config
/// check rejects falls back to the same geometry unprotected.
fn valid_specs() -> impl Strategy<Value = LinkSpec> {
    ((0usize..3, 0usize..4, 0u64..4096), (1u32..17, 0usize..3, any::<bool>())).prop_map(
        |((family_idx, ratio_idx, slice_seed), (depth, protection_idx, retry))| {
            let family =
                [LinkFamily::Sync, LinkFamily::PerTransfer, LinkFamily::PerWord][family_idx];
            let ratio = [2u8, 4, 8, 16][ratio_idx];
            // The sync family tops out at 63 bits (its parallel bus
            // carries flit+valid in one 64-bit-limited value).
            let max_slice = 64 / ratio - u8::from(family_idx == 0);
            let min_slice = 8u8.div_ceil(ratio);
            let slice = min_slice + (slice_seed % u64::from(max_slice - min_slice + 1)) as u8;
            let protection = if family == LinkFamily::Sync {
                ProtectionMode::Off
            } else {
                [ProtectionMode::Off, ProtectionMode::Parity, ProtectionMode::Crc8]
                    [protection_idx]
            };
            let point = |protection: ProtectionMode, retry: bool| {
                let mut b = LinkSpec::builder()
                    .family(family)
                    .word_width(ratio * slice)
                    .serial_ratio(ratio)
                    .buffer_depth(depth)
                    .protection(protection);
                if retry && protection != ProtectionMode::Off {
                    b = b.retry(RetryConfig::default());
                }
                b.build()
            };
            point(protection, retry).unwrap_or_else(|_| {
                point(ProtectionMode::Off, false)
                    .expect("an unprotected lattice point is always valid")
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// (a) Every valid spec generates a netlist with zero
    /// error-severity lint findings.
    #[test]
    fn every_valid_spec_generates_a_lint_clean_netlist(spec in valid_specs()) {
        let base = LinkConfig::default();
        let mut sim = Simulator::new();
        let lib = sal_tech::St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        generate(&mut b, &spec, "link", &base).expect("valid specs must build");
        b.finish();
        let report = run_all(&sim.netgraph());
        prop_assert!(
            !report.has_errors(),
            "spec {spec:?} generated lint errors:\n{}",
            report.to_text()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// (b) Word in == word out at zero faults, at every design point.
    #[test]
    fn every_valid_spec_round_trips_words_at_zero_faults(spec in valid_specs()) {
        let words = worst_case_pattern(3, spec.word_width());
        let r = run_spec(&spec, &LinkConfig::default(), &words, &MeasureOptions::default())
            .unwrap_or_else(|e| panic!("spec {spec:?} failed a clean run: {e}"));
        prop_assert_eq!(r.received_words(), words, "payload corrupted under {:?}", spec);
        prop_assert!(r.integrity.is_clean(), "integrity flags under {:?}: {}", spec, r.integrity);
    }
}

/// Replays one paper-point spec through the *same* harness the golden
/// fixture was recorded with and serialises the final kernel state in
/// the fixture's format. Mirrors `golden_replay.rs`; the duplication
/// is deliberate — this file proves the *spec-driven* path hits the
/// fixture, independent of how the golden test itself builds links.
fn replay_spec(spec: &LinkSpec) -> String {
    let base = LinkConfig::default();
    let cfg = spec.apply(&base);
    let opts = MeasureOptions::default();
    let words = worst_case_pattern(4, 32);
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let handles = generate(&mut builder, spec, "link", &base).expect("link builds");
    let _area = builder.finish();
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
    );
    let (src, _sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words.clone(),
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(&mut sim, "tb_src", src, Time::ZERO);
    let (snk, received) = SyncFlitSink::new(
        handles.clk,
        handles.valid_out,
        handles.flit_out,
        handles.stall_in,
    );
    attach_sync_sink(&mut sim, "tb_snk", snk, Time::ZERO);
    let slice = cfg.clk_period * 32;
    while received.borrow().len() < words.len() {
        sim.run_for(slice).expect("simulation error");
    }
    let tag = match spec.family() {
        LinkFamily::Sync => "I1Sync",
        LinkFamily::PerTransfer => "I2PerTransfer",
        LinkFamily::PerWord => "I3PerWord",
    };
    let mut out = String::new();
    writeln!(out, "kind={tag}").unwrap();
    writeln!(out, "time_fs={}", sim.now().as_fs()).unwrap();
    writeln!(out, "events={}", sim.events_processed()).unwrap();
    for sig in sim.signal_ids() {
        let info = sim.signal_info(sig);
        writeln!(out, "signal {} value={:?} toggles={}", info.path, info.value, info.toggles)
            .unwrap();
    }
    for s in sim.energy_report().scopes {
        writeln!(out, "scope {} energy_fj={:016x}", s.path, s.energy_fj.to_bits()).unwrap();
    }
    out
}

/// (c) The paper-point specs replay bit-identically to the committed
/// golden fixture: I2 and I3 must reproduce their fixture sections
/// byte for byte (the fixture records only the async links), and I1
/// must replay deterministically through the same spec-driven path.
#[test]
fn paper_point_specs_replay_bit_identical_to_golden_fixture() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/replay.txt");
    let fixture = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with SAL_UPDATE_GOLDEN=1");
    let mut regenerated = String::new();
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        regenerated.push_str(&replay_spec(&LinkSpec::paper(family)));
        regenerated.push('\n');
    }
    assert_eq!(
        regenerated, fixture,
        "spec-driven paper points diverged from the golden fixture"
    );
    assert_eq!(
        replay_spec(&LinkSpec::paper(LinkFamily::Sync)),
        replay_spec(&LinkSpec::paper(LinkFamily::Sync)),
        "the I1 paper point must replay deterministically"
    );
}
