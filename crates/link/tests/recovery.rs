//! End-to-end error-detection and recovery tests: seeded transient
//! glitches on the serialized data wires must be *detected* by the
//! protection layer (parity or CRC), answered with a NACK, and healed
//! by retransmission — every word delivered exactly once, intact,
//! with the recovery counters recording the episode. The same storm
//! against an unprotected link demonstrably corrupts payloads, which
//! is the whole argument for paying for the check bits.

use proptest::prelude::*;
use sal_des::{FaultPlan, Time};
use sal_link::measure::{run_spec, LinkRun, MeasureOptions, RunFailure};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec, ProtectionMode};
/// Spec-based twin of the old `run_link(kind, cfg, ...)` entry point:
/// derives the exact [`LinkSpec`] for `cfg` and measures through the
/// declarative path (identity for every config these tests use).
fn run_link(
    family: LinkFamily,
    cfg: &LinkConfig,
    words: &[u64],
    opts: &MeasureOptions,
) -> Result<LinkRun, RunFailure> {
    let spec = LinkSpec::from_config(family, cfg).expect("test configs are valid specs");
    run_spec(&spec, cfg, words, opts)
}


fn protected(protection: ProtectionMode) -> LinkConfig {
    LinkConfig { protection, ..LinkConfig::default() }
}

fn opts_with(plan: FaultPlan) -> MeasureOptions {
    MeasureOptions {
        timeout: Time::from_us(20),
        fault_plan: Some(plan),
        ..MeasureOptions::default()
    }
}

/// A storm of transient single-bit glitches on one mid-link data
/// segment, spread across the pattern's in-use window so several land
/// on slices actually in flight (the words start flowing a few clock
/// periods after reset, one word cycle per 10 ns switch clock).
///
/// The pulse width matters: the kernel's glitch restores the wire's
/// *pre-upset* value at the end of the window, swallowing any drive
/// that landed inside it. Keeping the width under the slice cadence
/// (~370 ps for I2, ~280 ps for I3) means a glitch corrupts at most
/// one latched slice — the fault class the per-word check is sized
/// for. (A wider upset can swallow a whole word's only data
/// transition and replay the previous word wholesale; no word-local
/// code catches a replayed *valid* word — that residual class is what
/// the chaos campaign's `undetected` bucket exists to count.)
fn data_glitch_storm(path: &str) -> FaultPlan {
    let mut plan = FaultPlan::new(42);
    for k in 0..8u64 {
        plan = plan.glitch(path, Time::from_ns(25 + 9 * k), Time::from_ps(300), 0x08);
    }
    plan
}

#[test]
fn crc_protected_i2_recovers_from_data_glitches() {
    let words = worst_case_pattern(8, 32);
    let r = run_link(
        LinkFamily::PerTransfer,
        &protected(ProtectionMode::Crc8),
        &words,
        &opts_with(data_glitch_storm("link.wire.seg_d2")),
    )
    .expect("protected link must survive transient data glitches");
    assert!(r.integrity.is_clean(), "recovery must deliver every word intact: {}", r.integrity);
    let rec = r.recovery.expect("protected run reports recovery counts");
    assert!(
        rec.nacks >= 1 && rec.retries >= 1,
        "the storm must have been detected and retried at least once: {rec}"
    );
    assert_eq!(rec.gave_up, 0, "a transient glitch never exhausts the retry budget: {rec}");
}

#[test]
fn crc_protected_i3_recovers_from_data_glitches() {
    let words = worst_case_pattern(8, 32);
    let r = run_link(
        LinkFamily::PerWord,
        &protected(ProtectionMode::Crc8),
        &words,
        &opts_with(data_glitch_storm("link.wire.seg_d2")),
    )
    .expect("protected link must survive transient data glitches");
    assert!(r.integrity.is_clean(), "recovery must deliver every word intact: {}", r.integrity);
    let rec = r.recovery.expect("protected run reports recovery counts");
    assert!(
        rec.nacks >= 1 && rec.retries >= 1,
        "the storm must have been detected and retried at least once: {rec}"
    );
}

#[test]
fn parity_protected_i2_recovers_from_data_glitches() {
    // Parity's coverage is odd bit flips inside a latched slice, so
    // the glitches aim mid-word where slices are latched every
    // ~370 ps (a boundary-swallowing upset would replay a stale but
    // parity-*valid* slice — that class needs the CRC).
    let words = worst_case_pattern(8, 32);
    let mut plan = FaultPlan::new(7);
    for k in 0..3u64 {
        plan = plan.glitch(
            "link.wire.seg_d2",
            Time::from_ns(26 + 20 * k) + Time::from_ps(400),
            Time::from_ps(300),
            0x08,
        );
    }
    let r = run_link(LinkFamily::PerTransfer, &protected(ProtectionMode::Parity), &words, &opts_with(plan))
        .expect("parity-protected link must survive single-bit glitches");
    assert!(r.integrity.is_clean(), "{}", r.integrity);
    let rec = r.recovery.expect("protected run reports recovery counts");
    assert!(rec.nacks >= 1, "single-bit flips are exactly what parity catches: {rec}");
}

#[test]
fn unprotected_link_corrupts_under_the_same_storm() {
    // The known-bad companion: the identical storm against the bare
    // link. Handshake wires are untouched so the run usually
    // completes — with wrong payloads only the scoreboard sees.
    let words = worst_case_pattern(8, 32);
    match run_link(
        LinkFamily::PerTransfer,
        &LinkConfig::default(),
        &words,
        &opts_with(data_glitch_storm("link.wire.seg_d2")),
    ) {
        Ok(r) => {
            assert!(
                !r.integrity.is_clean(),
                "the storm was tuned to land on in-flight slices; an unprotected run \
                 sailing through clean means the protected tests above prove nothing: {}",
                r.integrity
            );
            assert!(r.recovery.is_none(), "no recovery layer is built when protection is off");
        }
        // A glitch raced into a latch window can also wedge the
        // four-phase protocol outright; a diagnosed deadlock is an
        // equally damning outcome for the bare link.
        Err(RunFailure::Deadlock { .. }) => {}
        Err(other) => panic!("unexpected failure: {other}"),
    }
}

#[test]
fn i3_spurious_strobe_heals_by_plain_retry() {
    // A glitch on the idle VALID wire injects a spurious slice strobe,
    // so the next burst assembles off-by-one and fails its CRC. The
    // checker's local consumption completes the word handshake, and
    // that acknowledge clears the deserializer's strobe pipeline —
    // realigning it as a side effect — so one NACK-driven
    // retransmission is enough; no resync, no degrade.
    let words = worst_case_pattern(8, 32);
    let plan = FaultPlan::new(9).glitch("link.wire.seg_v2", Time::from_ns(42), Time::from_ps(400), 1);
    let r = run_link(LinkFamily::PerWord, &protected(ProtectionMode::Crc8), &words, &opts_with(plan))
        .expect("a single spurious strobe is healed by retransmission");
    assert!(r.integrity.is_clean(), "all words must still arrive intact: {}", r.integrity);
    let rec = r.recovery.expect("protected run reports recovery counts");
    assert!(rec.nacks >= 1, "the misassembled word must have failed its CRC: {rec}");
    assert_eq!(rec.resyncs, 0, "the ack-driven pipeline clear realigns without a drain: {rec}");
}

#[test]
fn i3_swallowed_strobe_forces_a_resync() {
    // The nastier strobe fault: a glitch window *covering* a valid
    // pulse cancels its edges, so the deserializer under-counts and
    // never presents the word — no NACK is possible because the
    // checker never sees a request. The transmitter's ring-oscillator
    // watchdog times the word out and retries; the retry lands on the
    // leftover half-assembled state, misaligns, and fails its CRC.
    // Two consecutive failures trip the watchdog resync: the
    // return-to-zero drain of the link core realigns the
    // deserializer, the next retry completes, and the controller
    // sticks in degraded per-transfer-ack pacing for the rest of the
    // run — the full escalation ladder in one episode.
    let words = worst_case_pattern(8, 32);
    let plan = FaultPlan::new(9).glitch(
        "link.wire.seg_v2",
        Time::from_ns(47) + Time::from_ps(200),
        Time::from_ps(600),
        1,
    );
    let r = run_link(LinkFamily::PerWord, &protected(ProtectionMode::Crc8), &words, &opts_with(plan))
        .expect("the resync must realign the link and let the run finish");
    assert!(r.integrity.is_clean(), "all words must still arrive intact: {}", r.integrity);
    let rec = r.recovery.expect("protected run reports recovery counts");
    assert!(rec.timeouts >= 1, "a swallowed strobe is only observable as a timeout: {rec}");
    assert!(rec.resyncs >= 1, "the misaligned retry must escalate to a resync: {rec}");
    assert!(rec.degraded, "the first resync permanently degrades the I3 link's pacing: {rec}");
    assert_eq!(rec.gave_up, 0, "the escalation ladder recovers well within the budget: {rec}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// The tentpole property (satellite #4): a seeded transient
    /// glitch on any protected data segment, at any time, never gets
    /// a corrupted word past a CRC-protected I3 link — and never
    /// costs a word either (a single upset is always within the retry
    /// budget). Harmless cases (glitch lands between bursts) pass
    /// trivially; the storm tests above pin down cases known to hit.
    #[test]
    fn crc_protected_i3_never_corrupts_under_data_glitches(
        seg in 0usize..5,
        at_ns in 40u64..400,
        bit in 0u32..8,
        width_ps in 120u64..350,
    ) {
        let words = worst_case_pattern(6, 32);
        let plan = FaultPlan::new(1).glitch(
            &format!("link.wire.seg_d{seg}"),
            Time::from_ns(at_ns),
            Time::from_ps(width_ps),
            1u64 << bit,
        );
        let r = run_link(LinkFamily::PerWord, &protected(ProtectionMode::Crc8), &words, &opts_with(plan));
        match r {
            Ok(r) => {
                prop_assert!(
                    r.integrity.is_clean(),
                    "seg_d{} at {}ns ({}ps wide, bit {}): {}",
                    seg, at_ns, width_ps, bit, r.integrity
                );
            }
            Err(e) => prop_assert!(
                false,
                "seg_d{} at {}ns ({}ps wide, bit {}): run failed: {}",
                seg, at_ns, width_ps, bit, e
            ),
        }
    }
}
