//! Clean-netlist guarantees: every link the repo can build, across
//! the configuration corners the sweeps exercise, must lint with zero
//! error-severity findings — and the static bundled-data margins the
//! timing pass computes must agree with the *simulated* skew margins
//! recorded in `BENCH_robustness.json`.

use sal_cells::CircuitBuilder;
use sal_des::Simulator;
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec, WordRxStyle};
use sal_lint::{run_all, timing_margins, TimingMargin};
use sal_tech::St012Library;

fn lint_of(family: LinkFamily, cfg: &LinkConfig) -> (sal_lint::LintReport, Vec<TimingMargin>) {
    let mut sim = Simulator::new();
    let lib = St012Library::default();
    let mut b = CircuitBuilder::new(&mut sim, &lib);
    let spec = LinkSpec::from_config(family, cfg).expect("corner configs are valid specs");
    generate(&mut b, &spec, "link", cfg).expect("link builds cleanly");
    b.finish();
    let graph = sim.netgraph();
    (run_all(&graph), timing_margins(&graph))
}

/// The configuration corners the robustness and power sweeps visit.
fn corners() -> Vec<(String, LinkConfig)> {
    let base = LinkConfig::default();
    vec![
        ("default".into(), base.clone()),
        ("buffers=2".into(), LinkConfig { buffers: 2, ..base.clone() }),
        ("buffers=8".into(), LinkConfig { buffers: 8, ..base.clone() }),
        ("slice=16".into(), LinkConfig { slice_width: 16, ..base.clone() }),
        ("slice=4".into(), LinkConfig { slice_width: 4, ..base.clone() }),
        (
            "clk=300MHz".into(),
            LinkConfig { clk_period: sal_des::Time::from_ns_f64(10.0 / 3.0), ..base.clone() },
        ),
        (
            "rx=demux".into(),
            LinkConfig { word_rx_style: WordRxStyle::Demux, ..base.clone() },
        ),
        ("early_ack".into(), LinkConfig { early_word_ack: true, ..base }),
    ]
}

#[test]
fn clean_links_have_zero_lint_errors_across_corners() {
    for kind in [LinkFamily::Sync, LinkFamily::PerTransfer, LinkFamily::PerWord] {
        for (label, cfg) in corners() {
            let (report, _) = lint_of(kind, &cfg);
            assert!(
                !report.has_errors(),
                "{} @ {label}: expected zero lint errors, got:\n{}",
                kind.label(),
                report.to_text()
            );
        }
    }
}

#[test]
fn async_links_have_positive_static_margins() {
    for kind in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        for (label, cfg) in corners() {
            let (_, margins) = lint_of(kind, &cfg);
            assert!(
                !margins.is_empty(),
                "{} @ {label}: bundled links must have constrained captures",
                kind.label()
            );
            for m in &margins {
                assert!(
                    m.margin_ps > 0.0,
                    "{} @ {label}: non-positive margin at {} ({:+.1} ps)",
                    kind.label(),
                    m.capture_data,
                    m.margin_ps
                );
            }
        }
    }
}

/// Generated netlists must carry the spec's design point on their
/// bundled-data launch points: every constrained capture of an async
/// link reports the word width and serialization ratio it was
/// generated under, across the corner configurations.
#[test]
fn async_link_margins_carry_generator_params() {
    for kind in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        for (label, cfg) in corners() {
            let spec = LinkSpec::from_config(kind, &cfg).expect("corner configs are valid specs");
            let (_, margins) = lint_of(kind, &cfg);
            for m in &margins {
                let p = m.params.unwrap_or_else(|| {
                    panic!(
                        "{} @ {label}: generated bundle at {} lost its params",
                        kind.label(),
                        m.capture_data
                    )
                });
                assert_eq!(p.word_width, u16::from(spec.word_width()));
                assert_eq!(p.serial_ratio, u16::from(spec.serial_ratio()));
            }
        }
    }
}

#[test]
fn sync_link_is_statically_unconstrained() {
    // I1 has no bundled-data launch points: every capture is clocked.
    let (_, margins) = lint_of(LinkFamily::Sync, &LinkConfig::default());
    assert!(
        margins.is_empty(),
        "I1 must have no bundled captures, got {}",
        margins.len()
    );
}

/// Pulls `"first_failure": {"I1": ..., "I2": ..., "I3": ...}` out of
/// the named section of `BENCH_robustness.json` without a JSON
/// dependency (the vendored serde is a no-op stand-in).
fn first_failures(json: &str, section: &str) -> Option<[Option<f64>; 3]> {
    let sec = json.find(&format!("\"{section}\""))?;
    let ff = json[sec..].find("\"first_failure\"")? + sec;
    let open = json[ff..].find('{')? + ff;
    let close = json[open..].find('}')? + open;
    let body = &json[open + 1..close];
    let mut out = [None, None, None];
    for (i, kind) in ["I1", "I2", "I3"].iter().enumerate() {
        let k = body.find(&format!("\"{kind}\""))?;
        let rest = body[k..].split(':').nth(1)?;
        let val = rest.split([',', '}']).next()?.trim();
        out[i] = val.parse::<f64>().ok();
    }
    Some(out)
}

/// The static margins must tell the same story as the simulated skew
/// sweep: the async serialized links fail within a gate delay or two
/// of injected data-vs-strobe skew (their static margins are small
/// and positive), while the parallel synchronous link tolerates two
/// orders of magnitude more (it is statically unconstrained — its
/// failure mode is the clock period, not a matched delay).
#[test]
fn static_margins_reconcile_with_simulated_robustness() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");
    let Ok(json) = std::fs::read_to_string(path) else {
        eprintln!("BENCH_robustness.json not present; skipping reconciliation");
        return;
    };
    let ff = first_failures(&json, "data_skew_ps")
        .expect("data_skew_ps.first_failure parses");
    let [i1, i2, i3] = ff;

    let cfg = LinkConfig::default();
    let (_, m2) = lint_of(LinkFamily::PerTransfer, &cfg);
    let (_, m3) = lint_of(LinkFamily::PerWord, &cfg);
    let (_, m1) = lint_of(LinkFamily::Sync, &cfg);

    // Sign agreement: simulated-clean links have positive static
    // margins; the simulated first failure is a *positive* amount of
    // injected skew.
    for (label, margins, fail) in [("I2", &m2, i2), ("I3", &m3, i3)] {
        let fail = fail.expect("async links have a finite simulated first failure");
        assert!(fail > 0.0, "{label}: simulated first failure must be positive");
        let min = margins.iter().map(|m| m.margin_ps).fold(f64::INFINITY, f64::min);
        assert!(min > 0.0, "{label}: static margin must be positive (got {min:+.1} ps)");
        // A bundled link cannot statically guarantee more margin than
        // the skew the simulation showed it absorbing. The simulated
        // first failure is the coarse upper bound of the sweep grid.
        assert!(
            min <= 10.0 * fail,
            "{label}: static margin {min:.1} ps wildly exceeds the simulated \
             failure skew {fail:.1} ps — the static model is unsound"
        );
    }

    // Ordering agreement: the sync link's simulated tolerance dwarfs
    // the async links' (it has no bundled captures at all statically).
    let i1 = i1.expect("I1 has a finite simulated first failure");
    let worst_async = i2.unwrap().max(i3.unwrap());
    assert!(
        i1 > 10.0 * worst_async,
        "robustness ordering changed: I1 fails at {i1} ps vs async {worst_async} ps"
    );
    assert!(m1.is_empty(), "I1 grew bundled captures; update this reconciliation");
}
