//! Observability-layer integration tests: determinism of the trace
//! and metrics serialisations, non-empty handshake histograms on a
//! traced I2 run, trace-vs-meter energy reconciliation, and structured
//! behaviour on degenerate runs (single transfer, deadlock).

use sal_des::{FaultPlan, Time};
use sal_link::measure::{run_spec, LinkRun, MeasureOptions, RunFailure, TraceMode};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};
/// Spec-based twin of the old `run_link(kind, cfg, ...)` entry point:
/// derives the exact [`LinkSpec`] for `cfg` and measures through the
/// declarative path (identity for every config these tests use).
fn run_link(
    family: LinkFamily,
    cfg: &LinkConfig,
    words: &[u64],
    opts: &MeasureOptions,
) -> Result<LinkRun, RunFailure> {
    let spec = LinkSpec::from_config(family, cfg).expect("test configs are valid specs");
    run_spec(&spec, cfg, words, opts)
}


fn observed() -> MeasureOptions {
    MeasureOptions::default().with_trace(TraceMode::Full).with_metrics()
}

#[test]
fn two_identical_runs_serialise_byte_identically() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let once = || {
        let r = run_link(LinkFamily::PerTransfer, &cfg, &words, &observed()).expect("clean run");
        let mut jsonl = Vec::new();
        r.trace.as_ref().expect("trace retained").write_jsonl(&mut jsonl).expect("jsonl");
        let metrics_json = r.metrics().expect("metrics computed").to_json();
        (jsonl, metrics_json)
    };
    let (jsonl_a, metrics_a) = once();
    let (jsonl_b, metrics_b) = once();
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "trace JSONL must be byte-identical across runs");
    assert_eq!(metrics_a, metrics_b, "metrics JSON must be byte-identical across runs");
}

#[test]
fn traced_i2_yields_nonempty_histograms_and_reconciled_energy() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let r = run_link(LinkFamily::PerTransfer, &cfg, &words, &observed()).expect("clean run");
    let m = r.metrics().expect("metrics computed");

    // Every watched handshake pair on a clean I2 run completes and
    // accumulates latency samples; word-level pairs see one sample per
    // flit, slice-level pairs one per slice.
    assert!(!m.handshakes.is_empty(), "I2 registers handshake watches");
    for h in &m.handshakes {
        assert!(h.completed > 0, "{}: no completed transactions", h.label);
        assert!(!h.latency.is_empty(), "{}: empty latency histogram", h.label);
        assert!(h.latency.mean_ns() > 0.0, "{}: zero latency", h.label);
        assert!(!h.open, "{}: clean run left a handshake open", h.label);
    }
    let word_level = m.handshakes.iter().find(|h| h.label.ends_with("word")).expect("word pair");
    assert_eq!(word_level.completed, words.len() as u64);

    // Trace-derived per-block power must agree with the power meter's
    // Fig 14 breakdown to within 0.1 % — both count the same toggles.
    let bp = r.block_power();
    for (name, got, want) in [
        ("conv", m.blocks.conv_uw, bp.conv_uw),
        ("serdes", m.blocks.serdes_uw, bp.serdes_uw),
        ("buffers", m.blocks.buffers_uw, bp.buffers_uw),
        ("total", m.blocks.total_uw, bp.total_uw),
    ] {
        let rel = (got - want).abs() / want.abs().max(1e-9);
        assert!(rel < 1e-3, "{name}: trace {got} µW vs meter {want} µW (rel {rel:.2e})");
    }

    // Burst timing: I2 serializes, so the wire strobe must show one
    // rising edge per slice per word.
    let burst = m.burst.as_ref().expect("I2 has a wire strobe");
    assert_eq!(burst.slices, (words.len() * cfg.slices()) as u64);
    assert!(burst.gap.mean_ns() > 0.0);

    // Occupancy and profiling sanity.
    assert!(m.occupancy.busy_fraction > 0.0 && m.occupancy.busy_fraction <= 1.0);
    assert!(m.in_flight.max >= 1);
    assert!(r.profile.commits > 0 && r.profile.events > 0);
    assert_eq!(m.events, r.events);
}

#[test]
fn i1_has_no_burst_but_still_attributes_energy() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let r = run_link(LinkFamily::Sync, &cfg, &words, &observed()).expect("clean run");
    let m = r.metrics().expect("metrics computed");
    assert!(m.burst.is_none(), "I1 does not serialize");
    assert!(m.blocks.buffers_uw > 0.0, "clocked pipeline buffers must switch");
    let bp = r.block_power();
    let rel = (m.blocks.total_uw - bp.total_uw).abs() / bp.total_uw.max(1e-9);
    assert!(rel < 1e-3, "trace {} vs meter {}", m.blocks.total_uw, bp.total_uw);
}

#[test]
fn single_transfer_run_has_single_sample_histograms() {
    let cfg = LinkConfig::default();
    let r = run_link(LinkFamily::PerWord, &cfg, &[0xDEAD_BEEF], &observed()).expect("clean run");
    let m = r.metrics().expect("metrics computed");
    let word = m.handshakes.iter().find(|h| h.label.ends_with("word")).expect("word pair");
    assert_eq!(word.completed, 1);
    assert_eq!(word.latency.count(), 1);
    // A single req↑ has no successor: the cycle histogram stays empty.
    assert!(word.cycle.is_empty());
    assert_eq!(word.latency.min_ns(), word.latency.max_ns());
}

#[test]
fn deadlocked_run_stays_structured_with_tracing_enabled() {
    // Same wedge as the robustness suite, but with the trace hook
    // installed: observability must not change the failure semantics.
    let plan = FaultPlan::new(7).stuck_at("link.ack_in2", false, Time::from_ns(5));
    let opts = observed().with_fault_plan(plan).with_timeout(Time::from_us(5));
    let words = worst_case_pattern(4, 32);
    match run_link(LinkFamily::PerTransfer, &LinkConfig::default(), &words, &opts) {
        Err(RunFailure::Deadlock { diagnosis, delivered, expected, .. }) => {
            assert!(delivered < expected);
            assert!(diagnosis.is_some(), "watchdog diagnosis survives tracing");
        }
        other => panic!("expected a deadlock, got: {other:?}"),
    }
}

#[test]
fn compiled_i2_run_populates_compiled_profile_counters() {
    // The compiled-engine counters are part of the observability
    // contract: a default (compiled) I2 run must report how many cones
    // were built, how often they fired and how many per-gate events
    // that avoided — and an interpreted run of the same link must
    // report zeros, with identical delivery either way.
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let compiled = run_link(LinkFamily::PerTransfer, &cfg, &words, &observed()).expect("clean run");
    let interpreted =
        run_link(LinkFamily::PerTransfer, &cfg, &words, &observed().without_compile())
            .expect("clean run");

    assert!(compiled.profile.cones_built > 0, "compiled run built no cones");
    assert!(compiled.profile.cone_evals > 0, "compiled run never fired a cone");
    assert!(compiled.profile.events_avoided > 0, "compiled run avoided no events");
    assert_eq!(interpreted.profile.cones_built, 0);
    assert_eq!(interpreted.profile.cone_evals, 0);
    assert_eq!(interpreted.profile.events_avoided, 0);

    // Neither run is a sliced campaign: the lane counters stay zero
    // until a slice pass is sealed (covered by the sal-bench suite).
    assert_eq!(compiled.profile.lanes_active, 0);
    assert_eq!(compiled.profile.scalar_fallbacks, 0);

    // The engines agree behaviorally even though the counters differ.
    assert_eq!(compiled.received, interpreted.received);
    assert_eq!(compiled.sent, interpreted.sent);
    assert_eq!(compiled.profile.commits, interpreted.profile.commits);
}

#[test]
fn traced_run_exports_vcd() {
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(2, 32);
    let opts = MeasureOptions::default().with_trace(TraceMode::Full);
    let r = run_link(LinkFamily::PerWord, &cfg, &words, &opts).expect("clean run");
    let mut vcd = Vec::new();
    r.trace.as_ref().expect("trace retained").write_vcd(&mut vcd).expect("vcd");
    let text = String::from_utf8(vcd).expect("utf8");
    assert!(text.contains("$timescale 1 fs $end"));
    assert!(text.contains("$scope module link"));
    assert!(text.contains("$dumpvars"));
}

#[test]
fn untraced_runs_are_unperturbed_by_the_hook() {
    // The golden-replay fixture pins untraced determinism globally;
    // here we additionally check a traced run against an untraced one:
    // same timeline, same delivery, same event count.
    let cfg = LinkConfig::default();
    let words = worst_case_pattern(4, 32);
    let plain = run_link(LinkFamily::PerTransfer, &cfg, &words, &MeasureOptions::default())
        .expect("clean run");
    let traced =
        run_link(LinkFamily::PerTransfer, &cfg, &words, &observed()).expect("clean run");
    assert_eq!(plain.sent, traced.sent);
    assert_eq!(plain.received, traced.received);
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain.in_use, traced.in_use);
}
