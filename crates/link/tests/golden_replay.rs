//! Golden-replay determinism: a full gate-level link run must
//! reproduce *byte-identical* kernel state — event count, every final
//! signal value and toggle count, and every per-scope energy total —
//! against a fixture checked into the repository.
//!
//! This pins the kernel's (time, seq) ordering contract across
//! refactors of the event queue and commit path: any change that
//! reorders same-timestamp commits, drops or duplicates evaluations,
//! or perturbs energy accounting shows up as a one-line diff here.
//!
//! Regenerate the fixture (after an *intentional* behaviour change)
//! with:
//!
//! ```text
//! SAL_UPDATE_GOLDEN=1 cargo test -p sal-link --test golden_replay
//! ```

use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time, Value};
use sal_link::measure::MeasureOptions;
use sal_link::testbench::{
    attach_sync_sink, attach_sync_source, worst_case_pattern, SyncFlitSink, SyncFlitSource,
};
use sal_link::{build_link, LinkConfig, LinkKind};
use std::fmt::Write as _;

/// Runs one link end to end and serialises the final kernel state.
/// Energies are printed as `f64::to_bits` hex so the comparison is
/// bit-exact, immune to formatting rounding.
fn replay(kind: LinkKind) -> String {
    replay_with(kind, true, false)
}

fn replay_with(kind: LinkKind, empty_plan: bool, compiled: bool) -> String {
    let cfg = LinkConfig::default();
    let opts = MeasureOptions::default();
    let words = worst_case_pattern(4, 32);
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let handles = build_link(&mut builder, kind, "link", &cfg).expect("link builds");
    let _area = builder.finish();
    // An *empty* fault plan must be a no-op: the kernel keeps its
    // fault-free fast path, so the fixture stays byte-identical.
    if empty_plan {
        sim.apply_fault_plan(&sal_des::FaultPlan::new(42)).expect("empty plan applies");
    }
    if compiled {
        assert!(sim.compile() > 0, "a link netlist has combinational cells to compile");
    }
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
    );
    let (src, _sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words.clone(),
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(&mut sim, "tb_src", src, Time::ZERO);
    let (snk, received) = SyncFlitSink::new(
        handles.clk,
        handles.valid_out,
        handles.flit_out,
        handles.stall_in,
    );
    attach_sync_sink(&mut sim, "tb_snk", snk, Time::ZERO);
    let slice = cfg.clk_period * 32;
    while received.borrow().len() < words.len() {
        sim.run_for(slice).expect("simulation error");
    }
    let mut out = String::new();
    writeln!(out, "kind={kind:?}").unwrap();
    writeln!(out, "time_fs={}", sim.now().as_fs()).unwrap();
    writeln!(out, "events={}", sim.events_processed()).unwrap();
    for sig in sim.signal_ids() {
        let info = sim.signal_info(sig);
        writeln!(
            out,
            "signal {} value={:?} toggles={}",
            info.path, info.value, info.toggles
        )
        .unwrap();
    }
    for s in sim.energy_report().scopes {
        writeln!(out, "scope {} energy_fj={:016x}", s.path, s.energy_fj.to_bits()).unwrap();
    }
    out
}

#[test]
fn golden_replay_i2_and_i3() {
    let mut full = String::new();
    for kind in [LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
        full.push_str(&replay(kind));
        full.push('\n');
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/replay.txt");
    if std::env::var("SAL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &full).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with SAL_UPDATE_GOLDEN=1");
    assert_eq!(
        full, expected,
        "link replay diverged from the golden fixture \
         (SAL_UPDATE_GOLDEN=1 regenerates it if the change is intentional)"
    );
}

#[test]
fn replay_is_deterministic_within_process() {
    assert_eq!(replay(LinkKind::I2PerTransfer), replay(LinkKind::I2PerTransfer));
    assert_eq!(replay(LinkKind::I3PerWord), replay(LinkKind::I3PerWord));
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    for kind in [LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
        assert_eq!(
            replay_with(kind, true, false),
            replay_with(kind, false, false),
            "an empty FaultPlan must not perturb the kernel"
        );
    }
}

/// The tentpole equivalence gate: compiled execution must reproduce
/// the interpreted kernel's observable state byte for byte — event
/// count, every signal's final value and toggle count, every scope
/// energy — on full I2 and I3 link runs. Anything the golden fixture
/// pins for the interpreted kernel is thereby pinned for the compiled
/// engine too.
#[test]
fn compiled_replay_is_bit_identical_to_interpreted() {
    for kind in [LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
        assert_eq!(
            replay_with(kind, true, false),
            replay_with(kind, true, true),
            "compiled execution diverged from interpreted on {kind:?}"
        );
    }
}
