//! Golden-replay determinism: a full gate-level link run must
//! reproduce *byte-identical* kernel state — event count, every final
//! signal value and toggle count, and every per-scope energy total —
//! against a fixture checked into the repository.
//!
//! This pins the kernel's (time, seq) ordering contract across
//! refactors of the event queue and commit path: any change that
//! reorders same-timestamp commits, drops or duplicates evaluations,
//! or perturbs energy accounting shows up as a one-line diff here.
//!
//! Regenerate the fixture (after an *intentional* behaviour change)
//! with:
//!
//! ```text
//! SAL_UPDATE_GOLDEN=1 cargo test -p sal-link --test golden_replay
//! ```

use sal_cells::CircuitBuilder;
use sal_des::{Simulator, Time, Value};
use sal_link::measure::MeasureOptions;
use sal_link::testbench::{
    attach_sync_sink, attach_sync_source, worst_case_pattern, SyncFlitSink, SyncFlitSource,
};
use sal_link::{generate, LinkConfig, LinkFamily, LinkSpec};
use std::fmt::Write as _;

/// The fixture's historical section tag for a family (the debug name
/// of the removed pre-spec `LinkKind` enum); kept so the committed
/// golden file stays byte-identical across the `LinkSpec` API
/// redesign.
fn tag(family: LinkFamily) -> &'static str {
    match family {
        LinkFamily::Sync => "I1Sync",
        LinkFamily::PerTransfer => "I2PerTransfer",
        LinkFamily::PerWord => "I3PerWord",
    }
}

/// Runs one link end to end and serialises the final kernel state.
/// Energies are printed as `f64::to_bits` hex so the comparison is
/// bit-exact, immune to formatting rounding.
fn replay(family: LinkFamily) -> String {
    replay_with(&LinkSpec::paper(family), true, false)
}

fn replay_with(spec: &LinkSpec, empty_plan: bool, compiled: bool) -> String {
    let base = LinkConfig::default();
    let cfg = spec.apply(&base);
    let opts = MeasureOptions::default();
    let words = worst_case_pattern(4, 32);
    let mut sim = Simulator::new();
    let mut builder = CircuitBuilder::new(&mut sim, &opts.lib);
    let handles = generate(&mut builder, spec, "link", &base).expect("link builds");
    let _area = builder.finish();
    // An *empty* fault plan must be a no-op: the kernel keeps its
    // fault-free fast path, so the fixture stays byte-identical.
    if empty_plan {
        sim.apply_fault_plan(&sal_des::FaultPlan::new(42)).expect("empty plan applies");
    }
    if compiled {
        assert!(sim.compile() > 0, "a link netlist has combinational cells to compile");
    }
    sim.stimulus(
        handles.rstn,
        &[(Time::ZERO, Value::zero(1)), (Time::from_ns(2), Value::one(1))],
    );
    let (src, _sent) = SyncFlitSource::new(
        handles.clk,
        handles.stall_out,
        handles.flit_in,
        handles.valid_in,
        cfg.flit_width,
        words.clone(),
    );
    let src = src.with_rstn(handles.rstn);
    attach_sync_source(&mut sim, "tb_src", src, Time::ZERO);
    let (snk, received) = SyncFlitSink::new(
        handles.clk,
        handles.valid_out,
        handles.flit_out,
        handles.stall_in,
    );
    attach_sync_sink(&mut sim, "tb_snk", snk, Time::ZERO);
    let slice = cfg.clk_period * 32;
    while received.borrow().len() < words.len() {
        sim.run_for(slice).expect("simulation error");
    }
    let mut out = String::new();
    writeln!(out, "kind={}", tag(spec.family())).unwrap();
    writeln!(out, "time_fs={}", sim.now().as_fs()).unwrap();
    writeln!(out, "events={}", sim.events_processed()).unwrap();
    for sig in sim.signal_ids() {
        let info = sim.signal_info(sig);
        writeln!(
            out,
            "signal {} value={:?} toggles={}",
            info.path, info.value, info.toggles
        )
        .unwrap();
    }
    for s in sim.energy_report().scopes {
        writeln!(out, "scope {} energy_fj={:016x}", s.path, s.energy_fj.to_bits()).unwrap();
    }
    out
}

#[test]
fn golden_replay_i2_and_i3() {
    let mut full = String::new();
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        full.push_str(&replay(family));
        full.push('\n');
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/replay.txt");
    if std::env::var("SAL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &full).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden fixture missing; regenerate with SAL_UPDATE_GOLDEN=1");
    assert_eq!(
        full, expected,
        "link replay diverged from the golden fixture \
         (SAL_UPDATE_GOLDEN=1 regenerates it if the change is intentional)"
    );
}

#[test]
fn replay_is_deterministic_within_process() {
    assert_eq!(replay(LinkFamily::PerTransfer), replay(LinkFamily::PerTransfer));
    assert_eq!(replay(LinkFamily::PerWord), replay(LinkFamily::PerWord));
}

/// The paper points expressed three ways — `LinkSpec::paper`, the
/// builder at the paper's numbers, and `from_config` on the default
/// configuration — must be one spec and replay to one kernel state.
#[test]
fn paper_spec_builder_and_from_config_replay_identically() {
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let paper = LinkSpec::paper(family);
        let built = LinkSpec::builder()
            .family(family)
            .word_width(32)
            .serial_ratio(4)
            .buffer_depth(4)
            .build()
            .expect("the paper point is a valid spec");
        let derived = LinkSpec::from_config(family, &LinkConfig::default())
            .expect("the default config sits on the spec lattice");
        assert_eq!(paper, built);
        assert_eq!(paper, derived);
        assert_eq!(paper.content_hash(), derived.content_hash());
        assert_eq!(
            replay_with(&paper, true, false),
            replay_with(&built, true, false),
            "equal specs must replay bit-identically"
        );
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let spec = LinkSpec::paper(family);
        assert_eq!(
            replay_with(&spec, true, false),
            replay_with(&spec, false, false),
            "an empty FaultPlan must not perturb the kernel"
        );
    }
}

/// The tentpole equivalence gate: compiled execution must reproduce
/// the interpreted kernel's observable state byte for byte — event
/// count, every signal's final value and toggle count, every scope
/// energy — on full I2 and I3 link runs. Anything the golden fixture
/// pins for the interpreted kernel is thereby pinned for the compiled
/// engine too.
#[test]
fn compiled_replay_is_bit_identical_to_interpreted() {
    for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let spec = LinkSpec::paper(family);
        assert_eq!(
            replay_with(&spec, true, false),
            replay_with(&spec, true, true),
            "compiled execution diverged from interpreted on {family:?}"
        );
    }
}
