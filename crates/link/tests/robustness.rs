//! Fault-injection robustness tests: the handshake watchdog turns a
//! wedged link into a structured diagnosis, the integrity scoreboard
//! catches silently corrupted payloads, and seeded fault runs are
//! bit-reproducible.

use sal_des::{FaultPlan, Time};
use sal_link::measure::{run_spec, LinkRun, MeasureOptions, RunFailure};
use sal_link::testbench::worst_case_pattern;
use sal_link::{LinkConfig, LinkFamily, LinkSpec};
/// Spec-based twin of the old `run_link(kind, cfg, ...)` entry point:
/// derives the exact [`LinkSpec`] for `cfg` and measures through the
/// declarative path (identity for every config these tests use).
fn run_link(
    family: LinkFamily,
    cfg: &LinkConfig,
    words: &[u64],
    opts: &MeasureOptions,
) -> Result<LinkRun, RunFailure> {
    let spec = LinkSpec::from_config(family, cfg).expect("test configs are valid specs");
    run_spec(&spec, cfg, words, opts)
}


fn opts_with(plan: FaultPlan) -> MeasureOptions {
    MeasureOptions {
        // Fail fast: a wedged link never recovers, no need to wait the
        // default 50 µs before diagnosing.
        timeout: Time::from_us(5),
        fault_plan: Some(plan),
        ..MeasureOptions::default()
    }
}

#[test]
fn i2_ack_stuck_at_is_diagnosed_not_a_bare_panic() {
    // Wedge the slice acknowledge heard by wire buffer 1 (`ack_in2` is
    // driven back from buffer 2). The four-phase protocol can never
    // complete its return-to-zero, so the link must stall — and the
    // watchdog must say *where*, not just that an event limit or
    // timeout was hit.
    let plan = FaultPlan::new(7).stuck_at("link.ack_in2", false, Time::from_ns(5));
    let words = worst_case_pattern(4, 32);
    let cfg = LinkConfig::default();
    match run_link(LinkFamily::PerTransfer, &cfg, &words, &opts_with(plan)) {
        Err(RunFailure::Deadlock { diagnosis, delivered, expected, .. }) => {
            assert!(delivered < expected, "stall must lose words");
            let report = diagnosis.expect("watchdog should recognise the wedged handshake");
            let text = report.to_string();
            assert!(
                report.stalled.iter().any(|s| s.label.contains("buf") || s.label.contains("ser")),
                "diagnosis should name a slice-level handshake, got: {text}"
            );
        }
        Ok(run) => panic!(
            "expected a deadlock, but the run completed ({})",
            run.integrity
        ),
        Err(other) => panic!("expected a deadlock diagnosis, got: {other}"),
    }
}

#[test]
fn unknown_fault_target_is_rejected() {
    let plan = FaultPlan::new(1).stuck_at("link.no_such_wire", false, Time::ZERO);
    let words = worst_case_pattern(2, 32);
    let cfg = LinkConfig::default();
    match run_link(LinkFamily::PerTransfer, &cfg, &words, &opts_with(plan)) {
        Err(RunFailure::Fault(e)) => assert!(e.to_string().contains("no_such_wire")),
        other => panic!("expected a fault-plan rejection, got: {other:?}"),
    }
}

#[test]
fn scoreboard_flags_corrupted_payloads() {
    // Freeze the first data segment of the I2 wire mid-run: handshakes
    // keep completing (req/ack wires untouched) but the payload stops
    // following the serializer, so delivered words go wrong. The run
    // "succeeds" by word count — only the scoreboard sees the damage.
    let plan = FaultPlan::new(3).stuck_at("link.wire.seg_d0", false, Time::from_ns(5));
    let words = worst_case_pattern(4, 32);
    let cfg = LinkConfig::default();
    match run_link(LinkFamily::PerTransfer, &cfg, &words, &opts_with(plan)) {
        Ok(run) => {
            assert!(
                !run.integrity.is_clean(),
                "frozen data wire must corrupt payloads: {}",
                run.integrity
            );
            assert!(run.integrity.corrupted > 0, "{}", run.integrity);
        }
        // Depending on where the freeze lands in the protocol the
        // dropped data edge can also stall completion detection; a
        // *diagnosed* deadlock is an acceptable outcome too.
        Err(RunFailure::Deadlock { .. }) => {}
        Err(other) => panic!("unexpected failure: {other}"),
    }
}

#[test]
fn clean_run_has_clean_scoreboard() {
    let words = worst_case_pattern(4, 32);
    let cfg = LinkConfig::default();
    for kind in [LinkFamily::Sync, LinkFamily::PerTransfer, LinkFamily::PerWord] {
        let run = run_link(kind, &cfg, &words, &MeasureOptions::default())
            .expect("clean run completes");
        assert!(run.integrity.is_clean(), "{}: {}", kind.label(), run.integrity);
    }
}

#[test]
fn seeded_fault_runs_are_bit_reproducible() {
    // Monte-Carlo delay variation with a fixed seed must give the same
    // delivery timeline and the same energy totals on every run.
    let words = worst_case_pattern(4, 32);
    let cfg = LinkConfig::default();
    let mk = || {
        let plan = FaultPlan::new(12345)
            .with_delay_sigma(0.05)
            .in_scope("link.ser")
            .in_scope("link.des")
            .in_scope("link.wire");
        run_link(LinkFamily::PerTransfer, &cfg, &words, &opts_with(plan))
            .expect("mild sigma should not break the link")
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.received, b.received);
    assert_eq!(a.events, b.events);
    // A different seed must still complete (I2's four-phase protocol
    // tolerates delay variation) but perturb the run — the kernel
    // event count is a sensitive fingerprint of the internal timeline
    // even when delivery lands on the same clock edges.
    let plan = FaultPlan::new(99999)
        .with_delay_sigma(0.20)
        .in_scope("link.ser")
        .in_scope("link.des")
        .in_scope("link.wire");
    let c = run_link(LinkFamily::PerTransfer, &cfg, &words, &opts_with(plan))
        .expect("sigma within margin should not break the link");
    assert!(c.integrity.is_clean(), "{}", c.integrity);
    assert_ne!(
        (a.events, a.received.clone()),
        (c.events, c.received.clone()),
        "sigma had no observable effect"
    );
}
