//! The asynchronous wire buffer of link I2: a simple four-phase latch
//! controller (Furber & Day 1996) around a word-wide data latch.
//!
//! Per the paper (§III): *"It essentially latches the data on the
//! falling edge of REQIN. The C-Element regulates the request and
//! acknowledge handshaking safely. … the REQIN/ACKOUT side is not
//! fully de-coupled from REQOUT/ACKIN side. If several of the
//! wire-buffers are chained together then at best only every other
//! buffer in the chain will be in use at a time."* Both properties
//! hold for this implementation (the half-occupancy is exercised in
//! the tests below).

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

/// Ports of one wire buffer stage.
#[derive(Debug, Clone, Copy)]
pub struct WireBufferPorts {
    /// Acknowledge to the previous stage (the controller state).
    pub ack_to_prev: SignalId,
    /// Latched data to the next stage.
    pub dout: SignalId,
    /// Request to the next stage.
    pub reqout: SignalId,
}

/// Builds one four-phase wire buffer inside its own scope.
///
/// `din`/`reqin` come from the previous stage; `ack_from_next` is the
/// next stage's acknowledge (pre-declare it when building a chain —
/// acknowledge wires point against the build direction).
///
/// The controller is a single resettable C-element: its output rises
/// when a request is present and the downstream acknowledge has
/// returned to zero, which simultaneously closes the data latch
/// (capture), acknowledges upstream and forwards the request; it
/// falls when the request is withdrawn and downstream has
/// acknowledged, reopening the latch.
pub fn build_wire_buffer(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    din: SignalId,
    reqin: SignalId,
    ack_from_next: SignalId,
    rstn: SignalId,
) -> WireBufferPorts {
    b.push_scope(name);
    let nack = b.inv("nack", ack_from_next);
    // Latch controller state: rises on (reqin high, ack_next low);
    // doubles as the acknowledge to the previous stage.
    let lt = b.celement2("lt", reqin, nack, Some(rstn), false);
    // Latch is transparent while the controller is low. The enable is
    // delayed through a small matched chain: when the controller
    // *falls* (handshake complete) the latch must not reopen — letting
    // the next word race through — before the request's falling edge
    // has propagated downstream and closed the receiver's capture
    // window (the hold-time side of the bundled-data constraint).
    let en_i = b.inv("en_i", lt);
    let en = b.buf_chain("en", en_i, 2);
    let dout = b.dlatch("dout", din, en, None);
    // Static-timing capture point: `en` falling closes the latch over
    // `din`; the lint's timing pass checks the slice data beats it
    // here from the serializer's launch.
    b.sim().register_capture(din, en);
    // Matched delay on the forwarded request: the request must reach
    // the next stage no earlier than the data it is bundled with.
    let reqout = b.buf_chain("req_dly", lt, 2);
    b.pop_scope();
    WireBufferPorts { ack_to_prev: lt, dout, reqout }
}

/// Builds a chain of `n` wire buffers with direct (zero-length)
/// connections, for tests and short links. Returns the downstream end
/// ports, the acknowledge heard by the chain's *driver*, and the
/// pre-declared acknowledge signal the last stage listens to (to be
/// driven by the receiver via
/// [`buf_into`](sal_cells::CircuitBuilder::buf_into) or a transport).
pub fn build_wire_buffer_chain(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    din: SignalId,
    reqin: SignalId,
    rstn: SignalId,
    n: u32,
) -> (WireBufferPorts, SignalId, SignalId) {
    assert!(n >= 1, "chain needs at least one buffer");
    // Pre-declare the ack each stage listens to; acks_in[k] is driven
    // by stage k+1 (or by the receiver for the last stage).
    let acks_in: Vec<SignalId> =
        (0..n).map(|k| b.input(&format!("{name}_ackin{k}"), 1)).collect();
    let mut d = din;
    let mut r = reqin;
    let mut first_ack = None;
    let mut last = None;
    for k in 0..n as usize {
        let ports = build_wire_buffer(b, &format!("{name}{k}"), d, r, acks_in[k], rstn);
        if k == 0 {
            first_ack = Some(ports.ack_to_prev);
        } else {
            b.buf_into(&format!("{name}_ackdrv{k}"), acks_in[k - 1], ports.ack_to_prev);
        }
        d = ports.dout;
        r = ports.reqout;
        last = Some(ports);
    }
    (
        last.expect("n >= 1"),
        first_ack.expect("n >= 1"),
        acks_in[n as usize - 1],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbench::{attach_consumer, attach_producer, HsConsumer, HsProducer};
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    fn reset(sim: &mut Simulator, rstn: SignalId) {
        sim.stimulus(
            rstn,
            &[(Time::ZERO, Value::zero(1)), (Time::from_ps(200), Value::one(1))],
        );
    }

    #[test]
    fn single_buffer_passes_words() {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", 8);
        let reqin = b.input("reqin", 1);
        let ack_next = b.input("ack_next", 1);
        let ports = build_wire_buffer(&mut b, "buf0", din, reqin, ack_next, rstn);
        b.finish();
        reset(&mut sim, rstn);
        let words = vec![0xA5, 0x5A, 0x0F, 0xF0, 0x81];
        let (p, _) = HsProducer::new(reqin, din, ports.ack_to_prev, 8, words.clone());
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(ports.reqout, ports.dout, ack_next);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_ns(100)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
    }

    #[test]
    fn chain_of_buffers_preserves_order_and_data() {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", 8);
        let reqin = b.input("reqin", 1);
        let (end, ack_first, ack_end) =
            build_wire_buffer_chain(&mut b, "buf", din, reqin, rstn, 4);
        b.finish();
        reset(&mut sim, rstn);
        let words = vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66];
        let (p, _) = HsProducer::new(reqin, din, ack_first, 8, words.clone());
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(end.reqout, end.dout, ack_end);
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_ns(300)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
    }

    #[test]
    fn slow_consumer_backpressures_chain() {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", 8);
        let reqin = b.input("reqin", 1);
        let (end, ack_first, ack_end) =
            build_wire_buffer_chain(&mut b, "buf", din, reqin, rstn, 2);
        b.finish();
        reset(&mut sim, rstn);
        let words = vec![1, 2, 3];
        let (p, sent) = HsProducer::new(reqin, din, ack_first, 8, words.clone());
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        let (c, rx) = HsConsumer::new(end.reqout, end.dout, ack_end);
        let c = c.with_ack_delay(Time::from_ns(20));
        attach_consumer(&mut sim, "cons", c, Time::ZERO);
        sim.run_until(Time::from_ns(400)).unwrap();
        let got: Vec<u64> = rx.borrow().iter().map(|&(_, w)| w).collect();
        assert_eq!(got, words);
        // Producer had to pace to the consumer's ~40 ns handshake.
        let times: Vec<Time> = sent.borrow().iter().map(|&(t, _)| t).collect();
        assert!(times[2] - times[1] >= Time::from_ns(20), "no backpressure observed");
    }

    #[test]
    fn half_occupancy_of_adjacent_buffers() {
        // The paper notes adjacent buffers are never both "full":
        // with a stalled consumer, a 4-deep chain holds at most 2 words
        // in alternating stages (controller high = holding).
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", 8);
        let reqin = b.input("reqin", 1);
        let (_end, ack_first, ack_end) =
            build_wire_buffer_chain(&mut b, "buf", din, reqin, rstn, 4);
        b.finish();
        reset(&mut sim, rstn);
        // Consumer absent: never acknowledge (keep the line at 0).
        sim.stimulus(ack_end, &[(Time::ZERO, Value::zero(1))]);
        let words = vec![1, 2, 3, 4];
        let (p, sent) = HsProducer::new(reqin, din, ack_first, 8, words);
        attach_producer(&mut sim, "prod", p, Time::from_ns(1));
        sim.run_until(Time::from_ns(200)).unwrap();
        // Count holding stages: controller outputs high.
        let holding: u32 = (0..4)
            .map(|k| {
                let lt = sim.signal_by_path(&format!("buf{k}.lt")).unwrap();
                u32::from(sim.value(lt).is_high())
            })
            .sum();
        assert_eq!(holding, 2, "expected exactly every other buffer occupied");
        // The producer got 2 words in; its 3rd request hangs unacked
        // (the log records request attempts, so it shows 3).
        assert_eq!(sent.borrow().len(), 3);
    }
}
