//! Gate-level error detection for the serialized word.
//!
//! The protection layer widens the word the link core serializes with
//! check bits computed by real XOR cells on the transmit side
//! ([`build_protector`]) and verified on the receive side
//! ([`build_checker`]):
//!
//! * **Parity** — one check bit per slice, interleaved so every wire
//!   slice carries its own parity (`n+1` wires per slice). Detects any
//!   odd number of flips within a slice — in particular every
//!   single-wire glitch.
//! * **CRC-8** — polynomial `x⁸+x²+x+1` (0x07) over the whole word,
//!   appended as a trailing check byte that rides the wire as ordinary
//!   extra slices. Because CRC is linear over GF(2), each check bit is
//!   a fixed XOR of message bits; the masks are precomputed in
//!   software and synthesized as balanced XOR trees.
//!
//! The checker also runs the receive-side *word protocol*: a word that
//! verifies clean is offered to the async→sync interface, while a
//! corrupted word is consumed locally (a self-acknowledge David cell
//! completes the deserializer's handshake so the link core never sees
//! anything unusual) and a NACK pulse is launched on the dedicated
//! backward wire. Retransmission is then just an ordinary repeat of
//! the word transfer — no mid-protocol state surgery.

use sal_cells::CircuitBuilder;
use sal_des::SignalId;

use crate::{LinkConfig, ProtectionMode};

/// Receive-side ports of the protection checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckerPorts {
    /// The recovered (unwidened) data word for the async→sync
    /// interface.
    pub dout: SignalId,
    /// Word request to the interface — raised only for words that
    /// verify clean.
    pub reqout: SignalId,
    /// Acknowledge back to the deserializer: the interface's ack for
    /// clean words, the local self-acknowledge for corrupted ones.
    pub ack_down: SignalId,
    /// NACK launched toward the transmitter when a corrupted word is
    /// consumed. Self-clearing after a fixed pulse width so neither
    /// end has to hand-shake it (the pulse comfortably covers the
    /// transmitter's decision window — the ACK trails it through the
    /// deserializer's release cascade plus a matched delay).
    pub nack: SignalId,
}

/// CRC-8 (poly 0x07, MSB-first, zero init) of the low `m` bits of
/// `word`. The software reference the gate-level trees are derived
/// from — and checked against in tests.
pub(crate) fn crc8_of(word: u64, m: u8) -> u8 {
    let mut crc = 0u8;
    for i in (0..m).rev() {
        let bit = ((word >> i) & 1) as u8;
        let fb = (crc >> 7) ^ bit;
        crc <<= 1;
        if fb != 0 {
            crc ^= 0x07;
        }
    }
    crc
}

/// Per-check-bit XOR masks over an `m`-bit message: CRC is linear, so
/// `crc8_of(w) == ⊕ {bit j of crc8_of(1<<i) for every set bit i of w}`
/// — each check bit `j` is the XOR of the message bits selected by
/// `masks[j]`.
pub(crate) fn crc8_masks(m: u8) -> [u64; 8] {
    let mut masks = [0u64; 8];
    for i in 0..m {
        let c = crc8_of(1u64 << i, m);
        for (j, mask) in masks.iter_mut().enumerate() {
            if (c >> j) & 1 == 1 {
                *mask |= 1 << i;
            }
        }
    }
    masks
}

/// Depth in gate levels of a balanced 2-input reduction over `n`
/// inputs (0 for a single input).
fn tree_depth(n: usize) -> usize {
    let mut depth = 0;
    let mut w = n.max(1);
    while w > 1 {
        w = w.div_ceil(2);
        depth += 1;
    }
    depth
}

/// One-bit views of `bus[lo .. lo+width]`.
fn bit_slices(
    b: &mut CircuitBuilder<'_>,
    prefix: &str,
    bus: SignalId,
    lo: u8,
    width: u8,
) -> Vec<SignalId> {
    (0..width).map(|j| b.slice(&format!("{prefix}{j}"), bus, lo + j, 1)).collect()
}

/// Worst-case settle depth of the check logic in gate levels, used to
/// match the request delay against the data cone on both sides.
fn check_depth(cfg: &LinkConfig) -> usize {
    match cfg.protection {
        ProtectionMode::Off => 0,
        // parity tree + compare + error OR tree
        ProtectionMode::Parity => {
            tree_depth(cfg.slice_width as usize) + 1 + tree_depth(cfg.slices())
        }
        ProtectionMode::Crc8 => tree_depth(cfg.flit_width as usize) + 1 + tree_depth(8),
    }
}

/// Builds the transmit-side check-bit generator in scope `name`:
/// widens the `flit_width`-bit `din` to the protected word and delays
/// `reqin` by a matched buffer chain covering the XOR-tree settle
/// time, preserving the bundled-data constraint into the serializer.
/// Returns `(protected word, matched request)`.
pub(crate) fn build_protector(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    reqin: SignalId,
) -> (SignalId, SignalId) {
    let n = cfg.slice_width;
    b.push_scope(name);
    let dout = match cfg.protection {
        ProtectionMode::Off => din,
        ProtectionMode::Parity => {
            // Interleave: protected slice i = [data slice i, parity_i].
            let mut parts = Vec::new();
            for i in 0..cfg.slices() as u8 {
                let data = b.slice(&format!("s{i}"), din, i * n, n);
                let bits = bit_slices(b, &format!("s{i}b"), din, i * n, n);
                let parity = b.xor_tree(&format!("p{i}"), &bits);
                parts.push(data);
                parts.push(parity);
            }
            b.concat("dout", &parts)
        }
        ProtectionMode::Crc8 => {
            let bits = bit_slices(b, "d", din, 0, cfg.flit_width);
            let masks = crc8_masks(cfg.flit_width);
            let mut parts = vec![din];
            for (j, &mask) in masks.iter().enumerate() {
                let sel: Vec<SignalId> = bits
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| (mask >> i) & 1 == 1)
                    .map(|(_, &s)| s)
                    .collect();
                parts.push(b.xor_tree(&format!("c{j}"), &sel));
            }
            b.concat("dout", &parts)
        }
    };
    // Matched request delay: XOR trees are one gate per level; one
    // extra buffer restores the margin the serializer was sized for.
    let req = b.buf_chain("req_m", reqin, check_depth(cfg) + 1);
    b.pop_scope();
    (dout, req)
}

/// Gate levels the checker needs after the deserializer presents a
/// word before `err` is trustworthy (check logic + decision gating).
fn checker_req_delay(cfg: &LinkConfig) -> usize {
    check_depth(cfg) + 2
}

/// Width of the self-clearing NACK pulse in buffer delays. Long
/// enough that the transmitter — whose ACK arrives several gate
/// delays *after* the NACK (deserializer release cascade) plus its
/// own sampling delay — reliably observes the pulse, short enough to
/// clear well before any retransmission completes.
const NACK_PULSE_BUFS: usize = 16;

/// Builds the receive-side checker and word-protocol guard in scope
/// `name`. `din`/`reqin` are the deserializer's protected word
/// channel; `ack_up` is the (pre-declared) acknowledge from the
/// async→sync interface; `rstn` is the receive-side core reset (a
/// resync drain clears the guard's state cells too).
pub(crate) fn build_checker(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
    din: SignalId,
    reqin: SignalId,
    ack_up: SignalId,
    rstn: SignalId,
) -> CheckerPorts {
    let n = cfg.slice_width;
    b.push_scope(name);
    let (dout, err) = match cfg.protection {
        ProtectionMode::Parity => {
            let mut slices = Vec::new();
            let mut mismatches = Vec::new();
            let wide = n + 1;
            for i in 0..cfg.slices() as u8 {
                let data = b.slice(&format!("s{i}"), din, i * wide, n);
                slices.push(data);
                let bits = bit_slices(b, &format!("s{i}b"), din, i * wide, n);
                let recomputed = b.xor_tree(&format!("p{i}"), &bits);
                let received = b.slice(&format!("rp{i}"), din, i * wide + n, 1);
                mismatches.push(b.xor2(&format!("m{i}"), recomputed, received));
            }
            (b.concat("dout", &slices), b.or_tree("err", &mismatches))
        }
        ProtectionMode::Crc8 => {
            let data = b.slice("data", din, 0, cfg.flit_width);
            let bits = bit_slices(b, "d", din, 0, cfg.flit_width);
            let masks = crc8_masks(cfg.flit_width);
            let mut mismatches = Vec::new();
            for (j, &mask) in masks.iter().enumerate() {
                let sel: Vec<SignalId> = bits
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| (mask >> i) & 1 == 1)
                    .map(|(_, &s)| s)
                    .collect();
                let recomputed = b.xor_tree(&format!("c{j}"), &sel);
                let received = b.slice(&format!("rc{j}"), din, cfg.flit_width + j as u8, 1);
                mismatches.push(b.xor2(&format!("m{j}"), recomputed, received));
            }
            (data, b.or_tree("err", &mismatches))
        }
        ProtectionMode::Off => (din, b.tie("err", sal_des::Value::zero(1))),
    };

    // The deserializer freezes the word while its request is up, so
    // `err` is stable once the check logic settles; delaying the
    // request by the settle depth removes the decision race at the
    // request's rising edge. The *live* request gates the decision
    // too: once the deserializer withdraws (acknowledged word, data
    // register released), the delayed copy still holds for the settle
    // depth while `err` recomputes on the released data — without the
    // live term that window lets a freshly consumed bad word fire a
    // spurious `req_good` (the interface latches garbage) or a good
    // word fire a spurious NACK. The and-gate answers the withdrawal
    // in one gate delay; the check trees need several to move.
    let req_d0 = b.buf_chain("req_d", reqin, checker_req_delay(cfg));
    let req_d = b.and2("req_live", req_d0, reqin);
    let err_n = b.inv("err_n", err);
    let reqout = b.and2("req_good", req_d, err_n);
    let bad = b.and2("bad", req_d, err);

    // A corrupted word is consumed locally: the self-acknowledge
    // completes the deserializer's word handshake (four-phase — held
    // until the request withdraws), so the link core's state advances
    // exactly as for a delivered word.
    let nreq = b.inv("nreq", reqin);
    let selfack = b.david_cell("selfack", bad, nreq, Some(rstn), false);
    let ack_down = b.or2("ack_down", ack_up, selfack);

    // The NACK is a self-clearing pulse: set with the consumption of
    // the bad word, cleared by its own delayed copy.
    let nack = b.input("nack", 1);
    let nack_tail = b.buf_chain("nack_tail", nack, NACK_PULSE_BUFS);
    b.david_cell_into("nack", nack, bad, nack_tail, Some(rstn), false);

    b.pop_scope();
    CheckerPorts { dout, reqout, ack_down, nack }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_des::{Simulator, Time, Value};
    use sal_tech::St012Library;

    #[test]
    fn crc8_masks_reproduce_the_reference() {
        let masks = crc8_masks(32);
        for word in [0u64, 1, 0xA5A5_A5A5, 0xFFFF_FFFF, 0x1234_5678, 0xDEAD_BEEF] {
            let direct = crc8_of(word, 32);
            let via_masks = masks
                .iter()
                .enumerate()
                .fold(0u8, |acc, (j, &m)| acc | ((((word & m).count_ones() % 2) as u8) << j));
            assert_eq!(direct, via_masks, "word {word:#x}");
        }
        // CRC-8 detects single-bit flips anywhere in the word.
        for i in 0..32 {
            assert_ne!(crc8_of(0x1234_5678, 32), crc8_of(0x1234_5678 ^ (1 << i), 32));
        }
    }

    fn protect_value(cfg: &LinkConfig, word: u64) -> u64 {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let din = b.input("din", cfg.flit_width);
        let req = b.input("req", 1);
        let (dout, _req_m) = build_protector(&mut b, "prot", cfg, din, req);
        b.finish();
        sim.stimulus(din, &[(Time::ZERO, Value::from_u64(cfg.flit_width, word))]);
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1))]);
        sim.run_until(Time::from_ns(2)).unwrap();
        sim.value(dout).to_u64().expect("protected word fully driven")
    }

    fn check_value(cfg: &LinkConfig, protected: u64) -> (u64, bool) {
        let mut sim = Simulator::new();
        let lib = St012Library::default();
        let mut b = CircuitBuilder::new(&mut sim, &lib);
        let rstn = b.input("rstn", 1);
        let din = b.input("din", cfg.protected_width());
        let req = b.input("req", 1);
        let ack_up = b.input("ack_up", 1);
        let ports = build_checker(&mut b, "chk", cfg, din, req, ack_up, rstn);
        // The guard cells want their inputs resolved.
        b.finish();
        sim.stimulus(rstn, &[(Time::ZERO, Value::zero(1)), (Time::from_ps(100), Value::one(1))]);
        sim.stimulus(
            din,
            &[(Time::ZERO, Value::from_u64(cfg.protected_width(), protected))],
        );
        sim.stimulus(req, &[(Time::ZERO, Value::zero(1))]);
        sim.stimulus(ack_up, &[(Time::ZERO, Value::zero(1))]);
        sim.run_until(Time::from_ns(2)).unwrap();
        let data = sim.value(ports.dout).to_u64().expect("data fully driven");
        // `err` is internal; the observable verdict is which request
        // would fire. With req held low both are low, so read the
        // recomputed error through the guard by raising req.
        (data, sim.value(ports.nack).is_high())
    }

    #[test]
    fn parity_round_trip_is_clean_and_flips_are_caught() {
        let cfg = LinkConfig { protection: ProtectionMode::Parity, ..LinkConfig::default() };
        for word in [0u64, 0xFFFF_FFFF, 0xA5A5_5A5A, 0x0000_0001] {
            let protected = protect_value(&cfg, word);
            let (data, _) = check_value(&cfg, protected);
            assert_eq!(data, word, "clean round trip");
            // Software cross-check of the layout: every 9-bit slice
            // carries even total parity.
            for i in 0..4 {
                let slice = (protected >> (i * 9)) & 0x1FF;
                assert_eq!(slice.count_ones() % 2, 0, "slice {i} parity");
            }
        }
    }

    #[test]
    fn crc_round_trip_matches_software_reference() {
        let cfg = LinkConfig { protection: ProtectionMode::Crc8, ..LinkConfig::default() };
        for word in [0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let protected = protect_value(&cfg, word);
            assert_eq!(protected & 0xFFFF_FFFF, word);
            assert_eq!((protected >> 32) as u8, crc8_of(word, 32), "gate CRC == software CRC");
            let (data, _) = check_value(&cfg, protected);
            assert_eq!(data, word);
        }
    }
}
