//! Full link assemblies: I1, I2 and I3 as evaluated in the paper's
//! Fig 9, with wire segments, block scopes matching the Fig 14 power
//! breakdown, and the bookkeeping the measurement layer needs.

use sal_cells::{BuildError, CircuitBuilder};
use sal_des::{SignalId, Time};

use crate::{
    build_as_interface, build_deserializer, build_sa_interface, build_serializer,
    build_sync_pipeline, build_wire_buffer, build_word_deserializer,
    build_word_deserializer_demux, build_word_deserializer_early, build_word_serializer,
    LinkConfig, WordRxStyle,
};

/// Which of the paper's three implementations a handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum LinkKind {
    /// I1 — fully synchronous parallel link.
    I1Sync,
    /// I2 — asynchronous serialized, per-transfer acknowledgement.
    I2PerTransfer,
    /// I3 — asynchronous serialized, per-word acknowledgement.
    I3PerWord,
}

impl LinkKind {
    /// The paper's label (I1/I2/I3).
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::I1Sync => "I1",
            LinkKind::I2PerTransfer => "I2",
            LinkKind::I3PerWord => "I3",
        }
    }

    /// Number of switch-to-switch wires this link needs.
    pub fn wires(self, cfg: &LinkConfig) -> u32 {
        match self {
            LinkKind::I1Sync => cfg.wires_sync(),
            _ => cfg.wires_async(),
        }
    }
}

/// Everything the testbench and the measurement layer need to drive a
/// built link.
#[derive(Debug, Clone)]
pub struct LinkHandles {
    /// Which implementation was built.
    pub kind: LinkKind,
    /// The switch clock (shared by both ends, as in the paper).
    pub clk: SignalId,
    /// Global active-low reset (testbench-driven).
    pub rstn: SignalId,
    /// Flit input from the sending switch.
    pub flit_in: SignalId,
    /// Valid input from the sending switch.
    pub valid_in: SignalId,
    /// Backpressure to the sending switch.
    pub stall_out: SignalId,
    /// Flit output to the receiving switch.
    pub flit_out: SignalId,
    /// Valid output to the receiving switch.
    pub valid_out: SignalId,
    /// Backpressure from the receiving switch (testbench-driven).
    pub stall_in: SignalId,
    /// Root scope of the link instance (energy/area queries).
    pub scope: String,
    /// Free-running clock sinks per block scope, for the analytical
    /// clock power term: `(scope path, flip-flop bits)`.
    pub clock_sinks: Vec<(String, u32)>,
    /// Estimated clock distribution length, µm.
    pub clock_tree_um: f64,
}

fn seg_params(b: &CircuitBuilder<'_>, cfg: &LinkConfig) -> (Time, f64) {
    let lib = b.library();
    let seg = cfg.segment_um();
    let vdd = lib.vdd();
    let energy = 0.5 * lib.wire_cap_ff_per_um() * seg * vdd * vdd;
    // First-order distributed RC for one segment.
    let r = 0.075 * seg;
    let c = lib.wire_cap_ff_per_um() * seg * 1e-15;
    let delay = Time::from_ps_f64((0.38 * r * c * 1e12).max(0.001));
    (delay, energy)
}

/// Maps a configuration failure into the builder error channel,
/// preserving the typed cause's message.
fn check_cfg(cfg: &LinkConfig) -> Result<(), BuildError> {
    cfg.check().map_err(BuildError::from)
}

/// Builds the synchronous reference link I1 in scope `name`.
///
/// The sending switch drives `flit_in`/`valid_in`; `cfg.buffers`
/// elastic clocked buffers carry them across `cfg.length_um` of wire
/// with full VALID/STALL flow control.
///
/// Returns the first netlist-construction or configuration error
/// instead of panicking, so sweeps can probe unbuildable corners.
pub(crate) fn build_i1(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);
    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let ports = build_sync_pipeline(b, "buffers", cfg, clk, rstn, flit_in, valid_in);
    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        kind: LinkKind::I1Sync,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: ports.stall_out,
        flit_out: ports.flit_out,
        valid_out: ports.valid_out,
        stall_in: ports.stall_in,
        scope: name.to_string(),
        clock_sinks: vec![(format!("{name}.buffers"), ports.clocked_bits)],
        clock_tree_um: cfg.length_um,
    })
}

/// Builds the proposed asynchronous serialized link with per-transfer
/// acknowledgement (I2) in scope `name`: sync→async interface,
/// serializer, `cfg.buffers` four-phase wire buffers with wire
/// segments between them, deserializer, async→sync interface.
///
/// Every four-phase req/ack pair along the link is registered with the
/// kernel's handshake watchdog, so a wedged transfer yields a
/// [`DeadlockReport`](sal_des::DeadlockReport) naming the stage.
pub(crate) fn build_i2(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let (seg_delay, seg_energy_per_um_bit) = seg_params(b, cfg);
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);

    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let stall_in = b.input("stall_in", 1);

    // Word-level acknowledge wires (pre-declared feedback).
    let ack_word_tx = b.input("ack_word_tx", 1);
    let ack_word_rx = b.input("ack_word_rx", 1);

    let tx = build_sa_interface(b, "tx_if", cfg, clk, rstn, flit_in, valid_in, ack_word_tx);

    // Slice-level acknowledge each stage listens to: acks_in[k] is
    // heard by stage k-1 (acks_in[0] by the serializer).
    let nstations = cfg.buffers as usize;
    let acks_in: Vec<SignalId> =
        (0..=nstations).map(|k| b.input(&format!("ack_in{k}"), 1)).collect();

    let ser = build_serializer(b, "ser", cfg, tx.dout, tx.reqout, acks_in[0], rstn);
    b.buf_into("ack_word_tx_drv", ack_word_tx, ser.ackout);
    b.sim().watch_handshake(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx);
    b.sim().watch_handshake(&format!("{name}.ser slice"), ser.reqout, acks_in[0]);

    // Wire with buffers: segment → buffer → segment → … → segment.
    b.push_scope("wire");
    let mut d = b.transport("seg_d0", ser.dout, seg_delay, seg_energy_per_um_bit);
    let mut r = b.transport("seg_r0", ser.reqout, seg_delay, seg_energy_per_um_bit);
    for k in 0..nstations {
        let ports = build_wire_buffer(b, &format!("buf{k}"), d, r, acks_in[k + 1], rstn);
        // Watch the stage boundary as the *upstream* side experiences
        // it: its transported request against the transported
        // acknowledge it listens to. A fault anywhere along the return
        // path then shows up at the boundary that actually starves.
        b.sim().watch_handshake(&format!("{name}.wire.buf{k} slice"), r, acks_in[k]);
        // The acknowledge travels back over segment k.
        b.transport_into(
            &format!("seg_a{k}"),
            acks_in[k],
            ports.ack_to_prev,
            seg_delay,
            seg_energy_per_um_bit,
        );
        d = b.transport(&format!("seg_d{}", k + 1), ports.dout, seg_delay, seg_energy_per_um_bit);
        r = b.transport(&format!("seg_r{}", k + 1), ports.reqout, seg_delay, seg_energy_per_um_bit);
    }
    b.pop_scope();

    let des = build_deserializer(b, "des", cfg, d, r, ack_word_rx, rstn);
    b.transport_into(
        &format!("seg_a{nstations}"),
        acks_in[nstations],
        des.ackout,
        seg_delay,
        seg_energy_per_um_bit,
    );

    let rx = build_as_interface(b, "rx_if", cfg, clk, rstn, des.dout, des.reqout, stall_in);
    b.buf_into("ack_word_rx_drv", ack_word_rx, rx.ackout);
    b.sim().watch_handshake(&format!("{name}.des slice"), r, acks_in[nstations]);
    b.sim().watch_handshake(&format!("{name}.des word"), des.reqout, ack_word_rx);

    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        kind: LinkKind::I2PerTransfer,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: tx.stall,
        flit_out: rx.flit_out,
        valid_out: rx.valid_out,
        stall_in,
        scope: name.to_string(),
        clock_sinks: vec![
            (format!("{name}.tx_if"), tx.clocked_bits),
            (format!("{name}.rx_if"), rx.clocked_bits),
        ],
        // The interfaces sit at the switches; only a short local clock
        // stub is needed (no clocked elements along the wire).
        clock_tree_um: 200.0,
    })
}

/// Builds the proposed asynchronous serialized link with per-word
/// acknowledgement (I3) in scope `name`: the wire "buffers" are plain
/// inverter pairs on the data/valid wires, and a single acknowledge
/// wire (also repeated) returns once per word.
///
/// The word-level handshakes at both interfaces are registered with
/// the kernel's handshake watchdog (the burst itself is
/// source-synchronous and has no per-slice handshake to watch).
pub(crate) fn build_i3(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let (seg_delay, seg_energy) = seg_params(b, cfg);
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);

    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let stall_in = b.input("stall_in", 1);

    let ack_word_tx = b.input("ack_word_tx", 1);
    let ack_word_rx = b.input("ack_word_rx", 1);
    // The per-word acknowledge as heard by the transmitter.
    let ack_back_heard = b.input("ack_back_heard", 1);

    let tx = build_sa_interface(b, "tx_if", cfg, clk, rstn, flit_in, valid_in, ack_word_tx);
    let ser = build_word_serializer(b, "ser", cfg, tx.dout, tx.reqout, ack_back_heard, rstn);
    b.buf_into("ack_word_tx_drv", ack_word_tx, ser.ackout);
    b.sim().watch_handshake(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx);

    // Forward wire: data + valid through inverter-pair stations.
    b.push_scope("wire");
    let nstations = cfg.buffers as usize;
    let mut d = b.transport("seg_d0", ser.dout, seg_delay, seg_energy);
    let mut v = b.transport("seg_v0", ser.valid, seg_delay, seg_energy);
    for k in 0..nstations {
        let d1 = b.inv(&format!("rep_d{k}a"), d);
        let d2 = b.inv(&format!("rep_d{k}b"), d1);
        let v1 = b.inv(&format!("rep_v{k}a"), v);
        let v2 = b.inv(&format!("rep_v{k}b"), v1);
        d = b.transport(&format!("seg_d{}", k + 1), d2, seg_delay, seg_energy);
        v = b.transport(&format!("seg_v{}", k + 1), v2, seg_delay, seg_energy);
    }
    b.pop_scope();

    let des = match (cfg.early_word_ack, cfg.word_rx_style) {
        (true, _) => build_word_deserializer_early(b, "des", cfg, d, v, ack_word_rx, rstn),
        (false, WordRxStyle::ShiftRegister) => {
            build_word_deserializer(b, "des", cfg, d, v, ack_word_rx, rstn)
        }
        (false, WordRxStyle::Demux) => {
            build_word_deserializer_demux(b, "des", cfg, d, v, ack_word_rx, rstn)
        }
    };

    // Backward acknowledge wire through the same stations.
    b.push_scope("wire");
    let mut ab = b.transport("seg_ab0", des.ack_back, seg_delay, seg_energy);
    for k in 0..nstations {
        let a1 = b.inv(&format!("rep_ab{k}a"), ab);
        let a2 = b.inv(&format!("rep_ab{k}b"), a1);
        ab = if k + 1 < nstations {
            b.transport(&format!("seg_ab{}", k + 1), a2, seg_delay, seg_energy)
        } else {
            a2
        };
    }
    b.transport_into("seg_ab_last", ack_back_heard, ab, seg_delay, seg_energy);
    b.pop_scope();

    let rx = build_as_interface(b, "rx_if", cfg, clk, rstn, des.dout, des.reqout, stall_in);
    b.buf_into("ack_word_rx_drv", ack_word_rx, rx.ackout);
    b.sim().watch_handshake(&format!("{name}.des word"), des.reqout, ack_word_rx);

    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        kind: LinkKind::I3PerWord,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: tx.stall,
        flit_out: rx.flit_out,
        valid_out: rx.valid_out,
        stall_in,
        scope: name.to_string(),
        clock_sinks: vec![
            (format!("{name}.tx_if"), tx.clocked_bits),
            (format!("{name}.rx_if"), rx.clocked_bits),
        ],
        clock_tree_um: 200.0,
    })
}

/// Builds a link of the given kind in scope `name` — the single
/// public constructor for all three implementations (sweeps select
/// via [`LinkKind`]).
pub fn build_link(
    b: &mut CircuitBuilder<'_>,
    kind: LinkKind,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    let handles = match kind {
        LinkKind::I1Sync => build_i1(b, name, cfg),
        LinkKind::I2PerTransfer => build_i2(b, name, cfg),
        LinkKind::I3PerWord => build_i3(b, name, cfg),
    }?;
    // In debug builds (every test run), fail fast on netlists that
    // violate the structural invariants the links rely on. The lint
    // passes only read the connectivity snapshot — they never touch
    // kernel state — so a linted netlist replays bit-identically.
    #[cfg(debug_assertions)]
    {
        let report = sal_lint::run_all(&b.sim().netgraph());
        if report.has_errors() {
            let summary: Vec<String> = report
                .errors()
                .map(|f| format!("[{}] {}: {}", f.pass, f.path, f.message))
                .collect();
            return Err(BuildError::Config {
                message: format!(
                    "netlist lint found {} error(s): {}",
                    summary.len(),
                    summary.join("; ")
                ),
            });
        }
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{run, MeasureOptions};
    use crate::testbench::worst_case_pattern;

    #[test]
    fn i1_transfers_worst_case_pattern() {
        let cfg = LinkConfig::default();
        let r = run(LinkKind::I1Sync, &cfg, &worst_case_pattern(4, 32), &MeasureOptions::default())
            .expect("clean run");
        assert_eq!(r.received_words(), worst_case_pattern(4, 32));
    }

    #[test]
    fn i2_transfers_worst_case_pattern() {
        let cfg = LinkConfig::default();
        let r = run(
            LinkKind::I2PerTransfer,
            &cfg,
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        )
        .expect("clean run");
        assert_eq!(r.received_words(), worst_case_pattern(4, 32));
    }

    #[test]
    fn i3_transfers_worst_case_pattern() {
        let cfg = LinkConfig::default();
        let r = run(
            LinkKind::I3PerWord,
            &cfg,
            &worst_case_pattern(4, 32),
            &MeasureOptions::default(),
        )
        .expect("clean run");
        assert_eq!(r.received_words(), worst_case_pattern(4, 32));
    }

    #[test]
    fn all_links_all_buffer_counts() {
        for kind in [LinkKind::I1Sync, LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
            for buffers in [2u32, 4, 6, 8] {
                let cfg = LinkConfig { buffers, ..LinkConfig::default() };
                let words = worst_case_pattern(4, 32);
                let r = run(kind, &cfg, &words, &MeasureOptions::default())
                    .expect("clean run");
                assert_eq!(
                    r.received_words(),
                    words,
                    "{} with {buffers} buffers corrupted data",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn async_links_survive_300mhz_switch_clock() {
        let cfg = LinkConfig {
            clk_period: sal_des::Time::from_ns_f64(10.0 / 3.0),
            ..LinkConfig::default()
        };
        for kind in [LinkKind::I2PerTransfer, LinkKind::I3PerWord] {
            let words: Vec<u64> = (0..12).map(|i| (i * 0x2468_ACE1) & 0xFFFF_FFFF).collect();
            let r = run(kind, &cfg, &words, &MeasureOptions::default())
                .expect("clean run");
            assert_eq!(r.received_words(), words, "{}", kind.label());
        }
    }
}
