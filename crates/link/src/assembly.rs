//! Full link assemblies: I1, I2 and I3 as evaluated in the paper's
//! Fig 9, with wire segments, block scopes matching the Fig 14 power
//! breakdown, and the bookkeeping the measurement layer needs.

use sal_cells::{BuildError, CircuitBuilder};
use sal_des::{SignalId, Time};

use crate::protect::{build_checker, build_protector};
use crate::retry::{build_retry, RetryPorts};
use crate::spec::LinkFamily;
use crate::{
    build_as_interface, build_deserializer, build_sa_interface, build_serializer,
    build_sync_pipeline, build_wire_buffer, build_word_deserializer,
    build_word_deserializer_demux, build_word_deserializer_early, build_word_serializer,
    LinkConfig, ProtectionMode, RecoverySignals, WordRxStyle,
};

/// Everything the testbench and the measurement layer need to drive a
/// built link.
#[derive(Debug, Clone)]
pub struct LinkHandles {
    /// Which link family was built.
    pub family: LinkFamily,
    /// The switch clock (shared by both ends, as in the paper).
    pub clk: SignalId,
    /// Global active-low reset (testbench-driven).
    pub rstn: SignalId,
    /// Flit input from the sending switch.
    pub flit_in: SignalId,
    /// Valid input from the sending switch.
    pub valid_in: SignalId,
    /// Backpressure to the sending switch.
    pub stall_out: SignalId,
    /// Flit output to the receiving switch.
    pub flit_out: SignalId,
    /// Valid output to the receiving switch.
    pub valid_out: SignalId,
    /// Backpressure from the receiving switch (testbench-driven).
    pub stall_in: SignalId,
    /// Root scope of the link instance (energy/area queries).
    pub scope: String,
    /// Free-running clock sinks per block scope, for the analytical
    /// clock power term: `(scope path, flip-flop bits)`.
    pub clock_sinks: Vec<(String, u32)>,
    /// Estimated clock distribution length, µm.
    pub clock_tree_um: f64,
    /// Observability taps into the protection/recovery layer — `None`
    /// for I1 and whenever [`LinkConfig::protection`] is off (the
    /// layer is not built at all).
    pub recovery: Option<RecoverySignals>,
}

fn seg_params(b: &CircuitBuilder<'_>, cfg: &LinkConfig) -> (Time, f64) {
    let lib = b.library();
    let seg = cfg.segment_um();
    let vdd = lib.vdd();
    let energy = 0.5 * lib.wire_cap_ff_per_um() * seg * vdd * vdd;
    // First-order distributed RC for one segment.
    let r = 0.075 * seg;
    let c = lib.wire_cap_ff_per_um() * seg * 1e-15;
    let delay = Time::from_ps_f64((0.38 * r * c * 1e12).max(0.001));
    (delay, energy)
}

/// Maps a configuration failure into the builder error channel,
/// preserving the typed cause's message.
fn check_cfg(cfg: &LinkConfig) -> Result<(), BuildError> {
    cfg.check().map_err(BuildError::from)
}

/// Builds the synchronous reference link I1 in scope `name`.
///
/// The sending switch drives `flit_in`/`valid_in`; `cfg.buffers`
/// elastic clocked buffers carry them across `cfg.length_um` of wire
/// with full VALID/STALL flow control.
///
/// Returns the first netlist-construction or configuration error
/// instead of panicking, so sweeps can probe unbuildable corners.
pub(crate) fn build_i1(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);
    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let ports = build_sync_pipeline(b, "buffers", cfg, clk, rstn, flit_in, valid_in);
    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        family: LinkFamily::Sync,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: ports.stall_out,
        flit_out: ports.flit_out,
        valid_out: ports.valid_out,
        stall_in: ports.stall_in,
        scope: name.to_string(),
        clock_sinks: vec![(format!("{name}.buffers"), ports.clocked_bits)],
        clock_tree_um: cfg.length_um,
        recovery: None,
    })
}

/// Builds the proposed asynchronous serialized link with per-transfer
/// acknowledgement (I2) in scope `name`: sync→async interface,
/// serializer, `cfg.buffers` four-phase wire buffers with wire
/// segments between them, deserializer, async→sync interface.
///
/// Every four-phase req/ack pair along the link is registered with the
/// kernel's handshake watchdog, so a wedged transfer yields a
/// [`DeadlockReport`](sal_des::DeadlockReport) naming the stage.
pub(crate) fn build_i2(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let (seg_delay, seg_energy_per_um_bit) = seg_params(b, cfg);
    // The serializer core is protection-agnostic: it carries whatever
    // word/slice widths the (possibly widened) inner config names.
    // With protection off `icfg` equals `cfg` and no extra cell or
    // signal is built, keeping the netlist bit-identical to the seed.
    let icfg = cfg.inner();
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);

    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let stall_in = b.input("stall_in", 1);

    // Word-level acknowledge wires (pre-declared feedback).
    let ack_word_tx = b.input("ack_word_tx", 1);
    let ack_word_rx = b.input("ack_word_rx", 1);

    let tx = build_sa_interface(b, "tx_if", cfg, clk, rstn, flit_in, valid_in, ack_word_tx);

    // Protection/recovery wraps the core between the interfaces: the
    // retry controller gates the word request, the generator widens
    // the word, and the core's reset is gated so a watchdog resync
    // can drain it.
    let mut recovery: Option<RetryPorts> = None;
    let mut nack_heard = None;
    let mut ack_core = None;
    let mut core_rstn = rstn;
    let (ser_din, ser_req) = if cfg.protection == ProtectionMode::Off {
        (tx.dout, tx.reqout)
    } else {
        let nh = b.input("nack_heard", 1);
        let ac = b.input("ack_core", 1);
        let rt = build_retry(b, "retry", cfg, tx.reqout, ac, nh, rstn, false);
        let (pdata, preq) = build_protector(b, "prot", cfg, tx.dout, rt.req_down);
        b.buf_into("ack_word_tx_drv", ack_word_tx, rt.ack_up);
        let rs_n = b.inv("resync_n", rt.resync);
        core_rstn = b.and2("core_rstn", rstn, rs_n);
        recovery = Some(rt);
        nack_heard = Some(nh);
        ack_core = Some(ac);
        (pdata, preq)
    };

    // Slice-level acknowledge each stage listens to: acks_in[k] is
    // heard by stage k-1 (acks_in[0] by the serializer).
    let nstations = cfg.buffers as usize;
    let acks_in: Vec<SignalId> =
        (0..=nstations).map(|k| b.input(&format!("ack_in{k}"), 1)).collect();

    let ser = build_serializer(b, "ser", &icfg, ser_din, ser_req, acks_in[0], core_rstn);
    match ack_core {
        Some(ac) => b.buf_into("ack_core_drv", ac, ser.ackout),
        None => b.buf_into("ack_word_tx_drv", ack_word_tx, ser.ackout),
    }
    match nack_heard {
        Some(nh) => {
            b.sim().watch_handshake_nack(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx, nh);
        }
        None => b.sim().watch_handshake(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx),
    }
    b.sim().watch_handshake(&format!("{name}.ser slice"), ser.reqout, acks_in[0]);

    // Wire with buffers: segment → buffer → segment → … → segment.
    // With protection, the resync drain travels a dedicated forward
    // wire so every station's reset is gated by the locally heard
    // pulse.
    b.push_scope("wire");
    let mut rs = recovery
        .as_ref()
        .map(|rt| b.transport("seg_rs0", rt.resync, seg_delay, seg_energy_per_um_bit));
    let mut d = b.transport("seg_d0", ser.dout, seg_delay, seg_energy_per_um_bit);
    let mut r = b.transport("seg_r0", ser.reqout, seg_delay, seg_energy_per_um_bit);
    for k in 0..nstations {
        let buf_rstn = match rs {
            Some(rs_here) => {
                let n = b.inv(&format!("rs_n{k}"), rs_here);
                b.and2(&format!("buf{k}_rstn"), rstn, n)
            }
            None => rstn,
        };
        let ports = build_wire_buffer(b, &format!("buf{k}"), d, r, acks_in[k + 1], buf_rstn);
        // Watch the stage boundary as the *upstream* side experiences
        // it: its transported request against the transported
        // acknowledge it listens to. A fault anywhere along the return
        // path then shows up at the boundary that actually starves.
        b.sim().watch_handshake(&format!("{name}.wire.buf{k} slice"), r, acks_in[k]);
        // The acknowledge travels back over segment k.
        b.transport_into(
            &format!("seg_a{k}"),
            acks_in[k],
            ports.ack_to_prev,
            seg_delay,
            seg_energy_per_um_bit,
        );
        d = b.transport(&format!("seg_d{}", k + 1), ports.dout, seg_delay, seg_energy_per_um_bit);
        r = b.transport(&format!("seg_r{}", k + 1), ports.reqout, seg_delay, seg_energy_per_um_bit);
        rs = rs.map(|rs_here| {
            b.transport(&format!("seg_rs{}", k + 1), rs_here, seg_delay, seg_energy_per_um_bit)
        });
    }
    b.pop_scope();

    // Receive-side core reset: gated by the resync pulse as it
    // arrives over the wire.
    let rx_rstn = match rs {
        Some(rs_rx) => {
            let n = b.inv("rs_rx_n", rs_rx);
            b.and2("rx_core_rstn", rstn, n)
        }
        None => rstn,
    };
    let des_ack = if cfg.protection == ProtectionMode::Off {
        ack_word_rx
    } else {
        b.input("des_ack", 1)
    };
    let des = build_deserializer(b, "des", &icfg, d, r, des_ack, rx_rstn);
    b.transport_into(
        &format!("seg_a{nstations}"),
        acks_in[nstations],
        des.ackout,
        seg_delay,
        seg_energy_per_um_bit,
    );

    // The checker verifies every word, self-acknowledges corrupted
    // ones and launches the NACK back over its own wire.
    let chk = if cfg.protection == ProtectionMode::Off {
        None
    } else {
        let chk = build_checker(b, "chk", cfg, des.dout, des.reqout, ack_word_rx, rx_rstn);
        b.buf_into("des_ack_drv", des_ack, chk.ack_down);
        b.push_scope("wire");
        let mut nw = chk.nack;
        for k in 0..nstations {
            nw = b.transport(&format!("seg_n{k}"), nw, seg_delay, seg_energy_per_um_bit);
        }
        b.transport_into(
            "seg_n_last",
            nack_heard.expect("protected build declared the NACK wire"),
            nw,
            seg_delay,
            seg_energy_per_um_bit,
        );
        b.pop_scope();
        Some(chk)
    };
    let (rx_din, rx_req) = match &chk {
        Some(c) => (c.dout, c.reqout),
        None => (des.dout, des.reqout),
    };

    let rx = build_as_interface(b, "rx_if", cfg, clk, rstn, rx_din, rx_req, stall_in);
    b.buf_into("ack_word_rx_drv", ack_word_rx, rx.ackout);
    b.sim().watch_handshake(&format!("{name}.des slice"), r, acks_in[nstations]);
    match &chk {
        Some(c) => {
            b.sim().watch_handshake_nack(&format!("{name}.des word"), c.reqout, ack_word_rx, c.nack);
        }
        None => b.sim().watch_handshake(&format!("{name}.des word"), des.reqout, ack_word_rx),
    }

    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        family: LinkFamily::PerTransfer,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: tx.stall,
        flit_out: rx.flit_out,
        valid_out: rx.valid_out,
        stall_in,
        scope: name.to_string(),
        clock_sinks: vec![
            (format!("{name}.tx_if"), tx.clocked_bits),
            (format!("{name}.rx_if"), rx.clocked_bits),
        ],
        // The interfaces sit at the switches; only a short local clock
        // stub is needed (no clocked elements along the wire).
        clock_tree_um: 200.0,
        recovery: recovery.map(|rt| rt.signals),
    })
}

/// Builds the proposed asynchronous serialized link with per-word
/// acknowledgement (I3) in scope `name`: the wire "buffers" are plain
/// inverter pairs on the data/valid wires, and a single acknowledge
/// wire (also repeated) returns once per word.
///
/// The word-level handshakes at both interfaces are registered with
/// the kernel's handshake watchdog (the burst itself is
/// source-synchronous and has no per-slice handshake to watch).
pub(crate) fn build_i3(
    b: &mut CircuitBuilder<'_>,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    check_cfg(cfg)?;
    let (seg_delay, seg_energy) = seg_params(b, cfg);
    let icfg = cfg.inner();
    let clk = b.clock(&format!("{name}_clk"), cfg.clk_period);
    let rstn = b.input(&format!("{name}_rstn"), 1);
    b.push_scope(name);

    let flit_in = b.input("flit_in", cfg.flit_width);
    let valid_in = b.input("valid_in", 1);
    let stall_in = b.input("stall_in", 1);

    let ack_word_tx = b.input("ack_word_tx", 1);
    let ack_word_rx = b.input("ack_word_rx", 1);
    // The per-word acknowledge as heard by the transmitter.
    let ack_back_heard = b.input("ack_back_heard", 1);

    let tx = build_sa_interface(b, "tx_if", cfg, clk, rstn, flit_in, valid_in, ack_word_tx);

    // Protection/recovery wrap (see `build_i2`); the I3 controller
    // additionally degrades to per-transfer-ack pacing after a
    // resync.
    let mut recovery: Option<RetryPorts> = None;
    let mut nack_heard = None;
    let mut ack_core = None;
    let mut core_rstn = rstn;
    let (ser_din, ser_req) = if cfg.protection == ProtectionMode::Off {
        (tx.dout, tx.reqout)
    } else {
        let nh = b.input("nack_heard", 1);
        let ac = b.input("ack_core", 1);
        let rt = build_retry(b, "retry", cfg, tx.reqout, ac, nh, rstn, true);
        let (pdata, preq) = build_protector(b, "prot", cfg, tx.dout, rt.req_down);
        b.buf_into("ack_word_tx_drv", ack_word_tx, rt.ack_up);
        let rs_n = b.inv("resync_n", rt.resync);
        core_rstn = b.and2("core_rstn", rstn, rs_n);
        recovery = Some(rt);
        nack_heard = Some(nh);
        ack_core = Some(ac);
        (pdata, preq)
    };

    let ser = build_word_serializer(b, "ser", &icfg, ser_din, ser_req, ack_back_heard, core_rstn);
    match ack_core {
        Some(ac) => b.buf_into("ack_core_drv", ac, ser.ackout),
        None => b.buf_into("ack_word_tx_drv", ack_word_tx, ser.ackout),
    }
    match nack_heard {
        Some(nh) => {
            b.sim().watch_handshake_nack(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx, nh);
        }
        None => b.sim().watch_handshake(&format!("{name}.tx_if word"), tx.reqout, ack_word_tx),
    }

    // Forward wire: data + valid (and the resync drain, when
    // protected) through inverter-pair stations.
    b.push_scope("wire");
    let nstations = cfg.buffers as usize;
    let mut rs =
        recovery.as_ref().map(|rt| b.transport("seg_rs0", rt.resync, seg_delay, seg_energy));
    let mut d = b.transport("seg_d0", ser.dout, seg_delay, seg_energy);
    let mut v = b.transport("seg_v0", ser.valid, seg_delay, seg_energy);
    for k in 0..nstations {
        let d1 = b.inv(&format!("rep_d{k}a"), d);
        let d2 = b.inv(&format!("rep_d{k}b"), d1);
        let v1 = b.inv(&format!("rep_v{k}a"), v);
        let v2 = b.inv(&format!("rep_v{k}b"), v1);
        d = b.transport(&format!("seg_d{}", k + 1), d2, seg_delay, seg_energy);
        v = b.transport(&format!("seg_v{}", k + 1), v2, seg_delay, seg_energy);
        rs = rs.map(|rs_here| {
            let r1 = b.inv(&format!("rep_rs{k}a"), rs_here);
            let r2 = b.inv(&format!("rep_rs{k}b"), r1);
            b.transport(&format!("seg_rs{}", k + 1), r2, seg_delay, seg_energy)
        });
    }
    b.pop_scope();

    let rx_rstn = match rs {
        Some(rs_rx) => {
            let n = b.inv("rs_rx_n", rs_rx);
            b.and2("rx_core_rstn", rstn, n)
        }
        None => rstn,
    };
    let des_ack = if cfg.protection == ProtectionMode::Off {
        ack_word_rx
    } else {
        b.input("des_ack", 1)
    };
    let des = match (cfg.early_word_ack, cfg.word_rx_style) {
        (true, _) => build_word_deserializer_early(b, "des", &icfg, d, v, des_ack, rx_rstn),
        (false, WordRxStyle::ShiftRegister) => {
            build_word_deserializer(b, "des", &icfg, d, v, des_ack, rx_rstn)
        }
        (false, WordRxStyle::Demux) => {
            build_word_deserializer_demux(b, "des", &icfg, d, v, des_ack, rx_rstn)
        }
    };

    // Backward acknowledge wire through the same stations.
    b.push_scope("wire");
    let mut ab = b.transport("seg_ab0", des.ack_back, seg_delay, seg_energy);
    for k in 0..nstations {
        let a1 = b.inv(&format!("rep_ab{k}a"), ab);
        let a2 = b.inv(&format!("rep_ab{k}b"), a1);
        ab = if k + 1 < nstations {
            b.transport(&format!("seg_ab{}", k + 1), a2, seg_delay, seg_energy)
        } else {
            a2
        };
    }
    b.transport_into("seg_ab_last", ack_back_heard, ab, seg_delay, seg_energy);
    b.pop_scope();

    // The checker and its backward NACK wire (repeated like the
    // acknowledge).
    let chk = if cfg.protection == ProtectionMode::Off {
        None
    } else {
        let chk = build_checker(b, "chk", cfg, des.dout, des.reqout, ack_word_rx, rx_rstn);
        b.buf_into("des_ack_drv", des_ack, chk.ack_down);
        b.push_scope("wire");
        let mut nw = b.transport("seg_n0", chk.nack, seg_delay, seg_energy);
        for k in 0..nstations {
            let n1 = b.inv(&format!("rep_n{k}a"), nw);
            let n2 = b.inv(&format!("rep_n{k}b"), n1);
            nw = if k + 1 < nstations {
                b.transport(&format!("seg_n{}", k + 1), n2, seg_delay, seg_energy)
            } else {
                n2
            };
        }
        b.transport_into(
            "seg_n_last",
            nack_heard.expect("protected build declared the NACK wire"),
            nw,
            seg_delay,
            seg_energy,
        );
        b.pop_scope();
        Some(chk)
    };
    let (rx_din, rx_req) = match &chk {
        Some(c) => (c.dout, c.reqout),
        None => (des.dout, des.reqout),
    };

    let rx = build_as_interface(b, "rx_if", cfg, clk, rstn, rx_din, rx_req, stall_in);
    b.buf_into("ack_word_rx_drv", ack_word_rx, rx.ackout);
    match &chk {
        Some(c) => {
            b.sim().watch_handshake_nack(&format!("{name}.des word"), c.reqout, ack_word_rx, c.nack);
        }
        None => b.sim().watch_handshake(&format!("{name}.des word"), des.reqout, ack_word_rx),
    }

    b.pop_scope();
    if let Some(e) = b.take_error() {
        return Err(e);
    }
    Ok(LinkHandles {
        family: LinkFamily::PerWord,
        clk,
        rstn,
        flit_in,
        valid_in,
        stall_out: tx.stall,
        flit_out: rx.flit_out,
        valid_out: rx.valid_out,
        stall_in,
        scope: name.to_string(),
        clock_sinks: vec![
            (format!("{name}.tx_if"), tx.clocked_bits),
            (format!("{name}.rx_if"), rx.clocked_bits),
        ],
        clock_tree_um: 200.0,
        recovery: recovery.map(|rt| rt.signals),
    })
}

/// Builds a link of the given family in scope `name` — the assembly
/// dispatcher behind [`generate`](crate::generate).
pub(crate) fn build_family(
    b: &mut CircuitBuilder<'_>,
    family: LinkFamily,
    name: &str,
    cfg: &LinkConfig,
) -> Result<LinkHandles, BuildError> {
    let handles = match family {
        LinkFamily::Sync => build_i1(b, name, cfg),
        LinkFamily::PerTransfer => build_i2(b, name, cfg),
        LinkFamily::PerWord => build_i3(b, name, cfg),
    }?;
    // In debug builds (every test run), fail fast on netlists that
    // violate the structural invariants the links rely on. The lint
    // passes only read the connectivity snapshot — they never touch
    // kernel state — so a linted netlist replays bit-identically.
    #[cfg(debug_assertions)]
    {
        let report = sal_lint::run_all(&b.sim().netgraph());
        if report.has_errors() {
            let summary: Vec<String> = report
                .errors()
                .map(|f| format!("[{}] {}: {}", f.pass, f.path, f.message))
                .collect();
            return Err(BuildError::Config {
                message: format!(
                    "netlist lint found {} error(s): {}",
                    summary.len(),
                    summary.join("; ")
                ),
            });
        }
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{run_spec, MeasureOptions};
    use crate::testbench::worst_case_pattern;
    use crate::LinkSpec;

    #[test]
    fn paper_specs_transfer_worst_case_pattern() {
        for family in LinkFamily::ALL {
            let spec = LinkSpec::paper(family);
            let words = worst_case_pattern(4, 32);
            let r = run_spec(&spec, &LinkConfig::default(), &words, &MeasureOptions::default())
                .expect("clean run");
            assert_eq!(r.received_words(), words, "{}", family.label());
        }
    }

    #[test]
    fn all_links_all_buffer_counts() {
        for family in LinkFamily::ALL {
            for buffers in [2u32, 4, 6, 8] {
                let spec = LinkSpec::builder()
                    .family(family)
                    .buffer_depth(buffers)
                    .build()
                    .expect("valid spec");
                let words = worst_case_pattern(4, 32);
                let r = run_spec(&spec, &LinkConfig::default(), &words, &MeasureOptions::default())
                    .expect("clean run");
                assert_eq!(
                    r.received_words(),
                    words,
                    "{} with {buffers} buffers corrupted data",
                    family.label()
                );
            }
        }
    }

    #[test]
    fn protected_links_transfer_cleanly() {
        use crate::ProtectionMode;
        for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
            for protection in [ProtectionMode::Parity, ProtectionMode::Crc8] {
                let spec = LinkSpec::builder()
                    .family(family)
                    .protection(protection)
                    .build()
                    .expect("valid spec");
                let words = worst_case_pattern(4, 32);
                let r = run_spec(&spec, &LinkConfig::default(), &words, &MeasureOptions::default())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} with {} protection failed: {e}",
                            family.label(),
                            protection.label()
                        )
                    });
                assert_eq!(
                    r.received_words(),
                    words,
                    "{} with {} protection corrupted data",
                    family.label(),
                    protection.label()
                );
            }
        }
    }

    #[test]
    fn async_links_survive_300mhz_switch_clock() {
        let base = LinkConfig {
            clk_period: sal_des::Time::from_ns_f64(10.0 / 3.0),
            ..LinkConfig::default()
        };
        for family in [LinkFamily::PerTransfer, LinkFamily::PerWord] {
            let words: Vec<u64> = (0..12).map(|i| (i * 0x2468_ACE1) & 0xFFFF_FFFF).collect();
            let r = run_spec(&LinkSpec::paper(family), &base, &words, &MeasureOptions::default())
                .expect("clean run");
            assert_eq!(r.received_words(), words, "{}", family.label());
        }
    }

}
